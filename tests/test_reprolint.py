"""Tests for the reprolint static-analysis framework (repro.devtools).

Per-rule fixture snippets (positive and negative), baseline round-trip,
the pinned JSON report schema, CLI exit codes, and the meta-test: the
real ``src/repro`` tree must lint clean against the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.devtools import (
    Baseline,
    LintEngine,
    Severity,
    default_rules,
    format_json,
    format_text,
)
from repro.devtools.baseline import BaselineEntry, discover_baseline
from repro.devtools.rules import (
    ALL_RULES,
    FaultHookGuardRule,
    NoWallClockRule,
    SeededRngOnlyRule,
    SimTimeDisciplineRule,
    TraceChannelRegistryRule,
)
from repro.sim.channels import CHANNELS, EVENTS, FAULT_RECOVERY, FAULTS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = Path(repro.__file__).parent


def lint(source: str, path: str = "sim/example.py", rules=None):
    engine = LintEngine(rules)
    return engine.lint_source(textwrap.dedent(source), path)


def rule_ids(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# REP001 — no wall clock
# ---------------------------------------------------------------------------
class TestNoWallClock:
    def test_time_time_flagged(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=[NoWallClockRule],
        )
        assert rule_ids(findings) == ["REP001"]
        assert findings[0].line == 5

    def test_perf_counter_and_datetime_now_flagged(self):
        findings = lint(
            """
            import time
            from datetime import datetime

            def f():
                a = time.perf_counter()
                b = datetime.now()
                return a, b
            """,
            rules=[NoWallClockRule],
        )
        assert len(findings) == 2

    def test_from_time_import_clock_flagged(self):
        findings = lint(
            "from time import perf_counter\n", rules=[NoWallClockRule]
        )
        assert rule_ids(findings) == ["REP001"]

    def test_innocent_time_use_not_flagged(self):
        findings = lint(
            """
            import time

            def f():
                time.sleep(0.0)  # not a clock *read*
                return "lunchtime"
            """,
            rules=[NoWallClockRule],
        )
        assert findings == []

    def test_runner_pool_exempt(self):
        source = "import time\nx = time.perf_counter()\n"
        assert lint(source, path="runner/pool.py", rules=[NoWallClockRule]) == []
        assert lint(source, path="sim/kernel.py", rules=[NoWallClockRule]) != []

    def test_benchmarks_prefix_exempt(self):
        source = "import time\nx = time.monotonic()\n"
        findings = lint(
            source, path="benchmarks/bench_x.py", rules=[NoWallClockRule]
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP002 — seeded RNG only
# ---------------------------------------------------------------------------
class TestSeededRngOnly:
    def test_stdlib_random_import_flagged(self):
        assert rule_ids(
            lint("import random\n", rules=[SeededRngOnlyRule])
        ) == ["REP002"]
        assert rule_ids(
            lint("from random import choice\n", rules=[SeededRngOnlyRule])
        ) == ["REP002"]

    def test_legacy_numpy_global_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.rand(3)
            """,
            rules=[SeededRngOnlyRule],
        )
        assert len(findings) == 2

    def test_legacy_from_import_flagged(self):
        findings = lint(
            "from numpy.random import randint\n", rules=[SeededRngOnlyRule]
        )
        assert rule_ids(findings) == ["REP002"]

    def test_seeded_generators_allowed(self):
        findings = lint(
            """
            import numpy as np

            def f(rng: np.random.Generator, seed: int):
                child = np.random.default_rng(seed)
                seq = np.random.SeedSequence(seed)
                return rng.random() + child.normal(), seq
            """,
            rules=[SeededRngOnlyRule],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP003 — trace-channel registry
# ---------------------------------------------------------------------------
class TestTraceChannelRegistry:
    def test_unregistered_literal_flagged(self):
        findings = lint(
            """
            def f(self, now, value):
                self.tracer.record("fautls", now, value)
            """,
            rules=[TraceChannelRegistryRule],
        )
        assert rule_ids(findings) == ["REP003"]
        assert "fautls" in findings[0].message

    def test_registered_literal_allowed(self):
        findings = lint(
            """
            def f(self, now, value):
                self.tracer.record("events", now, value)
                self._tracer.record("fault.recovery", now, value)
            """,
            rules=[TraceChannelRegistryRule],
        )
        assert findings == []

    def test_constant_reference_allowed(self):
        findings = lint(
            """
            from repro.sim.channels import EVENTS

            def f(tracer, now, value):
                tracer.record(EVENTS, now, value)
            """,
            rules=[TraceChannelRegistryRule],
        )
        assert findings == []

    def test_non_tracer_receivers_ignored(self):
        findings = lint(
            """
            def f(cache, mapping):
                cache.get("anything")
                mapping.record("whatever", 1, 2)
            """,
            rules=[TraceChannelRegistryRule],
        )
        assert findings == []

    def test_tracer_get_and_subscribe_checked(self):
        findings = lint(
            """
            def f(device):
                device.tracer.get("nope")
                device.tracer.subscribe("also-nope", print)
            """,
            rules=[TraceChannelRegistryRule],
        )
        assert len(findings) == 2

    def test_registry_matches_runtime_channels(self):
        """Every channel a faulted run actually records is registered."""
        from repro import DistScroll
        from repro.faults import FaultKind, FaultPlan, FaultWindow

        plan = FaultPlan(
            [FaultWindow(FaultKind.ADC_GLITCH, start_s=0.1, duration_s=0.3)]
        )
        device = DistScroll(
            {"A": ["x", "y"], "B": ["z"]}, seed=3, fault_plan=plan
        )
        device.hold_at(15.0)
        device.run_for(1.0)
        recorded = set(device.tracer.channels())
        assert recorded, "expected the run to record at least one channel"
        assert recorded <= set(CHANNELS)

    def test_constants_are_the_historic_strings(self):
        # Golden CSVs and serialized traces pin these exact values.
        assert EVENTS == "events"
        assert FAULTS == "faults"
        assert FAULT_RECOVERY == "fault.recovery"


# ---------------------------------------------------------------------------
# REP004 — sim-time discipline
# ---------------------------------------------------------------------------
class TestSimTimeDiscipline:
    def test_float_equality_on_time_flagged(self):
        findings = lint(
            """
            def f(sim, end_s):
                if sim.now == end_s:
                    return True
            """,
            rules=[SimTimeDisciplineRule],
        )
        assert rule_ids(findings) == ["REP004"]

    def test_not_equal_flagged(self):
        findings = lint(
            "def f(now, t0):\n    return now != t0\n",
            rules=[SimTimeDisciplineRule],
        )
        assert rule_ids(findings) == ["REP004"]

    def test_ordered_comparison_allowed(self):
        findings = lint(
            """
            def f(sim, end_s, time_s):
                return sim.now <= end_s and time_s < 4.0
            """,
            rules=[SimTimeDisciplineRule],
        )
        assert findings == []

    def test_non_time_equality_allowed(self):
        findings = lint(
            "def f(chunk, n):\n    return chunk == 0 and n != 3\n",
            rules=[SimTimeDisciplineRule],
        )
        assert findings == []

    def test_none_check_allowed(self):
        findings = lint(
            "def f(now):\n    return now == None\n",
            rules=[SimTimeDisciplineRule],
        )
        assert findings == []

    def test_negative_delay_literal_flagged(self):
        findings = lint(
            "def f(sim, cb):\n    sim.schedule(-0.5, cb)\n",
            rules=[SimTimeDisciplineRule],
        )
        assert rule_ids(findings) == ["REP004"]

    def test_negative_absolute_time_flagged(self):
        findings = lint(
            "def f(sim, cb):\n    sim.schedule_at(-1.0, cb)\n",
            rules=[SimTimeDisciplineRule],
        )
        assert rule_ids(findings) == ["REP004"]

    def test_positive_delay_allowed(self):
        findings = lint(
            "def f(sim, cb):\n    sim.schedule(0.5, cb)\n",
            rules=[SimTimeDisciplineRule],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP005 — fault-hook guard
# ---------------------------------------------------------------------------
class TestFaultHookGuard:
    def test_unguarded_call_flagged(self):
        findings = lint(
            """
            class ADC:
                def sample(self, t, code):
                    return self.fault_hook(t, 0, code)
            """,
            rules=[FaultHookGuardRule],
        )
        assert rule_ids(findings) == ["REP005"]

    def test_if_body_guard_allowed(self):
        findings = lint(
            """
            class Sensor:
                def read(self, t, v):
                    if self.fault_hook is not None:
                        override = self.fault_hook(t, v)
                        if override is not None:
                            return override
                    return v
            """,
            rules=[FaultHookGuardRule],
        )
        assert findings == []

    def test_and_chain_guard_allowed(self):
        findings = lint(
            """
            class Bus:
                def attempt(self):
                    if self.fault_hook is not None and self.fault_hook():
                        raise RuntimeError("nack")
            """,
            rules=[FaultHookGuardRule],
        )
        assert findings == []

    def test_ifexp_guard_allowed(self):
        findings = lint(
            """
            class RF:
                def send(self):
                    action = (
                        self.fault_hook()
                        if self.fault_hook is not None
                        else None
                    )
                    return action
            """,
            rules=[FaultHookGuardRule],
        )
        assert findings == []

    def test_truthiness_guard_allowed(self):
        findings = lint(
            """
            class Batt:
                def sag(self):
                    if self.fault_hook:
                        return self.fault_hook()
                    return 0.0
            """,
            rules=[FaultHookGuardRule],
        )
        assert findings == []

    def test_else_branch_flagged(self):
        findings = lint(
            """
            class Bad:
                def f(self):
                    if self.fault_hook is not None:
                        pass
                    else:
                        return self.fault_hook()
            """,
            rules=[FaultHookGuardRule],
        )
        assert rule_ids(findings) == ["REP005"]

    def test_guard_outside_function_does_not_leak(self):
        findings = lint(
            """
            class Bad:
                def f(self):
                    if self.fault_hook is not None:
                        def inner():
                            return self.fault_hook()
                        return inner
            """,
            rules=[FaultHookGuardRule],
        )
        assert rule_ids(findings) == ["REP005"]


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_becomes_finding(self):
        findings = lint("def broken(:\n")
        assert findings and findings[0].rule == "REP000"

    def test_findings_sorted_and_stable(self):
        source = """
            import random
            import time

            def f():
                return time.time()
            """
        first = lint(source)
        second = lint(source)
        assert first == second
        assert [f.line for f in first] == sorted(f.line for f in first)

    def test_lint_tree_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import random\n")
        assert LintEngine().lint_tree(tmp_path) == []

    def test_severity_is_error_by_default(self):
        findings = lint("import random\n")
        assert findings[0].severity is Severity.ERROR

    def test_all_rule_ids_unique(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        entry = BaselineEntry(
            rule="REP001",
            path="runner/sharding.py",
            snippet="start = time.perf_counter()",
            justification="bench telemetry",
        )
        baseline = Baseline([entry])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [entry]
        # byte-stable writes
        loaded.save(tmp_path / "again.json")
        assert (tmp_path / "again.json").read_bytes() == path.read_bytes()

    def test_matching_is_line_number_independent(self):
        findings = lint(
            "import time\n\n\ndef f():\n    return time.time()\n",
            rules=[NoWallClockRule],
        )
        baseline = Baseline.from_findings(findings, justification="ok")
        moved = lint(
            "import time\n# a new comment shifts every line\n\n\n"
            "def f():\n    return time.time()\n",
            rules=[NoWallClockRule],
        )
        applied = baseline.apply(moved)
        assert all(f.suppressed for f in applied)

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "REP001",
                            "path": "x.py",
                            "snippet": "y",
                            "justification": "  ",
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_from_findings_preserves_justifications(self):
        findings = lint("import random\n", rules=[SeededRngOnlyRule])
        first = Baseline.from_findings(findings, justification="because")
        regenerated = Baseline.from_findings(findings, previous=first)
        assert regenerated.entries[0].justification == "because"

    def test_unmatched_entries_reported_stale(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule="REP001",
                    path="gone.py",
                    snippet="x = time.time()",
                    justification="was real once",
                )
            ]
        )
        assert len(baseline.unmatched_entries([])) == 1

    def test_discover_walks_up(self, tmp_path):
        (tmp_path / "reprolint-baseline.json").write_text("{}")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        found = discover_baseline(nested)
        assert found == tmp_path / "reprolint-baseline.json"


# ---------------------------------------------------------------------------
# report formats
# ---------------------------------------------------------------------------
class TestReport:
    def test_json_schema(self):
        engine = LintEngine()
        findings = engine.lint_source("import random\n", "sim/x.py")
        payload = json.loads(
            format_json(findings, engine.rule_ids(), "src/repro")
        )
        assert payload["version"] == 2
        assert payload["tool"] == "reprolint"
        assert payload["root"] == "src/repro"
        assert payload["rules"] == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
        ]
        assert payload["counts"] == {
            "total": 1,
            "suppressed": 0,
            "reported": 1,
        }
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "severity",
            "message",
            "snippet",
            "suppressed",
            "occurrence",
        }
        assert finding["rule"] == "REP002"
        assert finding["path"] == "sim/x.py"
        assert finding["severity"] == "error"

    def test_text_includes_location_and_summary(self):
        engine = LintEngine()
        findings = engine.lint_source("import random\n", "sim/x.py")
        text = format_text(findings, engine.rule_ids(), "src/repro")
        assert "sim/x.py:1:0: REP002" in text
        assert "1 finding(s) (0 baselined)" in text

    def test_text_hides_suppressed_unless_verbose(self):
        engine = LintEngine()
        findings = engine.lint_source("import random\n", "sim/x.py")
        baseline = Baseline.from_findings(findings, justification="ok")
        applied = baseline.apply(findings)
        quiet = format_text(applied, engine.rule_ids(), "r")
        loud = format_text(applied, engine.rule_ids(), "r", verbose=True)
        assert "REP002" not in quiet.splitlines()[0] or len(
            quiet.splitlines()
        ) == 1
        assert "[baselined]" in loud


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestLintCli:
    def test_real_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_format_parses(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["reported"] == 0

    def test_seeded_violation_fails(self, tmp_path, capsys):
        bad = tmp_path / "sim"
        bad.mkdir()
        (bad / "clock.py").write_text(
            "import time\n\n\ndef f():\n    return time.time()\n"
        )
        code = main(["lint", "--root", str(tmp_path), "--no-baseline"])
        assert code == 1
        assert "REP001" in capsys.readouterr().out

    def test_rule_subset_filter(self, tmp_path, capsys):
        (tmp_path / "x.py").write_text("import random\nimport time\n")
        code = main(
            ["lint", "--root", str(tmp_path), "--no-baseline", "--rules",
             "REP001"]
        )
        # only REP001 ran, and `import time` alone is not a clock read
        assert code == 0
        assert main(
            ["lint", "--root", str(tmp_path), "--no-baseline", "--rules",
             "REP002"]
        ) == 1

    def test_unknown_rule_id_is_usage_error(self, tmp_path):
        assert main(
            ["lint", "--root", str(tmp_path), "--rules", "REP999"]
        ) == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text("import random\n")
        baseline_path = tmp_path / "reprolint-baseline.json"
        # a dirty tree fails without a baseline...
        assert main(["lint", "--root", str(tree)]) == 1
        # ...writing one (to an explicit, not-yet-existing path) passes it
        code = main(
            ["lint", "--root", str(tree), "--baseline", str(baseline_path),
             "--write-baseline"]
        )
        assert code == 0
        assert baseline_path.is_file()
        code = main(
            ["lint", "--root", str(tree), "--baseline", str(baseline_path)]
        )
        assert code == 0

    def test_explicit_missing_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert main(
            ["lint", "--root", str(tmp_path), "--baseline",
             str(tmp_path / "nope.json")]
        ) == 2


# ---------------------------------------------------------------------------
# the meta-test: the repo itself must be clean
# ---------------------------------------------------------------------------
class TestRepoIsClean:
    def test_tree_lints_clean_against_committed_baseline(self):
        engine = LintEngine()
        start = time.perf_counter()
        findings = engine.lint_tree(SRC_ROOT)
        elapsed = time.perf_counter() - start
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        applied = baseline.apply(findings)
        reported = [f for f in applied if not f.suppressed]
        assert reported == [], "non-baselined findings:\n" + "\n".join(
            f"{f.location()} {f.rule} {f.message}" for f in reported
        )
        # acceptance criterion: all five rules over src/repro in < 5 s
        assert elapsed < 5.0, f"lint took {elapsed:.2f}s"

    def test_committed_baseline_has_no_stale_entries(self):
        findings = LintEngine().lint_tree(SRC_ROOT)
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        assert baseline.unmatched_entries(findings) == []

    def test_default_rules_are_all_rules(self):
        assert default_rules() == ALL_RULES

"""Tests for handedness penalties, layout study and fatigue tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments import run_layouts, run_range_sweep
from repro.hardware.buttons import (
    RIGHT_HANDED_LAYOUT,
    SINGLE_LARGE_BUTTON_LAYOUT,
)
from repro.interaction.gloves import GLOVES
from repro.interaction.hand import Hand
from repro.interaction.user import SimulatedUser
from repro.sim.kernel import Simulator


class TestHandedness:
    def _trial_time(self, layout, handedness, seed):
        device = DistScroll(
            build_menu([f"I{i}" for i in range(8)]), seed=seed, layout=layout
        )
        user = SimulatedUser(
            device=device,
            rng=np.random.default_rng(seed),
            handedness=handedness,
        )
        user.practice_trials = 40
        device.run_for(0.5)
        return np.mean([user.select_entry(t).duration_s for t in (2, 6, 4)])

    def test_left_hand_slower_on_right_handed_prototype(self):
        lefts, rights = [], []
        for seed in range(4):
            rights.append(self._trial_time(RIGHT_HANDED_LAYOUT, "right", seed))
            lefts.append(self._trial_time(RIGHT_HANDED_LAYOUT, "left", seed))
        assert np.mean(lefts) > np.mean(rights)

    def test_ambidextrous_layout_neutral(self):
        lefts, rights = [], []
        for seed in range(4):
            rights.append(
                self._trial_time(SINGLE_LARGE_BUTTON_LAYOUT, "right", seed)
            )
            lefts.append(
                self._trial_time(SINGLE_LARGE_BUTTON_LAYOUT, "left", seed)
            )
        # Same motor model, no layout penalty: within noise of each other.
        assert abs(np.mean(lefts) - np.mean(rights)) < 0.4


class TestLayoutExperiment:
    def test_large_button_beats_prototype_in_mittens(self):
        result = run_layouts(seed=1, n_users=3, n_trials=3,
                             gloves=("arctic",))
        rows = {r[0]: r for r in result.rows}
        assert (
            rows["single-large-button"][3] < rows["prototype-3-button"][3]
        )


class TestFatigue:
    def test_holding_extended_accumulates_more(self):
        sim = Simulator(seed=0)
        near_hand = Hand(sim, lambda d: None, start_cm=8.0, rng=None)
        far_hand = Hand(sim, lambda d: None, start_cm=28.0, rng=None)
        sim.run_until(10.0)
        assert far_hand.fatigue_units > near_hand.fatigue_units

    def test_movement_adds_fatigue(self):
        sim = Simulator(seed=0)
        mover = Hand(sim, lambda d: None, start_cm=10.0, rng=None)
        holder = Hand(sim, lambda d: None, start_cm=10.0, rng=None)
        for i in range(6):
            mover.move_to(10.0 + (i % 2) * 15.0, 0.5)
            sim.run_until(sim.now + 0.6)
        assert mover.fatigue_units > holder.fatigue_units

    def test_range_sweep_reports_fatigue(self):
        result = run_range_sweep(
            seed=1,
            ranges=((5.0, 12.0), (5.0, 28.0)),
            n_entries=8,
            n_trials=3,
            n_users=1,
        )
        fatigue = result.column("fatigue_per_trial")
        assert all(f > 0 for f in fatigue)
        # Wider range forces longer, more extended reaches.
        assert fatigue[1] > fatigue[0]

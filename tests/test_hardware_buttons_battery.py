"""Tests for buttons (bounce + debounce), battery, potentiometer, MCU."""

from __future__ import annotations

import pytest

from repro.hardware.battery import Battery, BatteryParams
from repro.hardware.buttons import (
    Button,
    ButtonSpec,
    ButtonPosition,
    DebouncedButton,
    RIGHT_HANDED_LAYOUT,
    SINGLE_LARGE_BUTTON_LAYOUT,
    TWO_BUTTON_SLIDABLE_LAYOUT,
)
from repro.hardware.mcu import MemoryBudgetError, PIC18F452
from repro.hardware.adc import ADC
from repro.hardware.potentiometer import Potentiometer


class TestLayouts:
    def test_prototype_layout_matches_paper(self):
        """Three buttons: one top-right (thumb), two middle-left (§4.5)."""
        layout = RIGHT_HANDED_LAYOUT
        assert len(layout.buttons) == 3
        select = layout.spec("select")
        assert select.position is ButtonPosition.TOP_RIGHT
        assert select.thumb_operable
        assert not layout.ambidextrous

    def test_final_design_candidates_are_ambidextrous(self):
        assert TWO_BUTTON_SLIDABLE_LAYOUT.ambidextrous
        assert SINGLE_LARGE_BUTTON_LAYOUT.ambidextrous

    def test_large_button_is_larger(self):
        large = SINGLE_LARGE_BUTTON_LAYOUT.spec("select")
        normal = RIGHT_HANDED_LAYOUT.spec("select")
        assert large.area_mm2 > 5 * normal.area_mm2

    def test_unknown_button_raises(self):
        with pytest.raises(KeyError):
            RIGHT_HANDED_LAYOUT.spec("fire")


class TestButtonBounce:
    def test_ideal_button_clean_edges(self, sim):
        spec = ButtonSpec("select", ButtonPosition.TOP_RIGHT, True)
        button = Button(sim, spec, rng=None)
        button.press()
        assert button.closed
        button.release()
        assert not button.closed

    def test_bouncy_button_settles(self, sim):
        spec = ButtonSpec("select", ButtonPosition.TOP_RIGHT, True)
        button = Button(sim, spec, rng=sim.spawn_rng())
        button.press()
        sim.run_until(sim.now + 0.02)
        assert button.closed
        button.release()
        sim.run_until(sim.now + 0.02)
        assert not button.closed


class TestDebounce:
    def _make(self, sim, rng=True):
        spec = ButtonSpec("select", ButtonPosition.TOP_RIGHT, True)
        raw = Button(sim, spec, rng=sim.spawn_rng() if rng else None)
        presses = []
        deb = DebouncedButton(
            button=raw, on_press=lambda: presses.append(sim.now)
        )
        return raw, deb, presses

    def _poll(self, sim, deb, duration, hz=100):
        end = sim.now + duration
        while sim.now < end:
            sim.run_until(sim.now + 1.0 / hz)
            deb.poll(sim.now)

    def test_single_press_single_event(self, sim):
        raw, deb, presses = self._make(sim)
        raw.press()
        self._poll(sim, deb, 0.1)
        raw.release()
        self._poll(sim, deb, 0.1)
        assert len(presses) == 1
        assert deb.press_count == 1

    def test_bounce_does_not_double_fire(self, sim):
        raw, deb, presses = self._make(sim)
        for _ in range(5):
            raw.press()
            self._poll(sim, deb, 0.08)
            raw.release()
            self._poll(sim, deb, 0.08)
        assert len(presses) == 5

    def test_too_short_press_ignored(self, sim):
        raw, deb, presses = self._make(sim, rng=False)
        raw.press()
        # Poll for far less than the stable time.
        sim.run_until(sim.now + 0.002)
        deb.poll(sim.now)
        raw.release()
        sim.run_until(sim.now + 0.002)
        deb.poll(sim.now)
        self._poll(sim, deb, 0.1)
        assert presses == []


class TestBattery:
    def test_fresh_battery_voltage(self):
        battery = Battery()
        assert battery.terminal_voltage() == pytest.approx(9.4, abs=0.1)
        assert battery.state_of_charge == 1.0

    def test_discharge_lowers_voltage(self):
        battery = Battery()
        battery.draw(20.0, 3600 * 20)  # 400 mAh
        assert battery.state_of_charge < 0.5
        assert battery.terminal_voltage() < 8.5

    def test_load_sag(self):
        battery = Battery()
        ocv = battery.open_circuit_voltage()
        battery.draw(500.0, 0.001)
        assert battery.terminal_voltage() < ocv

    def test_brownout_when_flat(self):
        battery = Battery()
        battery.draw(20.0, 3600 * 30)
        assert battery.browned_out

    def test_replace_restores(self):
        battery = Battery()
        battery.draw(20.0, 3600 * 30)
        battery.replace()
        assert battery.state_of_charge == 1.0
        assert not battery.browned_out

    def test_invalid_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery().draw(-1.0, 1.0)

    def test_capacity_param(self):
        small = Battery(BatteryParams(capacity_mah=100.0))
        small.draw(100.0, 3600 / 2)
        assert small.state_of_charge == pytest.approx(0.5)


class TestPotentiometer:
    def test_divider(self):
        pot = Potentiometer(position=0.3)
        assert pot.wiper_voltage(5.0) == pytest.approx(1.5)

    def test_travel_clamped(self):
        pot = Potentiometer()
        pot.set_position(2.0)
        assert pot.position == 1.0
        pot.set_position(-1.0)
        assert pot.position == 0.0

    def test_invalid_resistance(self):
        with pytest.raises(ValueError):
            Potentiometer(total_resistance_ohm=0.0)


class TestMCU:
    def _mcu(self):
        return PIC18F452(adc=ADC(rng=None))

    def test_memory_budget_enforced(self):
        mcu = self._mcu()
        mcu.allocate("app", flash_bytes=30 * 1024, ram_bytes=1000)
        with pytest.raises(MemoryBudgetError):
            mcu.allocate("too-big", flash_bytes=4 * 1024)
        with pytest.raises(MemoryBudgetError):
            mcu.allocate("too-big", ram_bytes=600)

    def test_free_releases(self):
        mcu = self._mcu()
        mcu.allocate("a", flash_bytes=1000, ram_bytes=100)
        mcu.free("a")
        assert mcu.flash_used == 0
        assert mcu.ram_used == 0

    def test_part_limits_match_paper(self):
        """'32 kbytes of flash memory and 1.5 kbytes RAM' (§4)."""
        mcu = self._mcu()
        assert mcu.params.flash_bytes == 32 * 1024
        assert mcu.params.ram_bytes == 1536

    def test_tick_utilization(self):
        mcu = self._mcu()
        mcu.begin_tick()
        mcu.execute(100_000)
        assert mcu.tick_utilization(0.02) == pytest.approx(0.5)

    def test_memory_report(self):
        mcu = self._mcu()
        mcu.allocate("a", flash_bytes=10, ram_bytes=1)
        mcu.allocate("a", flash_bytes=5)
        mcu.allocate("b", ram_bytes=2)
        report = mcu.memory_report()
        assert report["a"] == (15, 1)
        assert report["b"] == (0, 2)

    def test_power_draw_reaches_battery(self):
        battery = Battery()
        mcu = PIC18F452(adc=ADC(rng=None), battery=battery)
        mcu.consume_power(3600.0)
        assert battery.total_drawn_mah == pytest.approx(
            mcu.params.run_current_ma
        )

"""ARENA — the cross-technique tournament of open question 1 (§7).

"Is distance-based scrolling faster, equal or slower than other
scrolling techniques[?]" — the arena answers it at population scale:
every registered :data:`repro.baselines.ALL_TECHNIQUES` entry runs the
same ScrollTest-style task battery (short-near / short-far / long-menu
/ error-recovery) over the same persona population, and a ranked
leaderboard falls out.

Execution mirrors the population user study (``userblocks`` sharding):
participant ``u`` running technique ``t`` draws every trial from the
dedicated ``(seed, ARENA_STREAM, u, roster_index(t))`` stream, so any
block partition of the population — and therefore ``--jobs`` — merges
byte-identically, and dropping techniques from a run never perturbs the
remaining techniques' bits.

Fault realism rides along: every ``fault_every``-th participant's
session schedules a :class:`~repro.baselines.TechniqueFault` window
over the middle third of their trial sequence on each technique's
first declared fault surface (grip-loss, tracker-dropout, pad-stuck).
Techniques degrade gracefully inside the window; the leaderboard notes
quantify the slowdown.

Speed, accuracy, error recovery and fatigue fold into the exact
streaming aggregators of :mod:`repro.analysis.stats`, O(1) state per
technique × scenario no matter the population.  ``docs/ARENA.md`` is
rendered from this module by ``scripts/generate_arena_md.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Any, Optional, Sequence

import numpy as np

from repro.analysis.stats import CellCounter, QuantileSketch, StreamingMoments
from repro.baselines import ALL_TECHNIQUES, TechniqueFault
from repro.baselines.base import OperatorTimes
from repro.experiments.harness import ExperimentResult
from repro.interaction.personas import parse_spec, persona_for_user
from repro.interaction.tasks import (
    battery as resolve_battery,
    scenario_distances,
)
from repro.sim.streams import ARENA_STREAM

__all__ = [
    "ARENA_ROSTER",
    "ArenaAggregate",
    "arena_fault_window",
    "run_arena_block",
    "finalize_arena",
    "run_arena",
]

#: Canonical technique order.  Spawn keys use a technique's index in
#: *this* tuple (not its position in a run's subset), so a subset run
#: replays exactly the bits a full run gives those techniques.
ARENA_ROSTER: tuple[str, ...] = tuple(sorted(ALL_TECHNIQUES))

#: Trial-time quantile sketch spec (same philosophy as the user study:
#: fixed log-spaced edges, never data-adaptive).
_TIME_SKETCH = (1e-2, 1e4, 32)


def _resolve_techniques(
    techniques: Optional[Sequence[str]],
) -> tuple[str, ...]:
    """Validated canonical technique tuple (``None`` = full roster)."""
    if techniques is None:
        return ARENA_ROSTER
    resolved = tuple(techniques)
    for key in resolved:
        if key not in ALL_TECHNIQUES:
            raise ValueError(
                f"unknown technique {key!r}; "
                f"registered: {', '.join(ARENA_ROSTER)}"
            )
    if len(set(resolved)) != len(resolved):
        raise ValueError(f"duplicate technique in {resolved}")
    return resolved


def arena_fault_window(
    technique: str, total_trials: int
) -> tuple[TechniqueFault, ...]:
    """The session fault plan for one faulted participant.

    A single window on the technique's first declared fault surface,
    covering the middle third of the nominal trial sequence — late
    enough that clean baseline trials exist, early enough that
    post-fault recovery trials exist too.  Techniques without a fault
    seam get no window (idealized models stay idealized).
    """
    info = ALL_TECHNIQUES[technique].info
    if info is None or not info.fault_surfaces:
        return ()
    start = total_trials // 3
    end = max(start + 1, (2 * total_trials) // 3)
    return (TechniqueFault(info.fault_surfaces[0], start, end),)


@dataclass
class _TechScenarioStats:
    """Streaming per-(technique, scenario) trial statistics."""

    times: StreamingMoments
    errors: StreamingMoments
    operations: StreamingMoments
    time_sketch: QuantileSketch

    @classmethod
    def fresh(cls) -> "_TechScenarioStats":
        return cls(
            times=StreamingMoments(),
            errors=StreamingMoments(),
            operations=StreamingMoments(),
            time_sketch=QuantileSketch(*_TIME_SKETCH),
        )

    def add(self, duration_s: float, errors: float, operations: float) -> None:
        self.times.add(duration_s)
        self.errors.add(errors)
        self.operations.add(operations)
        self.time_sketch.add(duration_s)

    def merge(self, other: "_TechScenarioStats") -> "_TechScenarioStats":
        return _TechScenarioStats(
            times=self.times.merge(other.times),
            errors=self.errors.merge(other.errors),
            operations=self.operations.merge(other.operations),
            time_sketch=self.time_sketch.merge(other.time_sketch),
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "times": self.times.snapshot(),
            "errors": self.errors.snapshot(),
            "operations": self.operations.snapshot(),
            "time_sketch": self.time_sketch.snapshot(),
        }


class ArenaAggregate:
    """Streaming, exactly-mergeable aggregate of one arena tournament.

    O(1) state per technique × scenario regardless of the population:
    exact moments for times/errors/operations, a fixed-bin quantile
    sketch per cell, per-technique recovery and fault-window moments,
    and a persona-cell counter.  ``merge()`` is exactly associative and
    commutative with matching layouts, so any block partition of the
    same population serializes to the same :meth:`snapshot` bytes.
    """

    __slots__ = (
        "techniques",
        "segments",
        "n_users",
        "stats",
        "recovery",
        "fault_users",
        "fault_times",
        "cell_users",
    )

    def __init__(
        self, techniques: tuple[str, ...], segments: tuple[str, ...]
    ) -> None:
        if not techniques:
            raise ValueError("the arena needs at least one technique")
        if not segments:
            raise ValueError("the arena needs at least one scenario")
        self.techniques = tuple(techniques)
        self.segments = tuple(segments)
        self.n_users = 0
        self.stats = [
            [_TechScenarioStats.fresh() for _ in segments] for _ in techniques
        ]
        self.recovery = [StreamingMoments() for _ in techniques]
        self.fault_users = [0 for _ in techniques]
        self.fault_times = [StreamingMoments() for _ in techniques]
        self.cell_users = CellCounter()

    def merge(self, other: "ArenaAggregate") -> "ArenaAggregate":
        """Combined aggregate (operands unchanged; layouts must match)."""
        if (
            self.techniques != other.techniques
            or self.segments != other.segments
        ):
            raise ValueError(
                f"arena layouts differ: {self.techniques}×{self.segments} "
                f"vs {other.techniques}×{other.segments}"
            )
        merged = ArenaAggregate(self.techniques, self.segments)
        merged.n_users = self.n_users + other.n_users
        for t in range(len(self.techniques)):
            for s in range(len(self.segments)):
                merged.stats[t][s] = self.stats[t][s].merge(other.stats[t][s])
            merged.recovery[t] = self.recovery[t].merge(other.recovery[t])
            merged.fault_users[t] = self.fault_users[t] + other.fault_users[t]
            merged.fault_times[t] = self.fault_times[t].merge(
                other.fault_times[t]
            )
        merged.cell_users = self.cell_users.merge(other.cell_users)
        return merged

    def technique_overall(
        self, t: int
    ) -> tuple[StreamingMoments, StreamingMoments, StreamingMoments, QuantileSketch]:
        """Exact cross-scenario (times, errors, operations, sketch)."""
        times = reduce(
            lambda a, b: a.merge(b),
            (cell.times for cell in self.stats[t]),
            StreamingMoments(),
        )
        errors = reduce(
            lambda a, b: a.merge(b),
            (cell.errors for cell in self.stats[t]),
            StreamingMoments(),
        )
        operations = reduce(
            lambda a, b: a.merge(b),
            (cell.operations for cell in self.stats[t]),
            StreamingMoments(),
        )
        sketch = reduce(
            lambda a, b: a.merge(b),
            (cell.time_sketch for cell in self.stats[t]),
            QuantileSketch(*_TIME_SKETCH),
        )
        return times, errors, operations, sketch

    def snapshot(self) -> dict[str, Any]:
        """Canonical JSON-safe state (sorted keys, exact sums).

        ``json.dumps(snapshot(), sort_keys=True)`` is the byte string
        the shard-invariance tests compare.
        """
        return {
            "techniques": list(self.techniques),
            "segments": list(self.segments),
            "n_users": self.n_users,
            "stats": [
                [cell.snapshot() for cell in row] for row in self.stats
            ],
            "recovery": [m.snapshot() for m in self.recovery],
            "fault_users": list(self.fault_users),
            "fault_times": [m.snapshot() for m in self.fault_times],
            "cells": {
                cell: self.cell_users.get(cell)
                for cell in self.cell_users.keys()
            },
        }


def run_arena_block(
    seed: int,
    start: int,
    count: int,
    personas: str = "full",
    battery: str = "scrolltest",
    techniques: Optional[Sequence[str]] = None,
    fault_every: int = 4,
) -> ArenaAggregate:
    """Run participants ``[start, start+count)`` through every technique.

    The arena shard unit: each participant's persona derives from the
    persona engine's streams and each (participant, technique) session
    from ``(seed, ARENA_STREAM, user, roster_index)`` alone, so any
    block partition of the population merges to identical bytes.
    """
    spec = parse_spec(personas)
    scenarios = resolve_battery(battery)
    keys = _resolve_techniques(techniques)
    aggregate = ArenaAggregate(keys, tuple(s.name for s in scenarios))
    total_trials = 0
    for scenario in scenarios:
        total_trials += scenario.n_trials
    for user_index in range(start, start + count):
        persona = persona_for_user(seed, user_index, spec)
        aggregate.n_users += 1
        aggregate.cell_users.add(persona.cell())
        glove = persona.glove_model()
        profile_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=seed, spawn_key=(ARENA_STREAM, user_index)
            )
        )
        profile = persona.motor_profile(profile_rng)
        times = OperatorTimes(
            reaction_s=profile.reaction_time_s,
            keypress_s=profile.button_press_s,
            verify_dwell_s=profile.verify_dwell_s,
        )
        faulted_user = fault_every > 0 and user_index % fault_every == 0
        for t, key in enumerate(keys):
            roster_index = ARENA_ROSTER.index(key)
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=seed,
                    spawn_key=(ARENA_STREAM, user_index, roster_index),
                )
            )
            faults = (
                arena_fault_window(key, total_trials) if faulted_user else ()
            )
            technique = ALL_TECHNIQUES[key](
                rng=rng, glove=glove, times=times, faults=faults
            )
            if faults:
                aggregate.fault_users[t] += 1
            for s, scenario in enumerate(scenarios):
                for distance in scenario_distances(scenario, rng):
                    target = min(distance, scenario.menu_entries - 1)
                    trial = technique.select(0, target, scenario.menu_entries)
                    duration = trial.duration_s
                    operations = trial.operations
                    if scenario.error_recovery:
                        # A deliberate wrong activation the participant
                        # backs out of: one corrective selection from
                        # the neighbouring entry.
                        recovery = technique.select(
                            max(target - 1, 0), target, scenario.menu_entries
                        )
                        aggregate.recovery[t].add(recovery.duration_s)
                        duration += recovery.duration_s
                        operations += recovery.operations
                    aggregate.stats[t][s].add(
                        duration, float(trial.errors), float(operations)
                    )
                    if faults:
                        aggregate.fault_times[t].add(duration)
    return aggregate


def finalize_arena(
    aggregates: list[ArenaAggregate],
    n_users: int,
    personas: str = "full",
    battery: str = "scrolltest",
    techniques: Optional[Sequence[str]] = None,
    fault_every: int = 4,
) -> ExperimentResult:
    """Merge block aggregates into the ranked leaderboard.

    One row per technique, ranked by the composite score
    ``mean_trial_s * (1 + error_rate)`` (lower is better): raw speed
    penalized by wrong activations, the ScrollTest speed/accuracy
    trade-off in a single sortable number.  Per-scenario winners, the
    fault-window slowdown and the persona-cell coverage land in notes.
    """
    keys = _resolve_techniques(techniques)
    merged = reduce(lambda a, b: a.merge(b), aggregates)
    if merged.n_users != n_users:
        raise ValueError(
            f"aggregates cover {merged.n_users} users, expected {n_users}"
        )
    if merged.techniques != keys:
        raise ValueError(
            f"aggregates cover techniques {merged.techniques}, "
            f"expected {keys}"
        )
    result = ExperimentResult(
        experiment_id="ARENA",
        title=(
            f"Technique arena: {len(keys)} techniques, {n_users} personas "
            f"({personas}), battery {battery}"
        ),
        columns=(
            "rank",
            "technique",
            "score",
            "mean_trial_s",
            "p50_trial_s",
            "error_rate",
            "ops_per_trial",
            "recovery_s",
            "one_handed",
            "glove_ok",
        ),
    )
    scored = []
    for t, key in enumerate(keys):
        times, errors, operations, sketch = merged.technique_overall(t)
        mean_time = float(times.mean or 0.0)
        error_rate = float(errors.mean or 0.0)
        score = mean_time * (1.0 + error_rate)
        scored.append((score, key, t, mean_time, error_rate, operations, sketch))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    for rank, (score, key, t, mean_time, error_rate, operations, sketch) in (
        enumerate(scored, start=1)
    ):
        cls = ALL_TECHNIQUES[key]
        result.add_row(
            rank,
            key,
            score,
            mean_time,
            float(sketch.quantile(0.5) or 0.0),
            error_rate,
            float(operations.mean or 0.0),
            float(merged.recovery[t].mean or 0.0),
            cls.one_handed,
            cls.glove_compatible,
        )
    for s, segment in enumerate(merged.segments):
        best = min(
            (
                (float(merged.stats[t][s].times.mean or 0.0), key)
                for t, key in enumerate(keys)
            ),
        )
        result.note(
            f"fastest on {segment}: {best[1]} "
            f"(mean {best[0]:.2f} s/trial)"
        )
    for t, key in enumerate(keys):
        if merged.fault_users[t] == 0:
            continue
        info = ALL_TECHNIQUES[key].info
        surface = info.fault_surfaces[0] if info else "?"
        times, _errors, _operations, _sketch = merged.technique_overall(t)
        result.note(
            f"{key} under {surface} windows "
            f"({merged.fault_users[t]} faulted sessions): "
            f"{float(merged.fault_times[t].mean or 0.0):.2f} s/trial vs "
            f"{float(times.mean or 0.0):.2f} overall — degraded, "
            "never failed"
        )
    result.note(
        f"streaming aggregation over {len(merged.cell_users.keys())} "
        "persona cells; aggregator state is O(1) in the user count"
    )
    return result


def run_arena(
    seed: int = 0,
    n_users: int = 16,
    personas: str = "full",
    battery: str = "scrolltest",
    techniques: Optional[Sequence[str]] = None,
    fault_every: int = 4,
    users_per_shard: int = 4,
) -> ExperimentResult:
    """Serial driver of the arena (the ``--jobs 1`` path).

    Walks the identical block decomposition the sharded runner uses and
    folds block aggregates in order, so serial and parallel runs are
    byte-identical by construction.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    aggregates = [
        run_arena_block(
            seed,
            start,
            min(users_per_shard, n_users - start),
            personas=personas,
            battery=battery,
            techniques=techniques,
            fault_every=fault_every,
        )
        for start in range(0, n_users, users_per_shard)
    ]
    return finalize_arena(
        aggregates,
        n_users,
        personas=personas,
        battery=battery,
        techniques=techniques,
        fault_every=fault_every,
    )

"""The altitude-control game of Section 5.2.

"We think of any sort of character (e.g. aircraft) staying on a fixed
position somewhere on the left side of the display.  The altitude of the
character is controlled by moving the DistScroll.  This is done to avoid
obstacles or to collect items.  The speed of the character could be
increased or decreased by pressing defined buttons.  Firing bullets or
dropping objects can also be simulated using one or more buttons."

:class:`AltitudeGame` is a complete implementation on the simulated
hardware: it reads the distance channel *continuously* (no islands —
games want the raw analog control), maps it to a pixel row on the 96x40
top display, scrolls obstacles and collectibles toward the aircraft, and
wires the three prototype buttons to speed-up, speed-down and fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.board import ADC_CHANNEL_DISTANCE, DistScrollBoard
from repro.sim.kernel import PeriodicTask
from repro.signal.filters import ExponentialMovingAverage

__all__ = ["GameConfig", "GameState", "AltitudeGame", "ReactivePilot"]


@dataclass(frozen=True)
class GameConfig:
    """Tunables of the altitude game.

    Attributes
    ----------
    tick_hz:
        Game loop rate.
    base_scroll_cols_s:
        World scroll speed in columns/second at speed level 1.
    obstacle_rate_hz:
        Mean obstacle spawn rate.
    collectible_rate_hz:
        Mean collectible spawn rate.
    range_cm:
        Distance range mapped onto the display height.
    aircraft_col:
        Fixed column of the aircraft ("left side of the display").
    max_speed_level:
        Upper bound of the speed setting.
    """

    tick_hz: float = 30.0
    base_scroll_cols_s: float = 24.0
    obstacle_rate_hz: float = 1.2
    collectible_rate_hz: float = 0.8
    range_cm: tuple[float, float] = (6.0, 27.0)
    aircraft_col: int = 8
    max_speed_level: int = 3


@dataclass
class GameState:
    """Score sheet of a running game."""

    score: int = 0
    collected: int = 0
    collisions: int = 0
    shots_fired: int = 0
    obstacles_destroyed: int = 0
    speed_level: int = 1
    ticks: int = 0
    game_over: bool = False


class AltitudeGame:
    """The obstacle game running directly on a :class:`DistScrollBoard`.

    The game is an alternative "firmware": construct it on a board
    *instead of* the menu firmware.  It shows that the platform's public
    hardware surface supports applications beyond menu browsing.

    Parameters
    ----------
    board:
        Assembled hardware.
    config:
        Game tunables.
    rng:
        Spawn randomness (defaults to a stream from the board's sim).
    """

    AIRCRAFT = ">"

    def __init__(
        self,
        board: DistScrollBoard,
        config: Optional[GameConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.board = board
        self.config = config or GameConfig()
        self.rng = rng if rng is not None else board.sim.spawn_rng()
        self.state = GameState()

        height = board.display_top.geometry.height_px
        width = board.display_top.geometry.width_px
        self._height = height
        self._width = width
        self._altitude_row = height // 2
        self._altitude_filter = ExponentialMovingAverage(alpha=0.45)
        #: live objects: list of [col (float), row, kind] where kind is
        #: "obstacle", "collectible" or "bullet".
        self._objects: list[list] = []
        self._scroll_accum = 0.0

        self._wire_buttons()
        period = 1.0 / self.config.tick_hz
        self._task = PeriodicTask(board.sim, period, self._tick, phase=period)

    # ------------------------------------------------------------------
    # controls
    # ------------------------------------------------------------------
    def _wire_buttons(self) -> None:
        buttons = self.board.buttons
        if "select" in buttons:
            buttons["select"].on_press = self.fire
        if "back" in buttons:
            buttons["back"].on_press = self.speed_up
        if "aux" in buttons:
            buttons["aux"].on_press = self.speed_down

    def fire(self) -> None:
        """Fire a bullet from the aircraft's position."""
        if self.state.game_over:
            return
        self.state.shots_fired += 1
        self._objects.append(
            [float(self.config.aircraft_col + 1), self._altitude_row, "bullet"]
        )

    def speed_up(self) -> None:
        """Increase the world scroll speed."""
        self.state.speed_level = min(
            self.state.speed_level + 1, self.config.max_speed_level
        )

    def speed_down(self) -> None:
        """Decrease the world scroll speed."""
        self.state.speed_level = max(self.state.speed_level - 1, 1)

    # ------------------------------------------------------------------
    # game loop
    # ------------------------------------------------------------------
    @property
    def altitude_row(self) -> int:
        """Current aircraft row (0 = top of the display)."""
        return self._altitude_row

    def _tick(self) -> None:
        if self.state.game_over:
            return
        state = self.state
        state.ticks += 1
        now = self.board.sim.now
        for button in self.board.buttons.values():
            button.poll(now)

        self._update_altitude(now)
        self._spawn_objects()
        self._advance_objects()
        self._resolve_collisions()
        self._render()

    def _update_altitude(self, now: float) -> None:
        code = self.board.adc.sample(now, ADC_CHANNEL_DISTANCE)
        voltage = code * self.board.adc.params.lsb_volts
        sensor = self.board.distance_sensor
        near, far = self.config.range_cm
        try:
            distance = sensor.distance_for_voltage(voltage)
        except ValueError:
            return  # out of range: hold the last altitude
        fraction = (distance - near) / (far - near)
        fraction = float(np.clip(fraction, 0.0, 1.0))
        # Near the body = low on screen feels natural (pulling down).
        raw_row = fraction * (self._height - 1)
        smoothed = self._altitude_filter.update(raw_row)
        self._altitude_row = int(round(smoothed))

    def _spawn_objects(self) -> None:
        dt = 1.0 / self.config.tick_hz
        if self.rng.random() < self.config.obstacle_rate_hz * dt:
            row = int(self.rng.integers(0, self._height))
            self._objects.append([float(self._width - 1), row, "obstacle"])
        if self.rng.random() < self.config.collectible_rate_hz * dt:
            row = int(self.rng.integers(0, self._height))
            self._objects.append([float(self._width - 1), row, "collectible"])

    def _advance_objects(self) -> None:
        dt = 1.0 / self.config.tick_hz
        world_speed = self.config.base_scroll_cols_s * self.state.speed_level
        bullet_speed = 60.0
        survivors = []
        for obj in self._objects:
            if obj[2] == "bullet":
                obj[0] += bullet_speed * dt
                if obj[0] < self._width:
                    survivors.append(obj)
            else:
                obj[0] -= world_speed * dt
                if obj[0] >= 0:
                    survivors.append(obj)
                elif obj[2] == "obstacle":
                    self.state.score += 1  # dodged it
        self._objects = survivors

    def _resolve_collisions(self) -> None:
        aircraft_col = self.config.aircraft_col
        aircraft_row = self._altitude_row
        remaining = []
        bullets = [o for o in self._objects if o[2] == "bullet"]
        for obj in self._objects:
            col, row, kind = obj
            if kind == "bullet":
                remaining.append(obj)
                continue
            # Bullet hits.
            hit = False
            if kind == "obstacle":
                for bullet in bullets:
                    if abs(bullet[0] - col) < 2.0 and bullet[1] == row:
                        hit = True
                        self.state.obstacles_destroyed += 1
                        self.state.score += 2
                        break
            if hit:
                continue
            # Aircraft contact.
            if int(round(col)) == aircraft_col and abs(row - aircraft_row) <= 1:
                if kind == "collectible":
                    self.state.collected += 1
                    self.state.score += 5
                else:
                    self.state.collisions += 1
                    self.state.score -= 3
                    if self.state.collisions >= 3:
                        self.state.game_over = True
                continue
            remaining.append(obj)
        self._objects = remaining

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _render(self) -> None:
        display = self.board.display_top
        frame = np.zeros((self._height, self._width), dtype=bool)
        frame[self._altitude_row, self.config.aircraft_col] = True
        if self._altitude_row > 0:
            frame[self._altitude_row - 1, self.config.aircraft_col - 1] = True
        if self._altitude_row < self._height - 1:
            frame[self._altitude_row + 1, self.config.aircraft_col - 1] = True
        for col, row, kind in self._objects:
            c = int(round(col))
            if 0 <= c < self._width:
                frame[row, c] = True
        # Direct blit: the game owns the panel (no text mode).
        display.framebuffer[:] = frame
        display.updates += 1
        self._render_status()

    def _render_status(self) -> None:
        bottom = self.board.display_bottom
        state = self.state
        bottom.set_line(0, f"score {state.score}")
        bottom.set_line(1, f"items {state.collected}")
        bottom.set_line(2, f"hits  {state.collisions}/3")
        bottom.set_line(3, f"speed {state.speed_level}")
        bottom.set_line(4, "GAME OVER" if state.game_over else "")

    def stop(self) -> None:
        """Stop the game loop."""
        self._task.stop()


class ReactivePilot:
    """A simple closed-loop pilot for the altitude game.

    Plays the way the §5.2 description implies a human would: steer the
    aircraft away from the nearest threatening obstacle (via the hand
    model, so all sensor/firmware dynamics apply), shoot when a threat is
    dead ahead, and cruise back to mid-altitude when the sky is clear.

    Parameters
    ----------
    game:
        The running game.
    hand:
        The hand holding the device (shared simulator).
    rng:
        Decision noise (shoot-vs-dodge choices).
    decision_hz:
        How often the pilot re-plans.
    """

    def __init__(self, game, hand, rng, decision_hz: float = 3.0) -> None:
        self.game = game
        self.hand = hand
        self.rng = rng
        self.decisions = 0
        period = 1.0 / decision_hz
        self._task = PeriodicTask(
            game.board.sim, period, self._decide, phase=period
        )

    def stop(self) -> None:
        """Stop piloting."""
        self._task.stop()

    def _decide(self) -> None:
        game = self.game
        if game.state.game_over:
            self._task.stop()
            return
        self.decisions += 1
        near, far = game.config.range_cm
        threats = [
            obj
            for obj in game._objects
            if obj[2] == "obstacle" and obj[0] > game.config.aircraft_col
        ]
        if threats:
            closest = min(threats, key=lambda o: o[0])
            if abs(closest[1] - game.altitude_row) <= 2:
                if self.rng.random() < 0.5:
                    game.fire()
                    return
                dodge = 8 if closest[1] < 20 else -8
                height = game.board.display_top.geometry.height_px
                fraction = (game.altitude_row + dodge) / (height - 1)
                fraction = float(np.clip(fraction, 0.0, 1.0))
                self.hand.move_to(near + fraction * (far - near), 0.4)
                return
        # Clear sky: drift back to mid-altitude.
        self.hand.move_to((near + far) / 2.0, 0.6)

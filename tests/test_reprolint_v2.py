"""Tests for the reprolint v2 project-wide engine.

Covers the phase-1 import/symbol graph, the intra-procedural dataflow
helpers, the flow-aware rules REP006–REP009, the content-addressed
incremental cache, the ``--fix`` autofixer, the new CLI surface
(``--changed``, ``--fix``, ``--prune-baseline``, ``--cache-dir``), the
seeded CI fixture trees, and hypothesis properties pinning engine
determinism across repeated runs, shuffled phase-2 selection order, and
warm-versus-cold cache state.
"""

from __future__ import annotations

import ast
import json
import shutil
import tempfile
import textwrap
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.devtools import LintCache, LintEngine
from repro.devtools.baseline import Baseline
from repro.devtools.dataflow import (
    FunctionFlow,
    is_rng_draw,
    is_set_expression,
)
from repro.devtools.fixer import apply_fixes, fix_tree
from repro.devtools.graph import (
    ProjectGraph,
    extract_facts,
    resolve_spawn_sites,
    stream_registry,
)
from repro.devtools.rules import ALL_RULES, PROJECT_RULES
from repro.devtools.rules.floatdet import FloatDeterminismRule
from repro.devtools.rules.iterorder import (
    IterationOrderRule,
    set_iteration_sites,
)
from repro.devtools.rules.parity import DualPathParityRule, ParityPair
from repro.devtools.rules.rngstreams import RngStreamCollisionRule

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "data" / "reprolint_fixtures"

REGISTRY_SOURCE = """\
PERSONA_STREAM = 0x9E37
TRIAL_STREAM = 0x79B9
"""


def facts_for(path: str, source: str):
    source = textwrap.dedent(source)
    return extract_facts(path, source, ast.parse(source))


def graph_of(**files: str) -> ProjectGraph:
    return ProjectGraph(
        [facts_for(path.replace("__", "/") + ".py", src) for path, src in files.items()]
    )


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint(source: str, path: str = "sim/example.py", rules=None):
    engine = LintEngine(rules, project_rules=())
    return engine.lint_source(textwrap.dedent(source), path)


def rule_ids(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# phase 1: facts extraction
# ---------------------------------------------------------------------------
class TestFactsExtraction:
    def test_captures_imports_symbols_and_exports(self):
        facts = facts_for(
            "sim/demo.py",
            """
            import numpy as np
            from repro.sim.streams import PERSONA_STREAM as STREAM

            __all__ = ["Engine", "LIMIT"]

            LIMIT = 42


            class Engine:
                def step(self):
                    return LIMIT
            """,
        )
        assert facts.parts == ("sim", "demo")
        modules = {record.module for record in facts.imports}
        assert "numpy" in modules
        assert "repro.sim.streams" in modules
        assert facts.exports == ("Engine", "LIMIT")
        assert facts.symbols["LIMIT"].value == 42
        assert "Engine" in facts.symbols
        assert "Engine.step" in facts.symbols

    def test_spawn_sites_classified(self):
        facts = facts_for(
            "sim/demo.py",
            """
            import numpy as np

            DOMAIN = 0x10


            def spawn(seed, index):
                a = np.random.SeedSequence(seed, spawn_key=(0x99, index))
                b = np.random.SeedSequence(seed, spawn_key=(DOMAIN, index))
                c = np.random.SeedSequence(seed, spawn_key=key_of(index))
                return a, b, c
            """,
        )
        kinds = sorted(site.domain_kind for site in facts.spawn_sites)
        assert kinds == ["literal", "name", "opaque"]

    def test_facts_roundtrip_json(self):
        facts = facts_for(
            "sim/demo.py",
            """
            import numpy as np

            X = 1

            def f(seed):
                return np.random.SeedSequence(seed, spawn_key=(X, 0))
            """,
        )
        clone = type(facts).from_json(facts.to_json())
        assert clone == facts


# ---------------------------------------------------------------------------
# phase 1: project graph
# ---------------------------------------------------------------------------
class TestProjectGraph:
    def test_resolve_module_by_suffix(self):
        graph = graph_of(sim__streams=REGISTRY_SOURCE)
        facts = graph.resolve_module("repro.sim.streams")
        assert facts is not None and facts.path == "sim/streams.py"
        assert graph.resolve_module("sim.streams") is facts
        assert graph.resolve_module("numpy") is None

    def test_resolve_constant_across_modules(self):
        graph = graph_of(
            sim__streams=REGISTRY_SOURCE,
            interaction__personas="""
            from repro.sim.streams import PERSONA_STREAM
            """,
        )
        facts = graph.files["interaction/personas.py"]
        resolved = graph.resolve_constant(facts, "PERSONA_STREAM")
        assert resolved is not None
        assert resolved.symbol.value == 0x9E37
        assert resolved.path == "sim/streams.py"

    def test_resolve_constant_follows_alias(self):
        graph = graph_of(
            sim__streams=REGISTRY_SOURCE,
            core__batch="""
            from repro.sim.streams import TRIAL_STREAM as LOCAL_STREAM
            """,
        )
        facts = graph.files["core/batch.py"]
        resolved = graph.resolve_constant(facts, "LOCAL_STREAM")
        assert resolved is not None and resolved.symbol.value == 0x79B9

    def test_import_closure_is_transitive(self):
        graph = graph_of(
            a="X = 1",
            b="from repro.a import X",
            c="from repro.b import X",
        )
        closure = graph.import_closure("c.py")
        assert {"a.py", "b.py", "c.py"} <= set(closure)

    def test_closure_digest_changes_with_dependency(self):
        before = graph_of(a="X = 1", b="from repro.a import X")
        after = graph_of(a="X = 2", b="from repro.a import X")
        assert before.closure_digest("b.py") != after.closure_digest("b.py")
        # An unrelated file's digest is unaffected.
        lone_before = graph_of(a="X = 1", b="from repro.a import X", c="Y = 0")
        lone_after = graph_of(a="X = 2", b="from repro.a import X", c="Y = 0")
        assert lone_before.closure_digest("c.py") == lone_after.closure_digest(
            "c.py"
        )

    def test_dependents_include_importers(self):
        graph = graph_of(
            a="X = 1",
            b="from repro.a import X",
            c="Y = 2",
        )
        dependents = graph.dependents_of(["a.py"])
        assert "a.py" in dependents
        assert "b.py" in dependents
        assert "c.py" not in dependents


# ---------------------------------------------------------------------------
# phase 1: spawn-site resolution
# ---------------------------------------------------------------------------
class TestSpawnResolution:
    def _graph(self, user_source: str) -> ProjectGraph:
        return graph_of(sim__streams=REGISTRY_SOURCE, sim__user=user_source)

    def test_registry_collected(self):
        graph = self._graph("X = 1")
        registry = stream_registry(graph)
        assert registry == {0x9E37: "PERSONA_STREAM", 0x79B9: "TRIAL_STREAM"}

    def test_registered_import_is_ok(self):
        graph = self._graph(
            """
            import numpy as np
            from repro.sim.streams import PERSONA_STREAM

            def f(seed):
                return np.random.SeedSequence(seed, spawn_key=(PERSONA_STREAM, 0))
            """
        )
        (site,) = [
            s for s in resolve_spawn_sites(graph) if s.path == "sim/user.py"
        ]
        assert site.status == "ok"
        assert site.value == 0x9E37

    def test_literal_and_unregistered(self):
        graph = self._graph(
            """
            import numpy as np

            ROGUE = 0x123

            def f(seed):
                a = np.random.SeedSequence(seed, spawn_key=(0x77, 0))
                b = np.random.SeedSequence(seed, spawn_key=(ROGUE, 0))
                return a, b
            """
        )
        statuses = sorted(
            s.status for s in resolve_spawn_sites(graph) if s.path == "sim/user.py"
        )
        assert statuses == ["literal", "unregistered"]

    def test_shadowed_registry_value(self):
        graph = self._graph(
            """
            import numpy as np

            PERSONA_STREAM = 0x9E37  # local copy, not the registry symbol

            def f(seed):
                return np.random.SeedSequence(seed, spawn_key=(PERSONA_STREAM, 0))
            """
        )
        (site,) = [
            s for s in resolve_spawn_sites(graph) if s.path == "sim/user.py"
        ]
        assert site.status == "shadow"


# ---------------------------------------------------------------------------
# dataflow helpers
# ---------------------------------------------------------------------------
class TestDataflow:
    def _flow(self, body: str) -> FunctionFlow:
        tree = ast.parse(textwrap.dedent(body))
        function = tree.body[0]
        assert isinstance(function, ast.FunctionDef)
        return FunctionFlow(function)

    def test_resolve_follows_chain(self):
        flow = self._flow(
            """
            def f():
                a = {1, 2}
                b = a
                c = b
                return c
            """
        )
        resolved = flow.resolve("c")
        assert isinstance(resolved, ast.Set)

    def test_is_set_expression_positive_forms(self):
        flow = self._flow(
            """
            def f(x):
                base = set(x)
                return base
            """
        )
        cases = [
            "{1, 2}",
            "set(x)",
            "frozenset(x)",
            "{v for v in x}",
            "a | b if is_set_operand else {1}",
        ]
        assert is_set_expression(ast.parse("{1} | other").body[0].value)
        for code in cases[:4]:
            node = ast.parse(code, mode="eval").body
            assert is_set_expression(node), code
        assert is_set_expression(ast.parse("base", mode="eval").body, flow)
        assert is_set_expression(
            ast.parse("base.union(other)", mode="eval").body, flow
        )

    def test_is_set_expression_negative_forms(self):
        for code in ["[1, 2]", "{1: 2}", "sorted(x)", "x.keys()", "f(x)"]:
            node = ast.parse(code, mode="eval").body
            assert not is_set_expression(node), code

    def test_is_rng_draw(self):
        assert is_rng_draw(ast.parse("rng.random()", mode="eval").body)
        assert is_rng_draw(
            ast.parse("float(self._rng.normal(0, 1))", mode="eval").body
        )
        assert not is_rng_draw(ast.parse("rng.spawn(3)", mode="eval").body)
        assert not is_rng_draw(ast.parse("math.sqrt(x)", mode="eval").body)


# ---------------------------------------------------------------------------
# REP006 — rng stream collisions
# ---------------------------------------------------------------------------
class TestRngStreamCollision:
    def _lint_tree(self, tmp_path: Path, files: dict[str, str]):
        write_tree(tmp_path, files)
        engine = LintEngine([RngStreamCollisionRule], project_rules=())
        return engine.lint_project(tmp_path, tests_root=tmp_path / "no-tests").findings

    def test_literal_domain_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f(seed):
                return np.random.SeedSequence(seed, spawn_key=(0x1234, 0))
            """,
            rules=[RngStreamCollisionRule],
        )
        assert rule_ids(findings) == ["REP006"]
        assert "literal" in findings[0].message

    def test_registered_constant_clean(self, tmp_path):
        findings = self._lint_tree(
            tmp_path,
            {
                "sim/streams.py": REGISTRY_SOURCE,
                "sim/user.py": textwrap.dedent(
                    """
                    import numpy as np
                    from repro.sim.streams import PERSONA_STREAM

                    def f(seed, i):
                        return np.random.SeedSequence(seed, spawn_key=(PERSONA_STREAM, i))
                    """
                ),
            },
        )
        assert findings == []

    def test_cross_module_collision_flagged(self, tmp_path):
        user = """
            import numpy as np
            from repro.sim.streams import PERSONA_STREAM

            def f(seed, i):
                return np.random.SeedSequence(seed, spawn_key=(PERSONA_STREAM, i))
            """
        findings = self._lint_tree(
            tmp_path,
            {
                "sim/streams.py": REGISTRY_SOURCE,
                "sim/user_a.py": textwrap.dedent(user),
                "sim/user_b.py": textwrap.dedent(user),
            },
        )
        assert len(findings) == 2  # one per colliding module
        assert all("also spawned in" in f.message for f in findings)

    def test_registry_duplicate_values_flagged(self, tmp_path):
        findings = self._lint_tree(
            tmp_path,
            {
                "sim/streams.py": "A_STREAM = 0x10\nB_STREAM = 0x10\n",
            },
        )
        assert rule_ids(findings) == ["REP006"]
        assert "pairwise distinct" in findings[0].message

    def test_data_dependent_draw_count_flagged(self):
        findings = lint(
            """
            def rejection_sample(rng):
                value = rng.random()
                while value > 0.5:
                    value = rng.random()
                return value
            """,
            rules=[RngStreamCollisionRule],
        )
        assert rule_ids(findings) == ["REP006"]
        assert "data-dependent" in findings[0].message

    def test_bounded_loop_clean(self):
        findings = lint(
            """
            def per_sample(rng, n):
                out = []
                for _ in range(n):
                    out.append(rng.random())
                return out
            """,
            rules=[RngStreamCollisionRule],
        )
        assert findings == []

    def test_waiver_suppresses(self):
        findings = lint(
            """
            import numpy as np

            def f(seed):
                # reprolint: allow REP006 (one-off fixture stream, never merged)
                return np.random.SeedSequence(seed, spawn_key=(0x1234, 0))
            """,
            rules=[RngStreamCollisionRule],
        )
        assert findings == []

    def test_waiver_requires_reason(self):
        findings = lint(
            """
            import numpy as np

            def f(seed):
                # reprolint: allow REP006
                return np.random.SeedSequence(seed, spawn_key=(0x1234, 0))
            """,
            rules=[RngStreamCollisionRule],
        )
        assert rule_ids(findings) == ["REP006"]


# ---------------------------------------------------------------------------
# REP007 — float determinism
# ---------------------------------------------------------------------------
class TestFloatDeterminism:
    def test_float_sum_in_experiments_flagged(self):
        findings = lint(
            "def f(xs):\n    return sum(xs)\n",
            path="experiments/report.py",
            rules=[FloatDeterminismRule],
        )
        assert rule_ids(findings) == ["REP007"]

    def test_counting_sum_clean(self):
        findings = lint(
            "def f(xs):\n    return sum(1 for x in xs if x > 0)\n",
            path="experiments/report.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []

    def test_len_sum_clean(self):
        findings = lint(
            "def f(rows):\n    return sum(len(r) for r in rows)\n",
            path="host/report.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []

    def test_exact_accumulator_module_exempt(self):
        findings = lint(
            "def f(xs):\n    return sum(xs)\n",
            path="analysis/stats.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []

    def test_out_of_scope_path_clean(self):
        findings = lint(
            "def f(xs):\n    return sum(xs)\n",
            path="obs/export.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []

    def test_numpy_pow_in_sensors_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f(v):
                return np.asarray(v) ** 1.3
            """,
            path="sensors/model.py",
            rules=[FloatDeterminismRule],
        )
        assert rule_ids(findings) == ["REP007"]

    def test_np_power_call_flagged(self):
        findings = lint(
            """
            import numpy as np

            def f(v):
                return np.power(v, 1.3)
            """,
            path="signal/filters.py",
            rules=[FloatDeterminismRule],
        )
        assert rule_ids(findings) == ["REP007"]

    def test_scalar_pow_clean(self):
        findings = lint(
            "def f(x):\n    return x ** 2\n",
            path="sensors/model.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []

    def test_waiver_on_same_line(self):
        findings = lint(
            "def f(rows):\n"
            "    return sum(r[1] for r in rows)"
            "  # reprolint: allow REP007 (integer tick counts)\n",
            path="experiments/report.py",
            rules=[FloatDeterminismRule],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# REP008 — iteration order
# ---------------------------------------------------------------------------
class TestIterationOrder:
    def test_for_over_set_literal_flagged(self):
        findings = lint(
            "def f():\n    for x in {1, 2, 3}:\n        print(x)\n",
            rules=[IterationOrderRule],
        )
        assert rule_ids(findings) == ["REP008"]

    def test_sorted_wrap_clean(self):
        findings = lint(
            "def f():\n    for x in sorted({1, 2, 3}):\n        print(x)\n",
            rules=[IterationOrderRule],
        )
        assert findings == []

    def test_list_of_set_flagged(self):
        findings = lint(
            "def f(xs):\n    return list({x for x in xs})\n",
            rules=[IterationOrderRule],
        )
        assert rule_ids(findings) == ["REP008"]

    def test_comprehension_over_set_variable_flagged(self):
        findings = lint(
            """
            def f(xs):
                seen = set(xs)
                return [x + 1 for x in seen]
            """,
            rules=[IterationOrderRule],
        )
        assert rule_ids(findings) == ["REP008"]

    def test_genexp_absorbed_by_sorted_clean(self):
        findings = lint(
            "def f(kinds):\n"
            '    return ", ".join(sorted(k.name for k in set(kinds)))\n',
            rules=[IterationOrderRule],
        )
        assert findings == []

    def test_set_comprehension_from_set_clean(self):
        findings = lint(
            "def f(xs):\n    return {x.lower() for x in set(xs)}\n",
            rules=[IterationOrderRule],
        )
        assert findings == []

    def test_dict_iteration_clean(self):
        findings = lint(
            "def f(d):\n    for k in d:\n        print(k)\n",
            rules=[IterationOrderRule],
        )
        assert findings == []

    def test_set_iteration_sites_shared_helper(self):
        tree = ast.parse("for x in {1, 2}:\n    pass\n")
        sites = set_iteration_sites(tree)
        assert len(sites) == 1
        _, iterable = sites[0]
        assert isinstance(iterable, ast.Set)


# ---------------------------------------------------------------------------
# REP009 — dual-path parity (project rule)
# ---------------------------------------------------------------------------
class _OnePair(DualPathParityRule):
    pairs = (ParityPair("mod/impl.py", "scalar_fn", "vector_fn"),)


GOOD_IMPL = """
__all__ = ["scalar_fn", "vector_fn"]


def scalar_fn(x):
    return x


def vector_fn(xs):
    return xs
"""

GOOD_TEST = """
from repro.mod.impl import scalar_fn, vector_fn


def test_parity():
    assert scalar_fn(1) == vector_fn([1])[0]
"""


class TestDualPathParity:
    def _findings(self, tmp_path, impl: str, test: str | None = GOOD_TEST):
        files = {"mod/impl.py": impl}
        if test is not None:
            files["tests/test_parity.py"] = test
        write_tree(tmp_path, files)
        engine = LintEngine((), project_rules=[_OnePair])
        return engine.lint_project(tmp_path, tests_root=tmp_path / "tests").findings

    def test_intact_pair_clean(self, tmp_path):
        assert self._findings(tmp_path, GOOD_IMPL) == []

    def test_missing_vector_half_flagged(self, tmp_path):
        impl = GOOD_IMPL.replace("def vector_fn(xs):\n    return xs\n", "")
        impl = impl.replace('__all__ = ["scalar_fn", "vector_fn"]',
                            '__all__ = ["scalar_fn"]')
        (finding,) = self._findings(tmp_path, impl)
        assert finding.rule == "REP009"
        assert "vector_fn" in finding.message

    def test_unexported_pair_flagged(self, tmp_path):
        impl = GOOD_IMPL.replace(
            '__all__ = ["scalar_fn", "vector_fn"]', '__all__ = ["scalar_fn"]'
        )
        (finding,) = self._findings(tmp_path, impl)
        assert finding.rule == "REP009"
        assert "export" in finding.message

    def test_missing_test_reference_flagged(self, tmp_path):
        lame_test = GOOD_TEST.replace("vector_fn", "scalar_fn")
        (finding,) = self._findings(tmp_path, GOOD_IMPL, lame_test)
        assert finding.rule == "REP009"
        assert "test" in finding.message

    def test_module_absent_skips(self, tmp_path):
        write_tree(tmp_path, {"other/file.py": "X = 1\n"})
        engine = LintEngine((), project_rules=[_OnePair])
        result = engine.lint_project(tmp_path, tests_root=tmp_path / "tests")
        assert result.findings == []

    def test_real_tree_registry_pairs_hold(self):
        engine = LintEngine((), project_rules=list(PROJECT_RULES))
        src_root = REPO_ROOT / "src" / "repro"
        findings = engine.lint_project(src_root).findings
        assert findings == []


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------
TREE_WITH_FINDINGS = {
    "sim/streams.py": REGISTRY_SOURCE,
    "sim/user.py": """
        import numpy as np
        from repro.sim.streams import PERSONA_STREAM

        def f(seed, i):
            return np.random.SeedSequence(seed, spawn_key=(PERSONA_STREAM, i))
        """,
    "experiments/report.py": """
        def mean(xs):
            return sum(xs) / len(xs)
        """,
}


class TestLintCache:
    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        cache_dir = tmp_path / "cache"
        engine = LintEngine()
        cold_cache = LintCache(cache_dir)
        cold = engine.lint_project(tree, cache=cold_cache)
        cold_cache.save()
        assert cold.stats.cache_hits == 0

        warm_cache = LintCache(cache_dir)
        warm = engine.lint_project(tree, cache=warm_cache)
        assert warm.stats.cache_hits == warm.stats.linted
        assert warm.stats.parsed == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_editing_dependency_invalidates_importers(self, tmp_path):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        cache_dir = tmp_path / "cache"
        engine = LintEngine()
        cache = LintCache(cache_dir)
        engine.lint_project(tree, cache=cache)
        cache.save()

        # Append a new registry constant: sim/user.py's import closure
        # changed, so its cached findings must be recomputed.
        streams = tree / "sim" / "streams.py"
        streams.write_text(
            streams.read_text(encoding="utf-8") + "EXTRA_STREAM = 0x5AD\n",
            encoding="utf-8",
        )
        warm_cache = LintCache(cache_dir)
        warm = engine.lint_project(tree, cache=warm_cache)
        assert warm.stats.cache_hits < warm.stats.linted

    def test_corrupt_cache_treated_as_empty(self, tmp_path):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "reprolint-cache.json").write_text(
            "{not json", encoding="utf-8"
        )
        engine = LintEngine()
        result = engine.lint_project(tree, cache=LintCache(cache_dir))
        assert result.stats.cache_hits == 0
        assert result.findings  # the REP007 sum is still found

    def test_rule_set_change_invalidates(self, tmp_path):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        cache_dir = tmp_path / "cache"
        full = LintEngine()
        cache = LintCache(cache_dir)
        full.lint_project(tree, cache=cache)
        cache.save()
        narrow = LintEngine([FloatDeterminismRule], project_rules=())
        warm = narrow.lint_project(tree, cache=LintCache(cache_dir))
        assert warm.stats.cache_hits == 0

    def test_changed_selection_expands_to_dependents(self, tmp_path):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        engine = LintEngine()
        selection = engine.changed_selection(tree, ["sim/streams.py"])
        assert "sim/streams.py" in selection
        assert "sim/user.py" in selection
        assert "experiments/report.py" not in selection


# ---------------------------------------------------------------------------
# seeded CI fixtures
# ---------------------------------------------------------------------------
class TestSeededFixtures:
    @pytest.mark.parametrize(
        "name, rule",
        [
            ("rep006", "REP006"),
            ("rep007", "REP007"),
            ("rep008", "REP008"),
            ("rep009", "REP009"),
        ],
    )
    def test_fixture_yields_exactly_one_finding(self, name, rule):
        root = FIXTURES / name
        engine = LintEngine()
        findings = engine.lint_project(root).findings
        matching = [f for f in findings if f.rule == rule]
        assert len(matching) == 1, [f.to_dict() for f in findings]

    @pytest.mark.parametrize(
        "name, rule",
        [
            ("rep006", "REP006"),
            ("rep007", "REP007"),
            ("rep008", "REP008"),
            ("rep009", "REP009"),
        ],
    )
    def test_fixture_via_cli_rules_filter(self, name, rule, capsys):
        code = main(
            [
                "lint",
                "--root",
                str(FIXTURES / name),
                "--rules",
                rule,
                "--no-baseline",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["rule"] for f in payload["findings"]] == [rule]


# ---------------------------------------------------------------------------
# --fix autofixer
# ---------------------------------------------------------------------------
class TestFixer:
    def test_rep008_sorted_insertion(self):
        source = "for x in {3, 1, 2}:\n    print(x)\n"
        fixed, count = apply_fixes(source, "sim/x.py")
        assert count == 1
        assert "in sorted({3, 1, 2})" in fixed
        compile(fixed, "sim/x.py", "exec")

    def test_rep002_generator_rewrite(self):
        source = "import numpy as np\nv = np.random.normal(0.0, 1.0)\n"
        fixed, count = apply_fixes(source, "sim/x.py")
        assert count == 1
        assert "np.random.default_rng(0).normal(0.0, 1.0)" in fixed

    def test_randint_becomes_integers(self):
        source = "import numpy as np\nv = np.random.randint(0, 10)\n"
        fixed, _ = apply_fixes(source, "sim/x.py")
        assert "default_rng(0).integers(0, 10)" in fixed

    def test_shape_style_rand_left_alone(self):
        # Legacy rand(d0, d1) has no argument-compatible Generator
        # equivalent — must NOT be rewritten mechanically.
        source = "import numpy as np\nv = np.random.rand(3, 4)\n"
        fixed, count = apply_fixes(source, "sim/x.py")
        assert count == 0
        assert fixed == source

    def test_waived_line_not_fixed(self):
        source = (
            "# reprolint: allow REP008 (tiny fixed set, output unordered)\n"
            "for x in {1, 2}:\n    print(x)\n"
        )
        fixed, count = apply_fixes(source, "sim/x.py")
        assert count == 0
        assert fixed == source

    def test_fix_is_idempotent_and_relints_clean(self):
        source = (FIXTURES / "fixable" / "tools" / "mixer.py").read_text(
            encoding="utf-8"
        )
        once, count = apply_fixes(source, "tools/mixer.py")
        assert count == 2
        twice, second_count = apply_fixes(once, "tools/mixer.py")
        assert second_count == 0
        assert twice == once
        engine = LintEngine()
        assert engine.lint_source(once, "tools/mixer.py") == []

    def test_fix_tree_counts_files(self, tmp_path):
        shutil.copytree(FIXTURES / "fixable", tmp_path / "tree")
        result = fix_tree(tmp_path / "tree", ["tools/mixer.py"])
        assert result.fixes == 2
        assert result.files_changed == ["tools/mixer.py"]


# ---------------------------------------------------------------------------
# CLI v2 surface
# ---------------------------------------------------------------------------
class TestCliV2:
    def test_unknown_rule_id_exits_2_listing_valid(self, capsys):
        code = main(["lint", "--rules", "REP999"])
        captured = capsys.readouterr()
        assert code == 2
        for rid in ("REP001", "REP006", "REP009"):
            assert rid in captured.err

    def test_empty_rules_exits_2(self, capsys):
        code = main(["lint", "--rules", ","])
        assert code == 2
        assert "no rule ids" in capsys.readouterr().err

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        tree = write_tree(tmp_path / "tree", TREE_WITH_FINDINGS)
        cache_dir = tmp_path / "cache"
        argv = [
            "lint",
            "--root",
            str(tree),
            "--no-baseline",
            "--cache-dir",
            str(cache_dir),
            "--verbose",
        ]
        assert main(argv) == 1
        first = capsys.readouterr().out
        assert "0 cache hit(s)" in first
        assert main(argv) == 1
        second = capsys.readouterr().out
        assert "0 cache hit(s)" not in second

    def test_fix_flag_fixes_tree(self, tmp_path, capsys):
        shutil.copytree(FIXTURES / "fixable", tmp_path / "tree")
        code = main(
            ["lint", "--root", str(tmp_path / "tree"), "--no-baseline", "--fix"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applied 2 fix(es)" in out
        # Second --fix run: nothing left to do, files byte-stable.
        before = (tmp_path / "tree" / "tools" / "mixer.py").read_bytes()
        code = main(
            ["lint", "--root", str(tmp_path / "tree"), "--no-baseline", "--fix"]
        )
        assert code == 0
        assert (tmp_path / "tree" / "tools" / "mixer.py").read_bytes() == before

    def test_prune_baseline_drops_stale_entries(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path / "tree",
            {"experiments/report.py": "def f(xs):\n    return sum(xs)\n"},
        )
        engine = LintEngine()
        findings = engine.lint_project(tree).findings
        baseline_path = tree / "reprolint-baseline.json"
        Baseline.from_findings(findings, justification="transitional").save(
            baseline_path
        )
        # Fix the violation: the baseline entry goes stale.
        (tree / "experiments" / "report.py").write_text(
            "def f(xs):\n    return len(xs)\n", encoding="utf-8"
        )
        code = main(
            [
                "lint",
                "--root",
                str(tree),
                "--baseline",
                str(baseline_path),
                "--prune-baseline",
            ]
        )
        assert code == 0
        pruned = Baseline.load(baseline_path)
        assert len(pruned.entries) == 0

    def test_prune_requires_full_run(self, tmp_path, capsys):
        tree = write_tree(
            tmp_path / "tree", {"sim/x.py": "X = 1\n"}
        )
        baseline_path = tree / "reprolint-baseline.json"
        Baseline.from_findings([], justification="x").save(baseline_path)
        code = main(
            [
                "lint",
                "--root",
                str(tree),
                "--baseline",
                str(baseline_path),
                "--rules",
                "REP007",
                "--prune-baseline",
            ]
        )
        assert code == 2

    def test_warm_lint_of_real_tree_is_fast(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["lint", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        start = time.perf_counter()
        assert main(argv) == 0
        elapsed = time.perf_counter() - start
        capsys.readouterr()
        assert elapsed < 5.0, f"warm lint took {elapsed:.2f}s"


# ---------------------------------------------------------------------------
# determinism properties
# ---------------------------------------------------------------------------
FIXTURE_FILES = {
    "sim/streams.py": REGISTRY_SOURCE,
    "sim/user.py": TREE_WITH_FINDINGS["sim/user.py"],
    "experiments/report.py": TREE_WITH_FINDINGS["experiments/report.py"],
    "obs/export.py": (FIXTURES / "rep008" / "obs" / "export.py").read_text(
        encoding="utf-8"
    ),
    "tools/mixer.py": (
        FIXTURES / "fixable" / "tools" / "mixer.py"
    ).read_text(encoding="utf-8"),
}


def _payload(findings) -> list[dict]:
    return [f.to_dict() for f in findings]


class TestEngineDeterminism:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        subset=st.sets(
            st.sampled_from(sorted(FIXTURE_FILES)), min_size=1, max_size=5
        ),
        data=st.data(),
    )
    def test_findings_pure_function_of_tree(self, subset, data):
        """Repeated runs, shuffled selection order, and warm-vs-cold
        cache state all produce byte-identical findings."""
        tmp = Path(tempfile.mkdtemp(prefix="reprolint-prop-"))
        try:
            tree = write_tree(
                tmp / "tree", {k: FIXTURE_FILES[k] for k in subset}
            )
            cache_dir = tmp / "cache"
            engine = LintEngine()

            cold = engine.lint_project(tree)
            again = engine.lint_project(tree)
            assert _payload(again.findings) == _payload(cold.findings)

            # Shuffled phase-2 selection: restricting to all paths in an
            # arbitrary order must equal the unrestricted run.
            shuffled = data.draw(st.permutations(sorted(subset)))
            selected = engine.lint_project(tree, only_paths=shuffled)
            assert _payload(selected.findings) == _payload(cold.findings)

            # Warm cache replays identical findings.
            cache = LintCache(cache_dir)
            engine.lint_project(tree, cache=cache)
            cache.save()
            warm = engine.lint_project(tree, cache=LintCache(cache_dir))
            assert _payload(warm.findings) == _payload(cold.findings)
            assert warm.stats.cache_hits == warm.stats.linted
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_occurrence_disambiguates_identical_findings(self):
        source = (
            "def f(xs):\n    return sum(xs)\n"
            "def g(xs):\n    return sum(xs)\n"
        )
        engine = LintEngine([FloatDeterminismRule], project_rules=())
        findings = engine.lint_source(source, "experiments/report.py")
        assert [f.occurrence for f in findings] == [0, 1]
        assert len({f.key() for f in findings}) == 2


# ---------------------------------------------------------------------------
# rule metadata (feeds docs/LINTING.md)
# ---------------------------------------------------------------------------
class TestRuleMetadata:
    @pytest.mark.parametrize("rule_cls", ALL_RULES + PROJECT_RULES)
    def test_every_rule_documents_itself(self, rule_cls):
        assert rule_cls.rule_id.startswith("REP")
        assert rule_cls.title
        assert rule_cls.rationale
        assert rule_cls.example
        assert rule_cls.escape_hatch

    def test_rule_ids_unique_and_sorted(self):
        ids = [cls.rule_id for cls in ALL_RULES + PROJECT_RULES]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

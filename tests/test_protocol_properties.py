"""Property-based tests on the wire protocols and event serialization."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import (
    ButtonEvent,
    ChunkChanged,
    EntryActivated,
    FastScroll,
    HighlightChanged,
    SubmenuEntered,
    SubmenuLeft,
    ZoomChanged,
    decode_event,
)
from repro.core.menu import build_menu
from repro.hardware.pda import build_pda_device
from repro.hardware.serial import UART
from repro.sim.kernel import Simulator

_label = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0,
    max_size=40,
)
_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_index = st.integers(min_value=0, max_value=10**6)


class TestEventRoundtrips:
    @given(t=_time, i=_index, label=_label, p=_index)
    @settings(max_examples=50, deadline=None)
    def test_highlight_changed(self, t, i, label, p):
        event = HighlightChanged(time=t, index=i, label=label,
                                 previous_index=p)
        assert decode_event(event.to_bytes()) == event

    @given(
        t=_time,
        label=_label,
        action=st.one_of(st.none(), _label),
        path=st.lists(_label, min_size=0, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_entry_activated(self, t, label, action, path):
        event = EntryActivated(
            time=t, label=label, action=action, path=tuple(path)
        )
        decoded = decode_event(event.to_bytes())
        assert decoded == event
        assert isinstance(decoded.path, tuple)

    @given(t=_time, label=_label, depth=_index)
    @settings(max_examples=30, deadline=None)
    def test_submenu_events(self, t, label, depth):
        entered = SubmenuEntered(time=t, label=label, depth=depth)
        left = SubmenuLeft(time=t, depth=depth)
        assert decode_event(entered.to_bytes()) == entered
        assert decode_event(left.to_bytes()) == left

    @given(t=_time, a=_index, b=_index)
    @settings(max_examples=30, deadline=None)
    def test_chunk_zoom_fast_button(self, t, a, b):
        for event in (
            ChunkChanged(time=t, chunk=a, n_chunks=b),
            ZoomChanged(time=t, zoom="fine", window_start=a, window_end=b),
            FastScroll(time=t, index=a, step=1),
            ButtonEvent(time=t, name="select", pressed=True),
        ):
            assert decode_event(event.to_bytes()) == event


class TestUARTProperties:
    @given(payload=st.binary(min_size=0, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_clean_line_roundtrip(self, payload):
        sim = Simulator(seed=0)
        uart = UART(sim)
        uart.write(payload)
        sim.run()
        assert uart.read() == payload

    @given(
        chunks=st.lists(
            st.binary(min_size=1, max_size=40), min_size=1, max_size=10
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_multi_write_preserves_order(self, chunks):
        sim = Simulator(seed=0)
        uart = UART(sim)
        for chunk in chunks:
            uart.write(chunk)
        sim.run()
        assert uart.read() == b"".join(chunks)


class TestFrameParserProperties:
    @given(
        garbage=st.binary(min_size=0, max_size=30),
        codes=st.lists(
            st.integers(min_value=0, max_value=1023), min_size=1, max_size=10
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_parser_resyncs_after_arbitrary_garbage(self, garbage, codes):
        """Valid frames after any garbage prefix are still decoded."""
        sim, addon, driver = build_pda_device(
            build_menu(["A", "B", "C"]), seed=0, noisy=False
        )
        addon.stop()  # silence the add-on; feed bytes by hand
        ok_before = driver.frames_ok
        for byte in garbage:
            driver._on_byte(byte)
        for code in codes:
            hi, lo = (code >> 8) & 0xFF, code & 0xFF
            for byte in (0xA5, hi, lo, (hi + lo) & 0xFF):
                driver._on_byte(byte)
        # Every intact frame must eventually be accepted.  Garbage may
        # consume at most a few leading frames while resyncing.
        assert driver.frames_ok - ok_before >= len(codes) - 2

    @given(code=st.integers(min_value=0, max_value=1023))
    @settings(max_examples=50, deadline=None)
    def test_corrupted_checksum_rejected(self, code):
        sim, addon, driver = build_pda_device(
            build_menu(["A", "B"]), seed=0, noisy=False
        )
        addon.stop()
        bad_before = driver.frames_bad
        hi, lo = (code >> 8) & 0xFF, code & 0xFF
        checksum = ((hi + lo) & 0xFF) ^ 0x01  # always wrong
        for byte in (0xA5, hi, lo, checksum):
            driver._on_byte(byte)
        assert driver.frames_bad == bad_before + 1


class TestBatteryProperty:
    @given(
        draws=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_state_of_charge_never_increases(self, draws):
        from repro.hardware.battery import Battery

        battery = Battery()
        last = battery.state_of_charge
        for current, duration in draws:
            battery.draw(current, duration)
            assert battery.state_of_charge <= last + 1e-12
            last = battery.state_of_charge

"""ROB-FAULT — selection error rate vs. hardware fault intensity.

The paper's Section 4.2 catalogues what can go wrong between the hand
and the highlight — fold-back ambiguity, light/surface disturbances, and
the firmware-side defenses (plausibility gate, filtering, island gaps).
This experiment stresses the whole stack deliberately: a
:class:`~repro.faults.FaultPlan` injects ADC glitches, I2C bus errors,
display controller resets, RF packet loss and sensor occlusion/dropout
at a swept *intensity* (the fraction of run time under fault, which also
scales each fault's per-opportunity probability), while a scripted hand
performs pointing trials.

Reported per intensity: the selection error rate (trials where the
highlight did not land on the target), the number of injected faults and
fault windows, and the firmware's recovery counts.  Expected shape —
and what the benchmark asserts — is a monotonically non-decreasing error
rate, near zero when healthy, with every injected fault paired with a
recovery record in the trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.faults import FAULT_CHANNEL, RECOVERY_CHANNEL, FaultPlan

__all__ = ["run_fault_sweep", "unpaired_faults"]


def unpaired_faults(device: DistScroll) -> set[tuple[str, int]]:
    """Injected ``(kind, window_id)`` pairs with no recovery record.

    Empty on a healthy run: the firmware closes every fault window with a
    recovery action once the window expires.
    """
    injected = _trace_pairs(device, FAULT_CHANNEL)
    recovered = _trace_pairs(device, RECOVERY_CHANNEL)
    return injected - recovered


def _trace_pairs(device: DistScroll, channel: str) -> set[tuple[str, int]]:
    traced = device.tracer.get(channel)
    if traced is None:
        return set()
    return {(kind, window_id) for _, (kind, window_id, _) in traced}


def run_fault_sweep(
    seed: int = 0,
    intensities: tuple[float, ...] = (0.0, 0.15, 0.35, 0.6, 0.85),
    n_entries: int = 8,
    trials: int = 14,
    dwell_s: float = 0.9,
    settle_s: float = 0.6,
) -> ExperimentResult:
    """Sweep fault intensity; measure selection errors and recoveries.

    Parameters
    ----------
    seed:
        Seeds the device (all hardware noise and fault rolls) and the
        target sequence.
    intensities:
        Fault intensities in [0, 1] to sweep, in order.
    n_entries:
        Flat menu length (one island per entry).
    trials:
        Pointing trials per intensity: move to a random target's aim
        distance, dwell, then score the highlight.
    dwell_s:
        Time the hand holds each aim distance — generous against the
        ~0.2 s healthy step latency, so healthy errors stay near zero.
    settle_s:
        Initial settling time before the first trial.
    """
    result = ExperimentResult(
        experiment_id="ROB-FAULT",
        title="Selection error rate vs injected hardware fault intensity",
        columns=(
            "intensity",
            "trials",
            "errors",
            "error_rate",
            "fault_windows",
            "faults_injected",
            "recoveries",
            "unpaired_faults",
        ),
    )
    tail_s = 1.0  # post-trial slack so every fault window expires + recovers
    horizon = settle_s + trials * dwell_s
    labels = [f"Item {i}" for i in range(n_entries)]

    for intensity in intensities:
        plan = FaultPlan.for_intensity(intensity, duration_s=horizon)
        device = DistScroll(
            build_menu(labels), seed=seed, fault_plan=plan
        )
        firmware = device.firmware
        rng = np.random.default_rng(seed + 17)

        device.hold_at(firmware.aim_distance_for_index(n_entries // 2))
        device.run_for(settle_s)
        errors = 0
        current = n_entries // 2
        for _ in range(trials):
            target = int(rng.integers(0, n_entries))
            if target == current:
                target = (target + 3) % n_entries
            device.hold_at(firmware.aim_distance_for_index(target))
            device.run_for(dwell_s)
            if device.highlighted_index != target:
                errors += 1
            current = device.highlighted_index
        device.run_for(tail_s)

        unpaired = unpaired_faults(device)
        result.add_row(
            intensity,
            trials,
            errors,
            errors / trials,
            len(plan.windows),
            plan.total_injections,
            plan.total_recoveries,
            len(unpaired),
        )

    rates = result.column("error_rate")
    monotone = all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    result.note(
        f"error rate {'rises monotonically' if monotone else 'is NOT monotone'} "
        f"from {rates[0]:.2f} (healthy) to {rates[-1]:.2f} at full intensity"
    )
    result.note(
        "every injected fault must be paired with a firmware recovery "
        "record (unpaired_faults column == 0): retry-with-backoff on I2C, "
        "display watchdog re-render, signal-path re-acquisition on "
        "window expiry"
    )
    return result

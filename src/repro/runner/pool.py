"""The parallel experiment driver behind ``python -m repro run-all``.

Runner v2: a backend-agnostic scheduler over the pluggable executors in
:mod:`repro.runner.executors` (inline, process pool, work queue).  The
driver derives every experiment's shard list, serves whole-experiment
and **shard-level** cache hits, orders the remaining work
longest-processing-time-first (cost-aware LPT, so stragglers start
early), submits it all up front, and then collects strictly
as-completed: each experiment merges the moment its own last shard
lands — no submission-order waits, no cross-experiment barrier — and
the first shard failure cancels all outstanding work and re-raises.

Resilience features, all proven byte-identical to the inline path:

* **Shard cache + manifest resume** — every computed shard is written
  to the content-addressed cache as it completes and recorded in a
  :class:`~repro.runner.manifest.RunManifest`; an interrupted run
  re-invoked with ``resume=True`` recomputes only the missing shards
  (the manifest's per-session ``shard_cache_hits`` counter asserts it).
* **Crash retry** (work-queue backend) — a worker that dies mid-shard
  is detected by liveness, its shard requeued exactly once per loss,
  and a replacement worker spawned.
* **Speculative re-execution** — with ``speculate=True``, once the
  submit queue drains, idle workers are given duplicates of the
  costliest still-running shards.  First result wins; when both
  attempts finish their digests must match
  (:func:`~repro.runner.sharding.shard_result_digest`), turning the
  determinism contract into a runtime assertion.

Determinism: work units are fixed by ``(experiment id, seed, shard
index)`` alone and merging sorts by shard index, so the merged rows —
and therefore the CSV bytes — are identical for any backend, any jobs
count, any completion order, any crash/retry interleaving, and
speculation on or off.

This module is the runner's one wall-clock site (REP001-exempt): all
queue-wait/execute/merge spans and the worker-utilisation figure in
``BENCH_runner.json`` are measured here, around — never inside — the
deterministic simulation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runner.cache import ResultCache
from repro.runner.executors import (
    Completion,
    Executor,
    ShardExecutionError,
    ShardTask,
    TaskKey,
    make_executor,
)
from repro.runner.manifest import RunManifest, run_key
from repro.runner.registry import REGISTRY, ExperimentSpec
from repro.runner.sharding import (
    ShardResult,
    estimate_shard_cost,
    make_shards,
    merge_shard_results,
    shard_result_digest,
)

__all__ = ["run_experiments"]

#: Poll interval for the as-completed collection loop (seconds).
_POLL_S = 0.05

#: Consecutive completely-idle polls (nothing running, nothing queued,
#: work still missing) tolerated before declaring the run stalled.
_STALL_POLLS = 100

#: Attempt numbers at/above this mark speculative twins.
_SPECULATIVE_ATTEMPT = 1000


def _default_backend(jobs: int) -> str:
    return "inline" if jobs <= 1 else "pool"


def run_experiments(
    experiment_ids: Sequence[str],
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    csv_dir: Optional[Path | str] = None,
    bench_path: Optional[Path | str] = None,
    echo: Optional[Callable[[str], None]] = None,
    observe: bool = False,
    overrides: Optional[dict[str, ExperimentSpec]] = None,
    *,
    backend: Optional[str] = None,
    resume: bool = False,
    speculate: bool = False,
    manifest_path: Optional[Path | str] = None,
    crash_plan: Optional[dict[TaskKey, int]] = None,
) -> tuple[dict[str, ExperimentResult], dict]:
    """Run experiments across a pluggable executor backend.

    Parameters
    ----------
    experiment_ids:
        Registry ids, reported in the given order (executed
        as-completed).
    seed:
        Experiment seed (same meaning as ``repro run --seed``).
    jobs:
        Worker processes; ``1`` defaults to the inline backend.
    cache:
        Result cache, or ``None`` to bypass caching entirely.  When
        set, both whole-experiment entries and per-shard entries are
        served and written — the shard entries are what make
        interrupted runs resumable.
    csv_dir:
        When set, each merged result is written to ``<csv_dir>/<ID>.csv``
        the moment that experiment merges.
    bench_path:
        When set, the timing report is written there as JSON.
    echo:
        Progress-line sink (e.g. ``print``); ``None`` for silence.
    observe:
        Run every shard under a :class:`repro.obs.Recorder` and attach
        the merged observability payload to each result's ``obs``
        attribute.  Caching is bypassed (cached results carry no
        payload), and the payload is deterministic across backends and
        job counts.
    overrides:
        Specs that replace (or extend) the registry per experiment id —
        how the CLI injects a dynamic ``--users N`` population spec.
    backend:
        ``"inline"``, ``"pool"`` or ``"workqueue"``; default inline for
        ``jobs <= 1``, pool otherwise.
    resume:
        Reuse an existing manifest at ``manifest_path`` (must carry the
        same run key) instead of superseding it.  Shard-cache reads do
        the actual resuming; this flag makes the continuation explicit
        and refuses mismatched manifests.
    speculate:
        Enable straggler speculation (parallel backends only; the
        inline backend reports no idle capacity, so it never
        speculates).
    manifest_path:
        Where to persist the :class:`RunManifest`; ``None`` disables
        manifest bookkeeping.
    crash_plan:
        ``{(experiment_id, shard_index): n_crashes}`` fault injection
        for the work-queue backend — each counted execution of that
        shard is killed mid-flight.  Test/CI machinery.

    Returns
    -------
    ``(results, bench)`` — merged results keyed by id, and the timing
    report that ``bench_path`` receives.
    """
    say = echo or (lambda _line: None)
    if observe:
        cache = None  # cached results carry no observability payload
    backend_name = backend or _default_backend(jobs)
    specs = {**REGISTRY, **(overrides or {})}
    unknown = [i for i in experiment_ids if i not in specs]
    if unknown:
        raise KeyError(f"unknown experiment ids: {', '.join(unknown)}")

    started = time.perf_counter()
    manifest: Optional[RunManifest] = None
    if manifest_path is not None:
        key = run_key([specs[i] for i in experiment_ids], seed, observe)
        manifest = RunManifest.open(
            manifest_path, key, seed, resume=resume
        )
        manifest.begin_session(backend_name, jobs, speculate)

    results: dict[str, ExperimentResult] = {}
    per_experiment: dict[str, dict] = {}
    written_csvs: set[str] = set()
    csv_root = Path(csv_dir) if csv_dir is not None else None

    # ------------------------------------------------------------------
    # phase 1: whole-experiment cache, shard lists, shard-cache hits
    # ------------------------------------------------------------------
    collected: dict[TaskKey, ShardResult] = {}
    shard_sources: dict[TaskKey, str] = {}
    queue_waits: dict[TaskKey, float] = {}
    remaining: dict[str, int] = {}
    shard_counts: dict[str, int] = {}
    tasks: list[ShardTask] = []

    for experiment_id in experiment_ids:
        spec = specs[experiment_id]
        if cache is not None:
            hit = cache.get(spec, seed)
            if hit is not None:
                result, meta = hit
                results[experiment_id] = result
                per_experiment[experiment_id] = {
                    "wall_s": 0.0,
                    "compute_wall_s": float(meta.get("wall_s", 0.0)),
                    "events": int(meta.get("events", 0)),
                    "events_per_s": float(meta.get("events_per_s", 0.0)),
                    "shards": int(meta.get("shards", 1)),
                    "cached": True,
                }
                if manifest is not None:
                    manifest.mark_experiment_cached(experiment_id)
                say(f"{experiment_id:18s} cached ({len(result.rows)} rows)")
                continue
        shards = make_shards(spec, seed)
        shard_counts[experiment_id] = len(shards)
        remaining[experiment_id] = len(shards)
        if manifest is not None:
            manifest.register_experiment(experiment_id, len(shards))
        for shard in shards:
            task_key: TaskKey = (experiment_id, shard.index)
            if cache is not None:
                cached_shard = cache.get_shard(spec, seed, shard.index)
                if cached_shard is not None:
                    collected[task_key] = cached_shard
                    shard_sources[task_key] = "shard-cache"
                    queue_waits[task_key] = 0.0
                    remaining[experiment_id] -= 1
                    if manifest is not None:
                        manifest.mark_shard_done(
                            experiment_id,
                            shard.index,
                            "shard-cache",
                            execute_s=cached_shard.wall_s,
                            queue_wait_s=0.0,
                        )
                    continue
            tasks.append(
                ShardTask(
                    key=task_key,
                    spec=spec,
                    seed=seed,
                    observe=observe,
                    cost=estimate_shard_cost(spec, shard),
                )
            )

    # ------------------------------------------------------------------
    # merge-on-last-shard (shared by the cache path and the live loop)
    # ------------------------------------------------------------------
    def merge_experiment(experiment_id: str) -> None:
        spec = specs[experiment_id]
        parts = [
            collected[(experiment_id, index)]
            for index in range(shard_counts[experiment_id])
        ]
        merge_started = time.perf_counter()
        merged = merge_shard_results(spec, parts)
        merge_s = time.perf_counter() - merge_started
        results[experiment_id] = merged
        wall_s = sum(part.wall_s for part in parts)
        events = sum(part.events for part in parts)
        computed_parts = [
            part
            for part in parts
            if shard_sources[(experiment_id, part.index)] == "computed"
        ]
        meta = {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "shards": len(parts),
        }
        per_experiment[experiment_id] = {
            "wall_s": sum(part.wall_s for part in computed_parts),
            "compute_wall_s": wall_s,
            "cached": False,
            "shards_from_cache": len(parts) - len(computed_parts),
            "merge_s": merge_s,
            "queue_wait_s": sum(
                queue_waits[(experiment_id, part.index)] for part in parts
            ),
            **{k: meta[k] for k in ("events", "events_per_s", "shards")},
        }
        if cache is not None:
            cache.put(spec, seed, merged, meta)
        if csv_root is not None:
            merged.to_csv(csv_root / f"{experiment_id}.csv")
            written_csvs.add(experiment_id)
        say(
            f"{experiment_id:18s} {wall_s:6.2f}s  "
            f"{len(parts)} shard(s)  {events} events"
        )

    for experiment_id in list(remaining):
        if remaining[experiment_id] == 0:
            merge_experiment(experiment_id)

    # ------------------------------------------------------------------
    # phase 2: LPT submit, as-completed collection, speculation
    # ------------------------------------------------------------------
    # Longest-processing-time first: expensive shards start earliest so
    # the tail of the schedule is short shards, not stragglers.  The
    # sort is deterministic (cost, then submission order) and cannot
    # affect merged bytes — only the makespan.
    order = {task.key: position for position, task in enumerate(tasks)}
    tasks.sort(key=lambda task: (-task.cost, order[task.key]))

    speculation = {"launched": 0, "wins": 0, "checked": 0}
    fanout_wall_s = 0.0
    executed_wall_s = 0.0
    if tasks:
        executor = make_executor(backend_name, jobs, crash_plan)
        tasks_by_key = {task.key: task for task in tasks}
        submit_times: dict[TaskKey, float] = {}
        digests: dict[TaskKey, str] = {}
        speculated: set[TaskKey] = set()
        fanout_started = time.perf_counter()
        try:
            for task in tasks:
                executor.submit(task)
                submit_times[task.key] = time.perf_counter()

            idle_polls = 0
            while any(count > 0 for count in remaining.values()):
                completions = executor.poll(_POLL_S)
                now = time.perf_counter()
                if completions:
                    idle_polls = 0
                for completion in completions:
                    _handle_completion(
                        completion,
                        now=now,
                        specs=specs,
                        seed=seed,
                        cache=cache,
                        manifest=manifest,
                        executor=executor,
                        collected=collected,
                        shard_sources=shard_sources,
                        queue_waits=queue_waits,
                        submit_times=submit_times,
                        digests=digests,
                        speculated=speculated,
                        speculation=speculation,
                        remaining=remaining,
                        merge_experiment=merge_experiment,
                        say=say,
                    )
                if speculate and executor.queued() == 0:
                    _launch_speculation(
                        executor,
                        tasks_by_key,
                        collected,
                        speculated,
                        speculation,
                        submit_times,
                    )
                if not completions:
                    busy = executor.running() or executor.queued()
                    idle_polls = 0 if busy else idle_polls + 1
                    if idle_polls >= _STALL_POLLS:
                        missing = [
                            key
                            for key in tasks_by_key
                            if key not in collected
                        ]
                        raise RuntimeError(
                            "runner stalled: no workers busy and shards"
                            f" missing: {missing[:8]}"
                        )
        finally:
            executor.close()
        fanout_wall_s = time.perf_counter() - fanout_started
        executed_wall_s = sum(
            result.wall_s
            for task_key, result in collected.items()
            if shard_sources[task_key] == "computed"
        )

    if manifest is not None:
        manifest.finish_session()

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    total_wall_s = time.perf_counter() - started
    computed_wall_s = sum(
        entry["wall_s"] for entry in per_experiment.values()
        if not entry["cached"]
    )
    serial_equivalent_s = sum(
        entry["compute_wall_s"] for entry in per_experiment.values()
    )
    workers = 1 if backend_name == "inline" else max(1, jobs)
    bench = {
        "generated_by": "python -m repro run-all",
        "jobs": jobs,
        "backend": backend_name,
        "seed": seed,
        "experiment_count": len(experiment_ids),
        "cached_count": sum(
            1 for entry in per_experiment.values() if entry["cached"]
        ),
        "total_wall_s": total_wall_s,
        "computed_wall_s": computed_wall_s,
        "serial_equivalent_s": serial_equivalent_s,
        # Headline including cache-served work: the serial-equivalent
        # numerator counts every experiment's original compute cost, so
        # cache hits (near-zero wall, full numerator credit) inflate it.
        # Useful as "time saved vs computing everything serially", but
        # not a scheduler figure — see the *_computed_only key.
        "speedup_vs_serial": (
            serial_equivalent_s / total_wall_s if total_wall_s > 0 else 0.0
        ),
        # Scheduler-honest speedup: only shards actually computed this
        # run enter the numerator, so a fully cached run reports ~0
        # rather than a fantasy parallel speedup.
        "speedup_vs_serial_computed_only": (
            computed_wall_s / total_wall_s if total_wall_s > 0 else 0.0
        ),
        "fanout_wall_s": fanout_wall_s,
        "worker_utilisation": (
            executed_wall_s / (workers * fanout_wall_s)
            if fanout_wall_s > 0
            else None
        ),
        "speculation": dict(speculation) if speculate else None,
        "manifest": (
            str(manifest.path) if manifest is not None else None
        ),
        "experiments": {
            experiment_id: per_experiment[experiment_id]
            for experiment_id in experiment_ids
        },
    }

    if csv_root is not None:
        for experiment_id in experiment_ids:
            if experiment_id not in written_csvs:
                results[experiment_id].to_csv(
                    csv_root / f"{experiment_id}.csv"
                )
    if bench_path is not None:
        bench_path = Path(bench_path)
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(bench, indent=2) + "\n")
    return results, bench


def _handle_completion(
    completion: Completion,
    *,
    now: float,
    specs: dict[str, ExperimentSpec],
    seed: int,
    cache: Optional[ResultCache],
    manifest: Optional[RunManifest],
    executor: Executor,
    collected: dict[TaskKey, ShardResult],
    shard_sources: dict[TaskKey, str],
    queue_waits: dict[TaskKey, float],
    submit_times: dict[TaskKey, float],
    digests: dict[TaskKey, str],
    speculated: set[TaskKey],
    speculation: dict[str, int],
    remaining: dict[str, int],
    merge_experiment: Callable[[str], None],
    say: Callable[[str], None],
) -> None:
    """Fold one finished attempt into the run state.

    Duplicate attempts (speculation) are digest-checked against the
    winner; the first error cancels all outstanding work and re-raises.
    """
    task_key = completion.key
    experiment_id, index = task_key
    if task_key in collected:
        # The losing attempt of a speculated shard.  Errors here are
        # moot (the result is already secured); successes must match
        # the winner bit-for-bit — the determinism contract, asserted.
        if completion.result is not None:
            expected = digests.get(task_key) or shard_result_digest(
                collected[task_key]
            )
            actual = shard_result_digest(completion.result)
            speculation["checked"] += 1
            if actual != expected:
                raise RuntimeError(
                    f"speculative re-execution of {experiment_id}"
                    f"[{index}] diverged from the original result"
                    " — shard execution is nondeterministic"
                )
        return
    if completion.result is None:
        executor.cancel_pending()
        if completion.error is not None:
            raise completion.error
        raise ShardExecutionError(
            task_key, completion.error_detail or "unknown worker failure"
        )
    result = completion.result
    collected[task_key] = result
    shard_sources[task_key] = "computed"
    queue_wait = max(
        0.0, now - submit_times.get(task_key, now) - result.wall_s
    )
    queue_waits[task_key] = queue_wait
    won_by_twin = completion.attempt >= _SPECULATIVE_ATTEMPT
    if won_by_twin:
        speculation["wins"] += 1
        if manifest is not None:
            manifest.record_speculation_win()
    if task_key in speculated:
        digests[task_key] = shard_result_digest(result)
    retry_counts: dict[TaskKey, int] = getattr(executor, "retries", {})
    retries = retry_counts.get(task_key, 0)
    if retries:
        say(
            f"{experiment_id:18s} shard {index} retried after"
            f" {retries} worker loss(es)"
        )
    if manifest is not None:
        manifest.mark_shard_done(
            experiment_id,
            index,
            "computed",
            execute_s=result.wall_s,
            queue_wait_s=queue_wait,
            retries=retries,
            speculated=task_key in speculated,
        )
    if cache is not None:
        cache.put_shard(specs[experiment_id], seed, index, result)
    remaining[experiment_id] -= 1
    if remaining[experiment_id] == 0:
        merge_experiment(experiment_id)


def _launch_speculation(
    executor: Executor,
    tasks_by_key: dict[TaskKey, ShardTask],
    collected: dict[TaskKey, ShardResult],
    speculated: set[TaskKey],
    speculation: dict[str, int],
    submit_times: dict[TaskKey, float],
) -> None:
    """Duplicate the costliest still-running shards onto idle workers."""
    idle = executor.idle_capacity()
    if idle <= 0:
        return
    candidates = sorted(
        (
            key
            for key in executor.running()
            if key not in speculated and key not in collected
        ),
        key=lambda key: (-tasks_by_key[key].cost, key),
    )
    for key in candidates[:idle]:
        attempt = _SPECULATIVE_ATTEMPT + speculation["launched"]
        executor.submit(tasks_by_key[key], attempt)
        speculated.add(key)
        speculation["launched"] += 1
        # Leave the original submit time in place: queue-wait telemetry
        # tracks the shard, not the attempt.
        submit_times.setdefault(key, 0.0)

"""Experiment harness: one module per DESIGN.md experiment id."""

from repro.experiments.ablation_mapping import run_ablation_mapping
from repro.experiments.arena import run_arena
from repro.experiments.breadth import build_uniform_tree, run_breadth
from repro.experiments.calibration_ablation import run_calibration_ablation
from repro.experiments.direction import run_direction
from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.firmware_ablation import run_firmware_ablation
from repro.experiments.fleet import run_fleet
from repro.experiments.foldback import run_foldback
from repro.experiments.fusion import run_fusion
from repro.experiments.gloves_bench import run_gloves_bench, run_stocktaking_by_glove
from repro.experiments.harness import ExperimentResult
from repro.experiments.island_mapping import run_island_mapping
from repro.experiments.layouts import run_layouts
from repro.experiments.long_menus import max_flat_entries, run_long_menus
from repro.experiments.pda import run_pda
from repro.experiments.power import run_power
from repro.experiments.range_sweep import run_range_sweep
from repro.experiments.sensor_env import run_sensor_env
from repro.experiments.speed_comparison import (
    run_distance_profile,
    run_speed_comparison,
)
from repro.experiments.user_study import run_user_study

__all__ = [
    "ExperimentResult",
    "run_ablation_mapping",
    "run_arena",
    "build_uniform_tree",
    "run_breadth",
    "run_calibration_ablation",
    "run_direction",
    "run_fault_sweep",
    "run_fig4",
    "run_fig5",
    "run_firmware_ablation",
    "run_fleet",
    "run_foldback",
    "run_fusion",
    "run_gloves_bench",
    "run_stocktaking_by_glove",
    "run_island_mapping",
    "run_layouts",
    "max_flat_entries",
    "run_long_menus",
    "run_pda",
    "run_power",
    "run_range_sweep",
    "run_sensor_env",
    "run_distance_profile",
    "run_speed_comparison",
    "run_user_study",
]

"""Rule base class and per-file lint context.

A rule is an :class:`ast.NodeVisitor` instantiated fresh for every file.
The base class maintains an ancestor stack during traversal (several
rules need to ask "is this call guarded by an enclosing ``if``?") and
provides :meth:`Rule.report` to emit findings with the offending source
line attached.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Sequence

from repro.devtools.findings import Finding, Severity

__all__ = ["LintContext", "Rule", "attribute_chain"]


@dataclass
class LintContext:
    """Everything a rule may inspect about the file being linted."""

    #: Posix-style path relative to the linted tree root.
    path: str
    #: Full source text.
    source: str
    #: Source split into lines (for snippets); computed lazily.
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, lineno: int) -> str:
        """The stripped source line at a 1-based line number."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule(ast.NodeVisitor):
    """One invariant checker.

    Subclasses set the class attributes and implement ``visit_*``
    methods as usual for :class:`ast.NodeVisitor`.  The engine calls
    :meth:`run` once per file; ``self.ancestors`` holds the chain of
    enclosing AST nodes (outermost first, **excluding** the node
    currently being visited) for flow-shape checks.
    """

    #: Unique id, ``REP###``.
    rule_id: ClassVar[str] = "REP000"
    #: One-line statement of the protected invariant.
    title: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: Exact relative paths the rule never applies to.
    exempt_paths: ClassVar[tuple[str, ...]] = ()
    #: Path prefixes (top-level directories) the rule never applies to.
    exempt_prefixes: ClassVar[tuple[str, ...]] = ()

    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.findings: list[Finding] = []
        self.ancestors: list[ast.AST] = []

    # ------------------------------------------------------------------
    # engine interface
    # ------------------------------------------------------------------
    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the rule runs on this relative path at all."""
        if path in cls.exempt_paths:
            return False
        return not any(
            path == prefix or path.startswith(prefix + "/")
            for prefix in cls.exempt_prefixes
        )

    def run(self, tree: ast.Module) -> list[Finding]:
        """Visit the whole module and return the findings."""
        self.visit(tree)
        return self.findings

    # ------------------------------------------------------------------
    # traversal with ancestor tracking
    # ------------------------------------------------------------------
    def generic_visit(self, node: ast.AST) -> None:
        self.ancestors.append(node)
        try:
            super().generic_visit(node)
        finally:
            self.ancestors.pop()

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The direct parent, valid while ``node`` is being visited."""
        return self.ancestors[-1] if self.ancestors else None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        """Emit one finding anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.context.path,
                line=lineno,
                col=col,
                message=message,
                severity=self.severity,
                snippet=self.context.snippet(lineno),
            )
        )


def attribute_chain(node: ast.AST) -> Sequence[str]:
    """Dotted-name parts of a ``Name``/``Attribute`` chain, outermost first.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``.
    Chains whose base is not a plain name (e.g. a call result) keep the
    attribute parts only: ``spawn(1)[0].generate_state`` ->
    ``("generate_state",)``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))

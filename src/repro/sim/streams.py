"""Canonical registry of ``SeedSequence`` spawn-key stream domains.

Every module that derives dedicated RNG streams with an explicit
``SeedSequence(entropy, spawn_key=(DOMAIN, ...))`` tuple declares its
domain tag here, once.  The first element of a spawn key is a namespace:
two modules that pick the same tag and overlapping trailing elements
silently share bit streams, which couples experiments that must be
independent (PR 7 had to hand-audit exactly this when the batch engine
grew its per-device streams next to the persona engine's per-user
streams).

The reprolint rule ``REP006`` (:mod:`repro.devtools.rules.rngstreams`)
enforces the convention project-wide: a spawn-key tuple whose first
element is a bare literal, or a constant not declared in this module, is
a lint error, and two registered domains with the same value are flagged
as a collision.

Adding a domain is two lines: declare an upper-case module-level
constant with an integer literal value, add it to
:data:`STREAM_DOMAINS`.  The linter recognises *every* upper-case
integer constant defined in this module as a declared domain (so the
registry stays consumable by pure-AST tooling), and cross-checks that
the values are pairwise distinct.
"""

from __future__ import annotations

__all__ = [
    "PERSONA_STREAM",
    "TRIAL_STREAM",
    "BATCH_STREAM",
    "SHARD_STREAM",
    "ARENA_STREAM",
    "STREAM_DOMAINS",
    "is_registered_domain",
]

#: Per-user persona derivation (`repro.interaction.personas`): one
#: child stream per simulated participant.
PERSONA_STREAM = 0x9E37

#: Per-user trial noise (`repro.interaction.personas`): endpoint noise,
#: glove slips and paging jitter for one participant's task battery.
TRIAL_STREAM = 0x79B9

#: Per-device streams of the batched multi-device engine
#: (`repro.core.batch`): spec/specimen/corruption/noise/ADC/glitch
#: sub-streams, one family per fleet index.
BATCH_STREAM = 0xBA7C

#: Per-shard seed derivation of the parallel runner
#: (`repro.runner.sharding`): shard ``i`` of a run derives from
#: ``(seed, SHARD_STREAM, i)`` alone, so any worker can materialize any
#: single shard in O(1) without spawning the whole family.  There is
#: deliberately *no* separate retry/speculation domain: a speculative or
#: crash-retried re-execution of shard ``i`` must replay the original
#: shard stream bit-for-bit (first result wins, byte-equality asserted),
#: so retries reuse this domain with the same trailing key.
SHARD_STREAM = 0x5A8D

#: Per-(user, technique) trial streams of the technique arena
#: (`repro.experiments.arena`): participant ``u`` running technique
#: ``t`` (index in the canonical roster) draws every trial from
#: ``(seed, ARENA_STREAM, u, t)``, so dropping techniques from a run
#: never perturbs the remaining techniques' bits and any block
#: partition of the population merges byte-identically.
ARENA_STREAM = 0xA12A

#: Every declared domain tag, value -> constant name.  ``repro lint``
#: (REP006) rejects spawn-key tuples whose first element is not one of
#: these constants, and rejects duplicate values.
STREAM_DOMAINS: dict[int, str] = {
    PERSONA_STREAM: "PERSONA_STREAM",
    TRIAL_STREAM: "TRIAL_STREAM",
    BATCH_STREAM: "BATCH_STREAM",
    SHARD_STREAM: "SHARD_STREAM",
    ARENA_STREAM: "ARENA_STREAM",
}


def is_registered_domain(value: int) -> bool:
    """Whether ``value`` is a declared spawn-key stream domain."""
    return value in STREAM_DOMAINS

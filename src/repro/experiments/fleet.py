"""FLEET — a heterogeneous device fleet stepped by the batched engine.

The population study (PR 6) made a million *analytic* users cheap; this
experiment runs a fleet of full signal-chain devices — per-device sensor
specimens, surfaces, ambient light, filter windows, island maps, fault
schedules — through :class:`repro.core.batch.DeviceBatch`, the
structure-of-arrays engine, driven by a single kernel
:class:`~repro.sim.kernel.BatchTask` per block.

Shard discipline mirrors the ``userblocks`` study: every device's spec
and RNG streams derive from ``(seed, device_index)`` alone
(:func:`repro.core.batch.derive_device_spec`), so any block partition of
the same fleet produces identical per-device rows and the ``devicebatch``
sharder keeps ``--jobs 1 == --jobs N`` byte-identical.  The summary table
additionally carries a digest over every per-device row, so a shard
layout bug cannot hide behind aggregation.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.core.batch import DeviceBatch, derive_device_spec
from repro.experiments.harness import ExperimentResult
from repro.interaction.personas import parse_spec
from repro.sim.kernel import BatchTask, Simulator

__all__ = [
    "run_device_block",
    "finalize_fleet",
    "run_fleet",
    "TICK_HZ",
]

#: Firmware main-loop rate the batch engine models (matches the scalar
#: device's 50 Hz tick).
TICK_HZ = 50.0


def run_device_block(
    seed: int,
    start: int,
    count: int,
    duration_s: float = 2.0,
    personas: str = "full",
    fault_every: int = 8,
) -> list[tuple]:
    """Simulate devices ``[start, start+count)`` for ``duration_s``.

    The fleet shard unit: a fresh kernel drives one
    :class:`~repro.core.batch.DeviceBatch` via a single
    :class:`~repro.sim.kernel.BatchTask`, so the whole block is one
    event per tick no matter how many devices it holds.  Fault schedules
    land on every ``fault_every``-th *absolute* device index, keeping
    the assignment independent of the block layout.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    spec = parse_spec(personas)
    specs = [
        derive_device_spec(
            seed,
            index,
            personas=spec,
            fault_every=fault_every,
            duration_hint_s=duration_s,
        )
        for index in range(start, start + count)
    ]
    batch = DeviceBatch(specs, seed=seed)
    sim = Simulator(seed=seed)
    task = BatchTask(sim, 1.0 / TICK_HZ, batch.step)
    sim.run_while(lambda: True, max_time=duration_s)
    task.stop()
    return batch.result_rows()


def _fleet_digest(rows: Sequence[tuple]) -> str:
    """Order-sensitive digest over every per-device row."""
    hasher = hashlib.sha256()
    for row in rows:
        hasher.update(repr(row).encode())
    return hasher.hexdigest()[:16]


def finalize_fleet(
    blocks: list[list[tuple]],
    n_devices: int,
    duration_s: float = 2.0,
    personas: str = "full",
    fault_every: int = 8,
) -> ExperimentResult:
    """Merge per-block device rows into the per-surface fleet table.

    The table aggregates by sensing surface (the axis the paper cares
    about: clothing reflectivity drives corruption); the notes carry the
    fleet-wide fault stats and a digest over all per-device rows so two
    runs agree iff every device agrees.
    """
    rows = [row for block in blocks for row in block]
    if len(rows) != n_devices:
        raise ValueError(
            f"blocks cover {len(rows)} devices, expected {n_devices}"
        )
    result = ExperimentResult(
        experiment_id="FLEET",
        title=(
            f"Batched device fleet: {n_devices} devices x {duration_s} s "
            f"({personas} personas)"
        ),
        columns=(
            "surface",
            "devices",
            "measurements",
            "corrupted",
            "foldback_latches",
            "rejections",
            "confirmations",
            "highlight_moves",
        ),
    )
    by_surface: dict[str, list[int]] = {}
    for row in rows:
        surface = row[3]
        totals = by_surface.setdefault(surface, [0] * 7)
        totals[0] += 1
        for offset in range(6):
            totals[1 + offset] += row[10 + offset]
    for surface in sorted(by_surface):
        result.add_row(surface, *by_surface[surface])
    faulted = sum(1 for row in rows if row[9] > 0)
    # reprolint: allow REP007 (row[10] is an integer tick count — integer sums are exact)
    ticks = sum(row[10] for row in rows)
    result.note(
        f"{faulted}/{n_devices} devices ran scheduled fault windows "
        f"(fault_every={fault_every}); {ticks} device-measurements total"
    )
    result.note(f"per-device row digest: {_fleet_digest(rows)}")
    result.note(
        "stepped by repro.core.batch.DeviceBatch — one kernel event per "
        "tick per block, scalar engine is the bit-equality oracle"
    )
    return result


def run_fleet(
    seed: int = 0,
    n_devices: int = 512,
    duration_s: float = 2.0,
    personas: str = "full",
    fault_every: int = 8,
    devices_per_shard: int = 128,
) -> ExperimentResult:
    """Serial driver of the fleet experiment (the ``--jobs 1`` path).

    Walks the identical block decomposition the ``devicebatch`` sharder
    uses and concatenates block rows in order, so serial and parallel
    runs are byte-identical by construction.
    """
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
    if devices_per_shard < 1:
        raise ValueError("devices_per_shard must be >= 1")
    blocks = [
        run_device_block(
            seed,
            start,
            min(devices_per_shard, n_devices - start),
            duration_s=duration_s,
            personas=personas,
            fault_every=fault_every,
        )
        for start in range(0, n_devices, devices_per_shard)
    ]
    return finalize_fleet(
        blocks,
        n_devices,
        duration_s=duration_s,
        personas=personas,
        fault_every=fault_every,
    )

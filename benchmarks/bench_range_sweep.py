"""EXT-RANGE — §7 Q2: is the 4–30 cm scrolling range appropriate?"""

from __future__ import annotations

from repro.experiments import run_range_sweep


def test_bench_range_sweep(benchmark, report):
    result = benchmark.pedantic(
        run_range_sweep,
        kwargs={"seed": 1, "n_entries": 10, "n_trials": 8, "n_users": 3},
        rounds=1,
        iterations=1,
    )
    report(result)
    excursions = result.column("mean_excursion_cm")
    assert excursions[-1] != excursions[0]

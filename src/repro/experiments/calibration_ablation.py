"""ABL-CAL — does per-unit sensor calibration matter?

The authors verified their specific sensor against the datasheet curve
("these properties depicted in the Sharp GP2D120 data sheet were
verified...", §4.2) and computed the island table from the fitted curve.
A product would have to decide whether every unit needs that factory
calibration or whether the generic datasheet curve suffices.

Protocol: a population of sensor specimens (datasheet-typical part
variation) runs the same selection workload twice — once with the island
table computed from the specimen's own curve (``factory_calibrated=True``)
and once from the generic datasheet curve.  The user model corrects
directionally off the display, as real users do, so miscalibration shows
up as extra submovements and time rather than outright failure.

Expected shape: calibration buys a modest but consistent reduction in
corrective submovements; the gap widens for dense menus (narrow islands)
and nearly vanishes for short ones (wide islands swallow the bias).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_calibration_ablation"]


def run_calibration_ablation(
    seed: int = 0,
    menu_sizes: tuple[int, ...] = (6, 10, 16),
    n_specimens: int = 4,
    n_trials: int = 6,
) -> ExperimentResult:
    """Calibrated vs datasheet-curve mapping across specimens."""
    result = ExperimentResult(
        experiment_id="ABL-CAL",
        title="Per-unit calibration vs generic datasheet mapping",
        columns=(
            "entries",
            "mapping",
            "mean_trial_s",
            "submovements",
            "success_rate",
        ),
    )
    master = np.random.default_rng(seed)

    for n_entries in menu_sizes:
        specimen_seeds = [int(master.integers(2**31)) for _ in range(n_specimens)]
        for calibrated in (True, False):
            times, subs, ok, total = [], [], 0, 0
            for specimen_seed in specimen_seeds:
                config = DeviceConfig(
                    chunk_size=0, factory_calibrated=calibrated
                )
                rng = np.random.default_rng(specimen_seed)
                device = DistScroll(
                    build_menu([f"Item {i}" for i in range(n_entries)]),
                    config=config,
                    seed=specimen_seed,
                )
                user = SimulatedUser(device=device, rng=rng)
                user.practice_trials = 30
                device.run_for(0.5)
                targets = random_targets(
                    n_entries, n_trials, rng, min_separation=2
                )
                for target in targets:
                    trial = user.select_entry(target)
                    times.append(trial.duration_s)
                    subs.append(trial.submovements)
                    ok += int(trial.success)
                    total += 1
            result.add_row(
                n_entries,
                "calibrated" if calibrated else "datasheet",
                float(np.mean(times)),
                float(np.mean(subs)),
                ok / total,
            )
    result.note(
        "expected: the datasheet mapping costs extra corrective "
        "submovements, growing with menu density; users always recover "
        "via display feedback (directional correction)"
    )
    return result

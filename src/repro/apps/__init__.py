"""Application layer: the paper's three application areas (§5.2)."""

from repro.apps.arctic import ArcticSession, SUIT_MENU_SPEC, build_suit_menu
from repro.apps.game import AltitudeGame, GameConfig, GameState, ReactivePilot
from repro.apps.phonemenu import PHONE_MENU_SPEC, PhoneApp, build_phone_menu
from repro.apps.stocktaking import (
    ITEM_CATEGORIES,
    ItemRecord,
    StocktakingSession,
    build_inventory_menu,
)

__all__ = [
    "ArcticSession",
    "SUIT_MENU_SPEC",
    "build_suit_menu",
    "AltitudeGame",
    "GameConfig",
    "GameState",
    "ReactivePilot",
    "PHONE_MENU_SPEC",
    "PhoneApp",
    "build_phone_menu",
    "ITEM_CATEGORIES",
    "ItemRecord",
    "StocktakingSession",
    "build_inventory_menu",
]

"""Streaming signal filters used by the simulated firmware.

The PIC firmware in the paper smooths the raw ADC readings before mapping
them to menu entries (a noisy reading flickering between two islands would
make the selection jump).  These classes are small stateful filters suitable
for sample-at-a-time use inside the firmware loop.

Each filter also exposes an ``update_batch`` fast path for offline
consumers (calibration sweeps, trace post-processing, benchmarks) that
hold a whole signal in memory.  The batch variants run the *identical*
floating-point recurrence with per-call overhead hoisted out of the loop,
so their outputs are bit-equal to feeding :meth:`update` sample by sample
— the filters are recurrences, and exact equality rules out any reordered
summation — while running several times faster in CPython.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ExponentialMovingAverage",
    "MedianFilter",
    "MovingAverage",
    "HysteresisQuantizer",
    "RateLimiter",
]


class ExponentialMovingAverage:
    """First-order IIR low-pass filter: ``y += alpha * (x - y)``.

    ``alpha`` in (0, 1]; alpha=1 passes the signal through unchanged.
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current filter output (``None`` before the first sample)."""
        return self._value

    def update(self, sample: float) -> float:
        """Feed one sample, return the filtered value."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (float(sample) - self._value)
        return self._value

    def update_batch(self, samples: Sequence[float]) -> np.ndarray:
        """Feed many samples; bit-equal to repeated :meth:`update` calls."""
        out = np.empty(len(samples), dtype=float)
        alpha = self.alpha
        value = self._value
        for i, sample in enumerate(samples):
            if value is None:
                value = float(sample)
            else:
                value += alpha * (float(sample) - value)
            out[i] = value
        self._value = value
        return out

    def reset(self) -> None:
        """Forget all history."""
        self._value = None


class MovingAverage:
    """Simple boxcar average over the last ``window`` samples."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = int(window)
        self._buffer: deque[float] = deque(maxlen=self._window)
        self._sum = 0.0

    def update(self, sample: float) -> float:
        """Feed one sample, return the mean of the current window."""
        sample = float(sample)
        if len(self._buffer) == self._window:
            self._sum -= self._buffer[0]
        self._buffer.append(sample)
        self._sum += sample
        return self._sum / len(self._buffer)

    def update_batch(self, samples: Sequence[float]) -> np.ndarray:
        """Feed many samples; bit-equal to repeated :meth:`update` calls."""
        out = np.empty(len(samples), dtype=float)
        buffer = self._buffer
        window = self._window
        running = self._sum
        for i, sample in enumerate(samples):
            sample = float(sample)
            if len(buffer) == window:
                running -= buffer[0]
            buffer.append(sample)
            running += sample
            out[i] = running / len(buffer)
        self._sum = running
        return out

    @property
    def full(self) -> bool:
        """Whether the window has filled up."""
        return len(self._buffer) == self._window

    def reset(self) -> None:
        """Forget all history."""
        self._buffer.clear()
        self._sum = 0.0


class MedianFilter:
    """Median over the last ``window`` samples — robust to IR glints.

    The GP2D120 occasionally produces spike readings on specular surfaces
    (Section 4.2 of the paper); a short median kills isolated spikes without
    adding much lag.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._buffer: deque[float] = deque(maxlen=int(window))
        # Sorted mirror of the buffer, maintained incrementally: one
        # bisect-remove plus one insort per sample instead of re-sorting
        # the whole window on the firmware hot path.
        self._sorted: list[float] = []

    def update(self, sample: float) -> float:
        """Feed one sample, return the windowed median."""
        sample = float(sample)
        if len(self._buffer) == self._buffer.maxlen:
            oldest = self._buffer[0]
            del self._sorted[bisect_left(self._sorted, oldest)]
        self._buffer.append(sample)
        insort(self._sorted, sample)
        ordered = self._sorted
        n = len(ordered)
        middle = n // 2
        if n % 2 == 1:
            return ordered[middle]
        return 0.5 * (ordered[middle - 1] + ordered[middle])

    def update_batch(self, samples: Sequence[float]) -> np.ndarray:
        """Feed many samples; bit-equal to repeated :meth:`update` calls."""
        out = np.empty(len(samples), dtype=float)
        buffer = self._buffer
        ordered = self._sorted
        window = buffer.maxlen
        for i, sample in enumerate(samples):
            sample = float(sample)
            if len(buffer) == window:
                del ordered[bisect_left(ordered, buffer[0])]
            buffer.append(sample)
            insort(ordered, sample)
            n = len(ordered)
            middle = n // 2
            if n % 2 == 1:
                out[i] = ordered[middle]
            else:
                out[i] = 0.5 * (ordered[middle - 1] + ordered[middle])
        return out

    def reset(self) -> None:
        """Forget all history."""
        self._buffer.clear()
        self._sorted.clear()


class HysteresisQuantizer:
    """Quantize a continuous signal to integer levels with hysteresis.

    The current level only changes when the input moves more than
    ``margin`` past a level boundary.  This is the generic mechanism behind
    the paper's "islands": without hysteresis a reading sitting on a
    boundary would flicker between adjacent entries.
    """

    def __init__(self, step: float, margin: float) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if not 0 <= margin < step / 2:
            raise ValueError(
                f"margin must be in [0, step/2), got {margin} for step {step}"
            )
        self.step = float(step)
        self.margin = float(margin)
        self._level: Optional[int] = None

    @property
    def level(self) -> Optional[int]:
        """Current quantized level (``None`` before the first sample)."""
        return self._level

    def update(self, value: float) -> int:
        """Feed one sample, return the (possibly unchanged) level."""
        if self._level is None:
            self._level = int(round(value / self.step))
            return self._level
        center = self._level * self.step
        upper = center + self.step / 2 + self.margin
        lower = center - self.step / 2 - self.margin
        if value > upper:
            self._level = int(round((value - self.margin) / self.step))
        elif value < lower:
            self._level = int(round((value + self.margin) / self.step))
        return self._level

    def update_batch(self, values: Sequence[float]) -> np.ndarray:
        """Feed many samples; bit-equal to repeated :meth:`update` calls."""
        out = np.empty(len(values), dtype=np.int64)
        step = self.step
        margin = self.margin
        half = step / 2
        level = self._level
        for i, value in enumerate(values):
            if level is None:
                level = int(round(value / step))
            else:
                center = level * step
                if value > center + half + margin:
                    level = int(round((value - margin) / step))
                elif value < center - half - margin:
                    level = int(round((value + margin) / step))
            out[i] = level
        self._level = level
        return out

    def reset(self) -> None:
        """Forget all history."""
        self._level = None


class RateLimiter:
    """Limit how fast an output may track its input (slew-rate limit).

    Used by the firmware's fast-scroll mode to keep the selection from
    skipping entries faster than a human can perceive.
    """

    def __init__(self, max_rate: float) -> None:
        if max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")
        self.max_rate = float(max_rate)
        self._value: Optional[float] = None
        self._time: Optional[float] = None

    def update(self, time: float, target: float) -> float:
        """Advance to ``time`` and move toward ``target`` at most at max_rate."""
        if self._value is None or self._time is None:
            self._value = float(target)
            self._time = float(time)
            return self._value
        dt = max(float(time) - self._time, 0.0)
        self._time = float(time)
        allowed = self.max_rate * dt
        delta = float(target) - self._value
        if abs(delta) <= allowed:
            self._value = float(target)
        else:
            self._value += allowed if delta > 0 else -allowed
        return self._value

    def update_batch(
        self, times: Sequence[float], targets: Sequence[float]
    ) -> np.ndarray:
        """Feed many (time, target) pairs; bit-equal to scalar updates."""
        if len(times) != len(targets):
            raise ValueError(
                f"times and targets must pair up, got {len(times)} times "
                f"and {len(targets)} targets"
            )
        out = np.empty(len(times), dtype=float)
        max_rate = self.max_rate
        value = self._value
        last_time = self._time
        for i in range(len(times)):
            time = float(times[i])
            target = float(targets[i])
            if value is None or last_time is None:
                value = target
                last_time = time
            else:
                dt = max(time - last_time, 0.0)
                last_time = time
                allowed = max_rate * dt
                delta = target - value
                if abs(delta) <= allowed:
                    value = target
                else:
                    value += allowed if delta > 0 else -allowed
            out[i] = value
        self._value = value
        self._time = last_time
        return out

    def reset(self) -> None:
        """Forget all history."""
        self._value = None
        self._time = None

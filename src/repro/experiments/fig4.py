"""FIG4 — sensor voltage vs. distance with the fitted idealized curve.

Regenerates Figure 4: "Visualization of the sensor values (measured
analog voltage at Smart-Its input port).  The measured values (asterisks)
and an idealized curve fitted through these is displayed.  This value
distribution comes close to the distribution in the data sheet of the
GP2D120 sensor."

Rows: one per swept distance — measured mean voltage (through the real
ADC quantization), the fitted ``a/(d+b)+c`` prediction, and the residual.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.sensors.calibration import CalibrationResult, calibrate
from repro.sensors.gp2d120 import GP2D120

__all__ = ["run_fig4"]


def run_fig4(
    seed: int = 0, readings_per_point: int = 16
) -> tuple[ExperimentResult, CalibrationResult]:
    """Run the Figure 4 sweep on a fresh sensor specimen.

    Returns the printable result and the raw calibration (for FIG5 and
    for tests that need the fit object).
    """
    rng = np.random.default_rng(seed)
    sensor = GP2D120.specimen(rng)
    calibration = calibrate(sensor, readings_per_point=readings_per_point)

    result = ExperimentResult(
        experiment_id="FIG4",
        title="GP2D120 measured voltage vs distance, with idealized fit",
        columns=("distance_cm", "measured_V", "fitted_V", "residual_V"),
    )
    fit = calibration.hyperbola
    for sample in calibration.samples:
        predicted = float(fit.voltage(sample.distance_cm))
        result.add_row(
            sample.distance_cm,
            sample.mean_voltage,
            predicted,
            sample.mean_voltage - predicted,
        )
    result.note(
        f"idealized curve: V = {fit.a:.2f}/(d + {fit.b:.2f}) + {fit.c:.3f}  "
        f"(R^2 = {fit.r2:.4f}, rms residual {fit.residual_rms * 1000:.1f} mV)"
    )
    result.note(
        "paper: 'comes close to the distribution in the data sheet of the "
        "GP2D120 sensor' — expect a monotone hyperbolic decline ~2.8 V at "
        "4 cm to ~0.4 V at 30 cm"
    )
    return result, calibration

"""EXT-SPEED — §7 Q1: DistScroll vs every Related Work technique."""

from __future__ import annotations

from repro.experiments import run_distance_profile, run_speed_comparison


def test_bench_speed_comparison(benchmark, report):
    comparison, fitts = benchmark.pedantic(
        run_speed_comparison,
        kwargs={"seed": 1, "menu_lengths": (8, 20), "repetitions": 4},
        rounds=1,
        iterations=1,
    )
    report(comparison)
    report(fitts)
    assert len(comparison.rows) == 12  # 6 techniques x 2 lengths


def test_bench_distance_profile(benchmark, report):
    """The decisive series: time vs scroll distance per technique."""
    result = benchmark.pedantic(
        run_distance_profile,
        kwargs={"seed": 1, "repetitions": 6},
        rounds=1,
        iterations=1,
    )
    report(result)
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    # Buttons: near-linear growth — far targets cost much more than near.
    assert rows[("buttons", 23)] > 2.5 * rows[("buttons", 1)]
    # DistScroll: position control — far targets cost only modestly more.
    assert rows[("distscroll", 23)] < 2.5 * rows[("distscroll", 1)]
    # Crossover: buttons win adjacent-entry moves, lose far jumps.
    assert rows[("buttons", 1)] < rows[("distscroll", 1)]
    assert rows[("buttons", 23)] > rows[("distscroll", 23)]


def test_bench_fitts_law_closed_loop(benchmark, report):
    """Dedicated run confirming Fitts's law on the full stack."""
    _, fitts = benchmark.pedantic(
        run_speed_comparison,
        kwargs={
            "seed": 3,
            "menu_lengths": (8, 24),
            "repetitions": 4,
            "techniques": ("distscroll",),
        },
        rounds=1,
        iterations=1,
    )
    report(fitts)
    assert fitts.rows[0][2] > 0.0  # positive slope

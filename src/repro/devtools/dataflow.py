"""Lightweight intra-procedural dataflow helpers for flow-aware rules.

This is deliberately *not* a real dataflow framework: the flow rules
(REP006 data-dependent draw counts, REP008 set-iteration tracking) only
need to answer "what expression was this local name last assigned
from?" within one function body, plus a handful of syntactic predicates
("is this expression an RNG draw?", "is this expression a set?").  A
single linear pass over assignment statements is enough for the
conventions this tree actually uses, keeps the pass O(nodes), and —
critically for the incremental cache — stays a pure function of the
file's own AST.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional

__all__ = [
    "FunctionFlow",
    "assignment_map",
    "is_rng_draw",
    "is_set_expression",
    "iter_function_defs",
    "names_in",
]

#: Receiver names treated as RNG generator objects.  Matching is by
#: suffix so ``self._rng``, ``trial_rng`` and plain ``rng`` all count.
_RNG_RECEIVER_SUFFIXES = ("rng", "generator", "random")

#: Generator methods that consume bits from the stream.  Non-drawing
#: methods (``spawn``, ``bit_generator``) are deliberately absent.
_DRAW_METHODS = frozenset(
    {
        "random",
        "uniform",
        "normal",
        "standard_normal",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "lognormal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "triangular",
        "bytes",
    }
)


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def assignment_map(
    function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> dict[str, ast.expr]:
    """Last-assignment map of simple local names in one scope.

    Walks the scope's statements in source order (including nested
    blocks, excluding nested function/class bodies) and records, for
    each ``name = <expr>`` with a single :class:`ast.Name` target, the
    final right-hand side.  Loops and branches are not joined — for the
    "did this come from a set constructor / an RNG draw" questions the
    rules ask, the last textual binding is the right approximation.
    """
    bindings: dict[str, ast.expr] = {}

    def walk_block(statements: list[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                if statement.value is not None:
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            bindings[target.id] = statement.value
            elif isinstance(statement, ast.AnnAssign):
                if statement.value is not None and isinstance(
                    statement.target, ast.Name
                ):
                    bindings[statement.target.id] = statement.value
            elif isinstance(statement, ast.AugAssign):
                if isinstance(statement.target, ast.Name):
                    # An augmented assignment keeps the original source
                    # kind (``s |= other`` is still a set) — keep the
                    # prior binding if any, else record the RHS.
                    bindings.setdefault(statement.target.id, statement.value)
            elif isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue  # separate scope
            # Recurse into compound statements' blocks.
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(statement, field, None)
                if isinstance(nested, list) and not isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    walk_block(nested)
            handlers = getattr(statement, "handlers", None)
            if isinstance(handlers, list):
                for handler in handlers:
                    walk_block(handler.body)
            cases = getattr(statement, "cases", None)
            if isinstance(cases, list):
                for case in cases:
                    walk_block(case.body)

    walk_block(list(function.body))
    return bindings


class FunctionFlow:
    """Assignment-chain view over one function body."""

    def __init__(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module
    ) -> None:
        self.bindings = assignment_map(function)

    def resolve(self, name: str, max_hops: int = 4) -> Optional[ast.expr]:
        """Follow ``a = b`` chains to the defining expression, if local."""
        seen: set[str] = set()
        current: Optional[ast.expr] = self.bindings.get(name)
        hops = 0
        while (
            isinstance(current, ast.Name)
            and current.id not in seen
            and hops < max_hops
        ):
            seen.add(current.id)
            current = self.bindings.get(current.id)
            hops += 1
        return current


def names_in(node: ast.AST) -> frozenset[str]:
    """All plain identifiers read anywhere inside ``node``."""
    return frozenset(
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    )


def _receiver_is_rng(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        base = node.id.lower()
    elif isinstance(node, ast.Attribute):
        base = node.attr.lower()
    else:
        return False
    return any(base.endswith(suffix) for suffix in _RNG_RECEIVER_SUFFIXES)


def is_rng_draw(node: ast.AST) -> bool:
    """Whether the expression consumes bits from an RNG stream.

    Matches ``<rng-ish>.<draw-method>(...)`` calls — ``rng.random()``,
    ``self._rng.normal(...)``, ``trial_rng.integers(...)`` — possibly
    wrapped in a call (``float(rng.random())``) or a binary expression.
    """
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in _DRAW_METHODS
            and _receiver_is_rng(child.func.value)
        ):
            return True
    return False


_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def is_set_expression(
    node: Optional[ast.expr],
    flow: Optional[FunctionFlow] = None,
    module_symbols: Optional[Mapping[str, ast.expr]] = None,
    _depth: int = 0,
) -> bool:
    """Whether the expression is (syntactically) an unordered set.

    Recognises set literals, set comprehensions, ``set()`` /
    ``frozenset()`` calls, set-algebra ``BinOp``\\ s whose either side is
    a set, set-returning methods (``a.union(b)`` where ``a`` is a set),
    and names whose local (or module-level) assignment chain resolves to
    one of the above.  Dicts are deliberately out of scope: CPython dict
    iteration is insertion-ordered, which the tree's determinism
    contract relies on.
    """
    if node is None or _depth > 6:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SET_CONSTRUCTORS
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return is_set_expression(
                node.func.value, flow, module_symbols, _depth + 1
            )
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return is_set_expression(
            node.left, flow, module_symbols, _depth + 1
        ) or is_set_expression(node.right, flow, module_symbols, _depth + 1)
    if isinstance(node, ast.IfExp):
        return is_set_expression(
            node.body, flow, module_symbols, _depth + 1
        ) or is_set_expression(node.orelse, flow, module_symbols, _depth + 1)
    if isinstance(node, ast.Name):
        resolved: Optional[ast.expr] = None
        if flow is not None:
            resolved = flow.resolve(node.id)
        if resolved is None and module_symbols is not None:
            resolved = module_symbols.get(node.id)
        if resolved is not None and not (
            isinstance(resolved, ast.Name) and resolved.id == node.id
        ):
            return is_set_expression(
                resolved, flow, module_symbols, _depth + 1
            )
    return False

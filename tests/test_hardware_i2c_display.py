"""Tests for the I2C bus and the BT96040 display protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.display import BT96040, TEXT_COLUMNS, TEXT_LINES
from repro.hardware.i2c import I2CBus, I2CError


class _EchoDevice:
    def __init__(self):
        self.written = []

    def i2c_write(self, payload: bytes) -> None:
        self.written.append(payload)

    def i2c_read(self, length: int) -> bytes:
        return bytes(range(length))


class TestI2CBus:
    def test_write_reaches_device(self):
        bus = I2CBus()
        device = _EchoDevice()
        bus.attach(0x20, device)
        result = bus.write(0x20, b"hello")
        assert result.ok
        assert device.written == [b"hello"]

    def test_read_returns_data(self):
        bus = I2CBus()
        bus.attach(0x20, _EchoDevice())
        result = bus.read(0x20, 4)
        assert result.data == bytes([0, 1, 2, 3])

    def test_missing_device_nak(self):
        bus = I2CBus()
        with pytest.raises(I2CError):
            bus.write(0x55, b"x")

    def test_duplicate_address_rejected(self):
        bus = I2CBus()
        bus.attach(0x20, _EchoDevice())
        with pytest.raises(ValueError):
            bus.attach(0x20, _EchoDevice())

    def test_invalid_address_rejected(self):
        bus = I2CBus()
        with pytest.raises(ValueError):
            bus.attach(0x80, _EchoDevice())

    def test_transfer_duration_scales_with_size(self):
        bus = I2CBus(clock_hz=100_000)
        bus.attach(0x20, _EchoDevice())
        short = bus.write(0x20, b"a").duration_s
        long = bus.write(0x20, b"a" * 50).duration_s
        assert long > short * 10

    def test_errors_retried_and_counted(self):
        bus = I2CBus(error_rate=0.5, rng=np.random.default_rng(3), max_retries=50)
        bus.attach(0x20, _EchoDevice())
        result = bus.write(0x20, b"abc")
        assert result.ok
        # With 50% error rate some retries almost surely happened.
        results = [bus.write(0x20, b"abc") for _ in range(20)]
        assert any(r.retries > 0 for r in results)

    def test_exhausted_retries_raise(self):
        bus = I2CBus(error_rate=0.999, rng=np.random.default_rng(0), max_retries=2)
        bus.attach(0x20, _EchoDevice())
        with pytest.raises(I2CError):
            for _ in range(50):
                bus.write(0x20, b"x")

    def test_statistics(self):
        bus = I2CBus()
        bus.attach(0x20, _EchoDevice())
        bus.write(0x20, b"abc")
        bus.read(0x20, 2)
        assert bus.transactions == 2
        assert bus.bytes_transferred == (1 + 3) + (1 + 2)


class TestDisplay:
    def test_set_line_truncates_to_width(self):
        display = BT96040("top")
        display.set_line(0, "x" * 50)
        assert display.lines[0] == "x" * TEXT_COLUMNS

    def test_line_index_bounds(self):
        display = BT96040("top")
        with pytest.raises(IndexError):
            display.set_line(TEXT_LINES, "oops")

    def test_clear(self):
        display = BT96040("top")
        display.set_line(2, "hello")
        display.framebuffer[5, 5] = True
        display.clear()
        assert display.lines == [""] * TEXT_LINES
        assert not display.framebuffer.any()

    def test_i2c_line_protocol(self):
        display = BT96040("top")
        display.i2c_write(BT96040.encode_line(1, "Menu"))
        assert display.lines[1] == "Menu"

    def test_i2c_clear_protocol(self):
        display = BT96040("top")
        display.set_line(0, "x")
        display.i2c_write(BT96040.encode_clear())
        assert display.lines[0] == ""

    def test_i2c_contrast_protocol(self):
        display = BT96040("top")
        display.i2c_write(BT96040.encode_contrast(0.8))
        assert display.contrast == pytest.approx(0.8, abs=0.01)

    def test_unknown_command_rejected(self):
        display = BT96040("top")
        with pytest.raises(ValueError):
            display.i2c_write(bytes([0x7F]))

    def test_readability_window(self):
        display = BT96040("top")
        display.set_line(0, "hello")
        display.set_contrast(0.05)
        assert display.visible_text() == [""] * TEXT_LINES
        display.set_contrast(0.5)
        assert display.visible_text()[0] == "hello"
        display.set_contrast(1.0)
        assert display.visible_text() == [""] * TEXT_LINES

    def test_pixel_blit_bounds(self):
        display = BT96040("top")
        with pytest.raises(IndexError):
            display.set_pixels(38, 90, np.ones((5, 10), dtype=bool))

    def test_pixel_blit_roundtrip_via_i2c(self):
        display = BT96040("top")
        bits = np.array([[1, 0], [0, 1]], dtype=bool)
        packed = np.packbits(bits.flatten().astype(np.uint8))
        payload = bytes([0x03, 4, 4, 2, 2]) + packed.tobytes()
        display.i2c_write(payload)
        assert display.framebuffer[4, 4]
        assert display.framebuffer[5, 5]
        assert not display.framebuffer[4, 5]

    def test_status_read(self):
        display = BT96040("top")
        display.set_contrast(1.0)
        status = display.i2c_read(4)
        assert status[1] == 255

#!/usr/bin/env python
"""Quickstart: build a DistScroll, scroll a menu by distance, select.

This is the 60-second tour of the public API:

1. build a menu tree,
2. create a simulated device,
3. move it towards/away from the body and watch the highlight follow,
4. press the thumb button to select.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DistScroll, build_menu


def main() -> None:
    menu = build_menu(
        {
            "Messages": ["Inbox", "Outbox", "Drafts"],
            "Contacts": ["Search", "Add contact"],
            "Settings": ["Sound", "Display"],
            "Camera": [],
            "Games": [],
        }
    )
    device = DistScroll(menu, seed=42)

    print("DistScroll quickstart")
    print("=====================")
    print("Moving the device between the body and arm's length scrolls the")
    print("menu; the top-right button (thumb) selects.\n")

    for distance in (26.0, 20.0, 14.0, 8.0):
        device.hold_at(distance)
        device.run_for(0.5)
        print(f"  held at {distance:4.1f} cm -> highlight: "
              f"{device.highlighted_label!r}")

    print("\nTop display (what the user sees):")
    for line in device.visible_menu():
        print(f"  |{line:<17}|")

    print("\nMoving back out to 26 cm (Messages) and pressing select...")
    device.hold_at(26.0)
    device.run_for(0.5)
    device.click("select")
    print(f"  now inside: {device.firmware.cursor.breadcrumb}")
    print("  submenu shown:")
    for line in device.visible_menu():
        print(f"  |{line:<17}|")

    print("\nInteraction events emitted so far:")
    for time, event in device.events()[-5:]:
        print(f"  t={time:6.2f}s  {event.kind:<18} {event}")


if __name__ == "__main__":
    main()

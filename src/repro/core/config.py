"""Device configuration: ranges, polarities, timing, policies.

Collects every tunable the paper discusses — the 4–30 cm scroll range
question, the scroll-direction question ("is it more intuitive to move the
DistScroll towards oneself to scroll down or to scroll up"), long-menu
chunking, and the fast-scroll exploit of the fold-back region — into one
validated dataclass the experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.islands import Placement

__all__ = ["ScrollDirection", "DeviceConfig"]


class ScrollDirection(Enum):
    """Mapping polarity between hand motion and list motion (§7)."""

    #: Moving the device towards the body scrolls *down* the list.
    TOWARDS_SCROLLS_DOWN = "towards-down"
    #: Moving the device towards the body scrolls *up* the list.
    TOWARDS_SCROLLS_UP = "towards-up"


@dataclass(frozen=True)
class DeviceConfig:
    """Complete configuration of a DistScroll device.

    Attributes
    ----------
    range_cm:
        Usable (near, far) scroll range; the paper predicts "about 4 to
        30 cm" and asks whether that is appropriate (§7 Q2) — defaults
        keep a noise margin inside it.
    direction:
        Scroll polarity (§7 Q5).
    island_fill:
        Fraction of each entry's distance slice covered by its island.
    placement:
        Island placement strategy (the paper's equal-distance by default;
        alternatives exist for ablations).
    firmware_hz:
        Main firmware loop rate.  The GP2D120 only refreshes every ~38 ms,
        so 50 Hz polling loses nothing while keeping button latency low.
    smoothing_window:
        Median filter window on raw ADC codes (spike suppression).
    confirm_samples:
        A new island must be seen this many consecutive ticks before the
        highlight moves — kills boundary flicker without adding gaps.
    chunk_size:
        Maximum entries mapped onto the range at once; longer levels are
        presented in chunks/pages (§7 Q4).  ``0`` disables chunking.
    long_menu_mode:
        How long levels are presented: ``"chunked"`` pages with the aux
        button; ``"sdaz"`` uses speed-dependent automatic zooming (the
        §7 Q4 suggestion) with dwell-to-zoom and edge-hold panning.
    fast_scroll_enabled:
        Whether the firmware exposes the fold-back (<4 cm) region as a
        fast-scroll gesture for advanced users (§4.2).
    dual_sensor:
        Use the second (recessed) distance sensor to disambiguate the
        fold-back region instead of the heuristic latch — the natural
        use of the board's spare sensor slot (§4).
    factory_calibrated:
        Whether the island table is computed from this specimen's own
        measured curve (per-unit calibration, as the authors did by
        verifying their sensor against the datasheet) or from the
        generic datasheet curve.  ``False`` quantifies how much
        unit-to-unit sensor variation costs (ABL-CAL).
    fast_scroll_rate_hz:
        Entries per second skipped while fast-scrolling.
    display_refresh_hz:
        How often the displays are redrawn when state changed.
    debug_display:
        Whether the bottom display shows debug/state information (as in
        the initial study) instead of application content.
    """

    range_cm: tuple[float, float] = (5.0, 28.0)
    direction: ScrollDirection = ScrollDirection.TOWARDS_SCROLLS_DOWN
    island_fill: float = 0.62
    placement: Placement = Placement.EQUAL_DISTANCE
    firmware_hz: float = 50.0
    smoothing_window: int = 3
    confirm_samples: int = 2
    chunk_size: int = 10
    long_menu_mode: str = "chunked"
    fast_scroll_enabled: bool = True
    fast_scroll_rate_hz: float = 12.0
    dual_sensor: bool = False
    factory_calibrated: bool = True
    display_refresh_hz: float = 20.0
    debug_display: bool = True

    def __post_init__(self) -> None:
        near, far = self.range_cm
        if not 0 < near < far:
            raise ValueError(f"invalid range_cm {self.range_cm}")
        if far > 30.0 + 1e-9:
            raise ValueError(
                f"far bound {far} cm exceeds the sensor's 30 cm reach"
            )
        if not 0.0 < self.island_fill <= 1.0:
            raise ValueError(f"island_fill must be in (0,1]: {self.island_fill}")
        if self.firmware_hz <= 0 or self.display_refresh_hz <= 0:
            raise ValueError("loop rates must be positive")
        if self.smoothing_window < 1:
            raise ValueError("smoothing_window must be >= 1")
        if self.confirm_samples < 1:
            raise ValueError("confirm_samples must be >= 1")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be >= 0")
        if self.long_menu_mode not in ("chunked", "sdaz"):
            raise ValueError(
                f"long_menu_mode must be 'chunked' or 'sdaz', "
                f"got {self.long_menu_mode!r}"
            )
        if self.fast_scroll_rate_hz <= 0:
            raise ValueError("fast_scroll_rate_hz must be positive")

    @property
    def span_cm(self) -> float:
        """Length of the usable scroll range."""
        return self.range_cm[1] - self.range_cm[0]

    @property
    def firmware_period_s(self) -> float:
        """Seconds per firmware tick."""
        return 1.0 / self.firmware_hz

    def with_(self, **changes) -> "DeviceConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

"""Property tests for metric snapshot merging (repro.obs.metrics).

The parallel runner folds shard snapshots pairwise in shard order; the
contract that makes ``--jobs 1 == --jobs N`` byte-identical is that
:func:`merge_snapshots` is associative and commutative with ``{}`` as
identity.  Histogram sums are exact rationals precisely so these
properties hold *exactly*, not within floating-point tolerance — so the
assertions below are strict equality on serialized snapshots.
"""

from __future__ import annotations

import json
from functools import reduce

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricRegistry, merge_snapshots

#: A small shared name pool so generated shards collide on metric names
#: (colliding names are the interesting merge case).
_NAMES = ["alpha", "beta", "gamma"]

#: All generated histograms share one spec — mixed specs are a
#: ValueError by design, covered in test_obs.py.
_HIST_SPEC = {"low": 1e-3, "high": 1e3, "bins_per_decade": 2}

_finite_values = st.floats(
    min_value=-1e6,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def snapshots(draw) -> dict:
    """One shard's metric snapshot, built through the real instruments."""
    registry = MetricRegistry()
    for name in draw(st.sets(st.sampled_from(_NAMES))):
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        # Prefix by kind so colliding names always collide with the
        # same instrument kind (mixed kinds raise, tested elsewhere).
        full = f"{kind}.{name}"
        if kind == "counter":
            registry.counter(full).inc(draw(st.integers(1, 1000)))
        elif kind == "gauge":
            registry.gauge(full).set(
                draw(_finite_values), time=draw(_finite_values)
            )
        else:
            histogram = registry.histogram(full, **_HIST_SPEC)
            for value in draw(
                st.lists(_finite_values, min_size=1, max_size=8)
            ):
                histogram.observe(abs(value))
    return registry.snapshot()


def _canon(snapshot: dict) -> str:
    """Canonical bytes — merge equality must survive serialization."""
    return json.dumps(snapshot, sort_keys=True)


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots())
def test_merge_commutative(a, b):
    assert _canon(merge_snapshots(a, b)) == _canon(merge_snapshots(b, a))


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots(), c=snapshots())
def test_merge_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert _canon(left) == _canon(right)


@settings(max_examples=30, deadline=None)
@given(a=snapshots())
def test_empty_is_identity(a):
    assert _canon(merge_snapshots(a, {})) == _canon(a)
    assert _canon(merge_snapshots({}, a)) == _canon(a)


@settings(max_examples=30, deadline=None)
@given(parts=st.lists(snapshots(), min_size=1, max_size=5), seed=st.randoms())
def test_fold_order_irrelevant(parts, seed):
    """Any fold order over any permutation gives the same bytes —
    exactly the freedom the parallel runner's completion order has."""
    shuffled = list(parts)
    seed.shuffle(shuffled)
    forward = reduce(merge_snapshots, parts, {})
    scrambled = reduce(merge_snapshots, shuffled, {})
    assert _canon(forward) == _canon(scrambled)


@settings(max_examples=30, deadline=None)
@given(a=snapshots(), b=snapshots())
def test_counter_totals_add(a, b):
    merged = merge_snapshots(a, b)
    for name, entry in merged.items():
        if entry["type"] != "counter":
            continue
        expected = sum(
            side[name]["value"] for side in (a, b) if name in side
        )
        assert entry["value"] == expected

"""Host-PC event logger — the receiving end of the Smart-Its RF link.

The research prototype was built as a "self contained interaction device
that can be wirelessly linked to a PC" (§3.2); the PC side collects the
event stream for analysis.  :class:`EventLogger` attaches to the host RF
endpoint, decodes the firmware's serialized events, timestamps gaps and
losses, and exposes query helpers the study software builds on.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Optional

from repro.core.events import InteractionEvent, decode_event
from repro.hardware.rf import Packet, RFEndpoint

__all__ = ["LoggedEvent", "EventLogger"]


class LoggedEvent:
    """One decoded event with its host-side reception time."""

    __slots__ = ("event", "received_at", "sent_at")

    def __init__(self, event: InteractionEvent, received_at: float, sent_at: float):
        self.event = event
        self.received_at = received_at
        self.sent_at = sent_at

    @property
    def link_latency(self) -> float:
        """Air + processing latency experienced by this event."""
        return self.received_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LoggedEvent({self.event!r} @ {self.received_at:.3f})"


class EventLogger:
    """Decode and index the interaction-event stream on the host PC.

    Parameters
    ----------
    endpoint:
        The host-side RF endpoint (``board.rf_host``).
    clock:
        Callable returning the current simulated time (``lambda: sim.now``).
    """

    def __init__(self, endpoint: RFEndpoint, clock) -> None:
        self._clock = clock
        self.events: list[LoggedEvent] = []
        self.decode_failures = 0
        endpoint.on_receive(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        try:
            event = decode_event(packet.payload)
        except ValueError:
            self.decode_failures += 1
            return
        self.events.append(
            LoggedEvent(event, received_at=self._clock(), sent_at=packet.sent_at)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> Iterator[LoggedEvent]:
        """Events of one kind, in reception order."""
        return (le for le in self.events if le.event.kind == kind)

    def counts(self) -> Counter:
        """Histogram of event kinds."""
        return Counter(le.event.kind for le in self.events)

    def last(self, kind: Optional[str] = None) -> Optional[LoggedEvent]:
        """Most recent event (optionally of a kind), or ``None``."""
        for logged in reversed(self.events):
            if kind is None or logged.event.kind == kind:
                return logged
        return None

    def between(self, t0: float, t1: float) -> list[LoggedEvent]:
        """Events whose *device* timestamps lie in ``[t0, t1]``."""
        return [le for le in self.events if t0 <= le.event.time <= t1]

    def mean_latency(self) -> float:
        """Mean RF link latency over all received events (0 if none)."""
        if not self.events:
            return 0.0
        # reprolint: allow REP007 (host-side diagnostic mean over the arrival-ordered event list of one process — never merged across shards)
        return sum(le.link_latency for le in self.events) / len(self.events)

    def clear(self) -> None:
        """Drop all logged events (decode-failure count persists)."""
        self.events.clear()

"""Scalar/vectorized equivalence for the sensing fast path (PR 4).

The vectorized transfer function and the batched sampling path are only
allowed to exist because they are *bit-equal* to the scalar reference —
the committed FIG4/FIG5 goldens depend on it.  These properties pin that
equivalence across all three regimes of the transfer function (fold-back,
monotone range, out of range), across corrupting surfaces that exercise
the specular-corruption RNG gate, and for the zero-order-hold state the
sensor carries between calls.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.calibration import calibrate
from repro.sensors.gp2d120 import GP2D120, GP2D120Params
from repro.sensors.surfaces import CLOTHING, REFERENCE_SURFACE

# Spans every regime: contact/floor, fold-back, the monotone branch,
# and beyond max range.
_distances = st.floats(
    min_value=-1.0, max_value=40.0, allow_nan=False, allow_infinity=False
)

_CORRUPTING = CLOTHING["hi_vis_vest"]
_HEAVILY_CORRUPTING = CLOTHING["mirror_patchwork"]


def _paired_sensors(seed, surface=REFERENCE_SURFACE):
    """Two sensors with identical params and identically-seeded RNGs."""
    params = GP2D120.specimen(np.random.default_rng(seed)).params
    scalar = GP2D120(
        params=params, rng=np.random.default_rng(seed), surface=surface
    )
    batched = GP2D120(
        params=params, rng=np.random.default_rng(seed), surface=surface
    )
    return scalar, batched


class TestIdealVoltageArray:
    @given(st.lists(_distances, min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_bit_equal_to_scalar(self, distances):
        sensor = GP2D120(rng=None)
        batched = sensor.ideal_voltage_array(np.array(distances))
        scalar = [sensor.ideal_voltage(d) for d in distances]
        assert batched.tolist() == scalar  # exact, not approx

    @given(
        st.lists(_distances, min_size=1, max_size=32),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_equal_on_perturbed_specimens(self, distances, seed):
        sensor = GP2D120.specimen(np.random.default_rng(seed))
        sensor.rng = None
        batched = sensor.ideal_voltage_array(np.array(distances))
        scalar = [sensor.ideal_voltage(d) for d in distances]
        assert batched.tolist() == scalar

    def test_regime_boundaries_exactly(self):
        """The masks must split regimes exactly where the scalar ifs do."""
        sensor = GP2D120(rng=None)
        peak = sensor.params.peak_distance_cm
        edges = np.array([0.0, np.nextafter(0.0, 1.0), peak,
                          np.nextafter(peak, 0.0), 30.0,
                          np.nextafter(30.0, 31.0)])
        batched = sensor.ideal_voltage_array(edges)
        scalar = [sensor.ideal_voltage(d) for d in edges]
        assert batched.tolist() == scalar


class TestMeasureArray:
    @given(
        st.lists(_distances, min_size=1, max_size=48),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_rng_stream(self, distances, seed):
        scalar_sensor, batched_sensor = _paired_sensors(seed)
        batched = batched_sensor.measure_array(np.array(distances))
        scalar = [scalar_sensor._measure(d) for d in distances]
        assert batched.tolist() == scalar
        # Both generators must land in the same state: nothing drawn
        # out of order, nothing drawn extra.
        assert (
            scalar_sensor.rng.bit_generator.state
            == batched_sensor.rng.bit_generator.state
        )

    @given(
        st.lists(_distances, min_size=1, max_size=48),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([_CORRUPTING, _HEAVILY_CORRUPTING]),
    )
    @settings(max_examples=60, deadline=None)
    def test_corruption_gate_consumes_stream_identically(
        self, distances, seed, surface
    ):
        """Corrupting surfaces interleave uniform draws with normal draws;
        the batched path must replay that interleaving exactly."""
        scalar_sensor, batched_sensor = _paired_sensors(seed, surface)
        batched = batched_sensor.measure_array(np.array(distances))
        scalar = [scalar_sensor._measure(d) for d in distances]
        assert batched.tolist() == scalar
        assert (
            scalar_sensor.rng.bit_generator.state
            == batched_sensor.rng.bit_generator.state
        )

    def test_noise_free_sensor_returns_ideal(self):
        sensor = GP2D120(rng=None)
        d = np.array([2.0, 10.0, 35.0])
        assert (
            sensor.measure_array(d).tolist()
            == sensor.ideal_voltage_array(d).tolist()
        )


class TestOutputVoltageArray:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.2, max_value=3.0),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_order_hold_matches_scalar(self, seed, dt_scale, n):
        """Time grids denser and sparser than the measurement cycle both
        reproduce the scalar hold/refresh behaviour and final state."""
        scalar_sensor, batched_sensor = _paired_sensors(seed)
        cycle = scalar_sensor.params.cycle_time_s
        times = np.cumsum(np.full(n, cycle * dt_scale))
        distances = 5.0 + 20.0 * np.abs(np.sin(np.arange(n)))
        batched = batched_sensor.output_voltage_array(times, distances)
        scalar = [
            scalar_sensor.output_voltage(t, d)
            for t, d in zip(times, distances)
        ]
        assert batched.tolist() == scalar
        assert (
            batched_sensor._last_cycle_index
            == scalar_sensor._last_cycle_index
        )
        assert batched_sensor._held_voltage == scalar_sensor._held_voltage
        assert (
            scalar_sensor.rng.bit_generator.state
            == batched_sensor.rng.bit_generator.state
        )

    def test_resumes_held_state_across_calls(self):
        """Chunked batched calls equal one scalar pass over the whole grid."""
        scalar_sensor, batched_sensor = _paired_sensors(7)
        cycle = scalar_sensor.params.cycle_time_s
        times = np.cumsum(np.full(60, cycle * 0.4))  # many held samples
        distances = np.full(60, 12.0)
        out = np.concatenate([
            batched_sensor.output_voltage_array(times[:1], distances[:1]),
            batched_sensor.output_voltage_array(times[1:30], distances[1:30]),
            batched_sensor.output_voltage_array(times[30:], distances[30:]),
        ])
        scalar = [
            scalar_sensor.output_voltage(t, d)
            for t, d in zip(times, distances)
        ]
        assert out.tolist() == scalar

    def test_all_held_chunk_needs_no_measurement(self):
        """A chunk entirely inside one cycle draws nothing from the RNG."""
        _, sensor = _paired_sensors(3)
        cycle = sensor.params.cycle_time_s
        sensor.output_voltage_array(np.array([cycle * 1.5]), np.array([10.0]))
        state_before = sensor.rng.bit_generator.state
        out = sensor.output_voltage_array(
            np.array([cycle * 1.6, cycle * 1.7]), np.array([10.0, 10.0])
        )
        assert sensor.rng.bit_generator.state == state_before
        assert out[0] == out[1] == sensor._held_voltage

    def test_empty_input(self):
        sensor = GP2D120(rng=None)
        assert sensor.output_voltage_array(
            np.empty(0), np.empty(0)
        ).shape == (0,)

    def test_fault_hook_falls_back_to_scalar(self):
        scalar_sensor, batched_sensor = _paired_sensors(11)
        hook = lambda t, v: 1.234 if t > 0.1 else None  # noqa: E731
        scalar_sensor.fault_hook = hook
        batched_sensor.fault_hook = hook
        cycle = scalar_sensor.params.cycle_time_s
        times = np.cumsum(np.full(10, cycle * 1.1))
        distances = np.full(10, 8.0)
        batched = batched_sensor.output_voltage_array(times, distances)
        scalar = [
            scalar_sensor.output_voltage(t, d)
            for t, d in zip(times, distances)
        ]
        assert batched.tolist() == scalar
        assert 1.234 in batched


class TestBatchedNormalDrawsMatchScalarStream:
    """The kernel's jitter batching relies on numpy's guarantee that
    ``rng.normal(size=n)`` consumes the stream exactly like n scalar
    draws.  Pin it, so a numpy behaviour change fails loudly here rather
    than silently changing the goldens."""

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=257),
    )
    @settings(max_examples=40, deadline=None)
    def test_normal_size_n_equals_n_scalar_draws(self, seed, n):
        batched = np.random.default_rng(seed).normal(0.0, 1.5, size=n)
        scalar_rng = np.random.default_rng(seed)
        scalar = [scalar_rng.normal(0.0, 1.5) for _ in range(n)]
        assert batched.tolist() == scalar


class TestCalibrateVectorized:
    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_vectorized_equals_scalar(self, seed):
        params = GP2D120.specimen(np.random.default_rng(seed)).params
        results = []
        for vectorized in (False, True):
            sensor = GP2D120(params=params, rng=np.random.default_rng(seed))
            results.append(
                calibrate(
                    sensor, readings_per_point=8, vectorized=vectorized
                )
            )
        scalar, batched = results
        assert scalar.samples == batched.samples  # dataclass ==, exact
        assert scalar.hyperbola == batched.hyperbola
        assert scalar.power_law == batched.power_law

    def test_vectorized_equals_scalar_on_corrupting_surface(self):
        params = GP2D120.specimen(np.random.default_rng(5)).params
        results = []
        for vectorized in (False, True):
            sensor = GP2D120(
                params=params,
                rng=np.random.default_rng(5),
                surface=_HEAVILY_CORRUPTING,
            )
            results.append(
                calibrate(
                    sensor, readings_per_point=8, vectorized=vectorized
                )
            )
        assert results[0].samples == results[1].samples


class TestCycleTimeGuard:
    def test_non_positive_cycle_time_rejected(self):
        with pytest.raises(ValueError, match="cycle_time_s must be positive"):
            GP2D120Params(cycle_time_s=0.0)
        with pytest.raises(ValueError, match="zero-order hold"):
            GP2D120Params(cycle_time_s=-0.01)

    def test_default_params_still_valid(self):
        assert GP2D120Params().cycle_time_s > 0.0

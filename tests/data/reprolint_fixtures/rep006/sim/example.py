"""REP006 fixture: a bare-literal spawn-key domain (exactly one finding).

The spawn key's first element is an inline integer instead of a
constant declared in ``repro/sim/streams.py``.
"""

import numpy as np


def make_stream(seed: int, index: int) -> np.random.Generator:
    sequence = np.random.SeedSequence(seed, spawn_key=(0x1234, index))
    return np.random.Generator(np.random.PCG64(sequence))

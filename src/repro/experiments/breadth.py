"""EXT-BREADTH — menu breadth vs. depth under distance scrolling.

A designer building for the DistScroll must pick a hierarchy shape: wide
levels exploit the sensor's full range but shrink the islands; deep
trees keep islands fat but multiply select/back presses.  Classic
menu-design results (Miller's breadth-vs-depth studies) say breadth wins
on screens — does it still, when the *input* channel punishes breadth?

Protocol: hierarchies with ~27, ~64 leaves arranged as depth-1 (flat),
depth-2 and depth-3 trees; simulated users perform full root-to-leaf
selections; reported: total time per leaf reached and wrong activations.

Expected shape: depth is the expensive axis — every level adds a full
select cycle (~1.5 s); flat-with-chunking trades that for aux-button
paging and stays competitive even at 64 leaves.  Breadth-first design
carries over to distance scrolling.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import MenuEntry, build_menu, flatten_paths
from repro.experiments.harness import ExperimentResult
from repro.interaction.user import SimulatedUser

__all__ = ["run_breadth", "build_uniform_tree"]


def build_uniform_tree(branching: int, depth: int) -> MenuEntry:
    """A uniform tree with ``branching**depth`` leaves."""

    def spec(level: int) -> dict | list:
        if level == depth - 1:
            return [f"L{level}-{i}" for i in range(branching)]
        return {f"N{level}-{i}": spec(level + 1) for i in range(branching)}

    return build_menu(spec(0), label="root")


#: (label, branching, depth) shapes with comparable leaf counts.
DEFAULT_SHAPES: tuple[tuple[str, int, int], ...] = (
    ("27 flat (27^1)", 27, 1),
    ("27 square (5~x2)", 5, 2),  # 25 leaves, closest square
    ("27 deep (3^3)", 3, 3),
    ("64 flat (64^1)", 64, 1),
    ("64 square (8^2)", 8, 2),
    ("64 deep (4^3)", 4, 3),
)


def run_breadth(
    seed: int = 0,
    shapes: tuple[tuple[str, int, int], ...] = DEFAULT_SHAPES,
    n_tasks: int = 6,
    n_users: int = 2,
) -> ExperimentResult:
    """Time a full root-to-leaf selection across hierarchy shapes."""
    result = ExperimentResult(
        experiment_id="EXT-BREADTH",
        title="Hierarchy shape: breadth vs depth under distance scrolling",
        columns=(
            "shape",
            "leaves",
            "mean_leaf_s",
            "wrong_per_task",
            "success_rate",
        ),
    )
    master = np.random.default_rng(seed)

    for label, branching, depth in shapes:
        menu = build_uniform_tree(branching, depth)
        paths = flatten_paths(menu)
        times, wrong, ok, total = [], 0, 0, 0
        for _ in range(n_users):
            user_seed = int(master.integers(2**31))
            rng = np.random.default_rng(user_seed)
            device = DistScroll(
                menu, config=DeviceConfig(chunk_size=10), seed=user_seed
            )
            user = SimulatedUser(device=device, rng=rng)
            user.practice_trials = 30
            device.run_for(0.5)
            for _task in range(n_tasks):
                path = paths[int(rng.integers(0, len(paths)))]
                start = device.now
                task_ok = True
                task_wrong = 0
                for level_label in path:
                    labels = [
                        e.label for e in device.firmware.cursor.entries
                    ]
                    trial = user.select_entry(labels.index(level_label))
                    task_ok = task_ok and trial.success
                    task_wrong += trial.wrong_activations
                times.append(device.now - start)
                wrong += task_wrong
                ok += int(task_ok)
                total += 1
                while device.depth > 0:
                    device.click("back")
        result.add_row(
            label,
            len(paths),
            float(np.mean(times)),
            wrong / total,
            ok / total,
        )
    result.note(
        "expected: depth is expensive — every extra level adds a full "
        "select cycle; flat-with-chunking and one-split (8-10 per level) "
        "shapes trade paging clicks against tree descents and come out "
        "comparable, so designers should minimize depth first"
    )
    return result

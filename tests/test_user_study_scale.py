"""Population-scale STUDY1: oracle equivalence, memory, job-invariance.

Three promises made by the streaming refactor, each pinned here:

* the streaming fold is *numerically identical* to the legacy
  list-accumulating aggregation (the equivalence oracle);
* aggregator memory is O(1) in the user count — a 200k-user quick
  study peaks under 8 MiB and is flat between 50k and 200k;
* the sharded runner produces byte-identical CSVs for any ``--jobs``
  value and any ``users_per_shard`` block size.
"""

from __future__ import annotations

import json
import tracemalloc
from functools import reduce

import pytest

from repro.experiments.user_study import (
    StudyAggregate,
    UserOutcome,
    finalize_scaled_study,
    run_scaled_user_study,
    run_user_block,
    run_user_study,
)
from repro.runner.pool import run_experiments
from repro.runner.registry import scaled_user_study_spec


def snapshot_bytes(aggregate: StudyAggregate) -> bytes:
    return json.dumps(aggregate.snapshot(), sort_keys=True).encode()


class TestEquivalenceOracle:
    def test_streaming_equals_legacy_list_aggregation(self):
        """The O(1) fold and the O(n) legacy path agree to the bit."""
        kwargs = dict(seed=0, n_users=5, n_blocks=3, trials_per_block=4)
        streaming = run_user_study(streaming=True, **kwargs)
        legacy = run_user_study(streaming=False, **kwargs)
        assert streaming.to_json() == legacy.to_json()
        assert streaming.csv_bytes() == legacy.csv_bytes()

    def test_serial_scaled_study_equals_blockwise_merge(self):
        whole = run_scaled_user_study(
            seed=0, n_users=400, users_per_shard=400
        )
        blocked = run_scaled_user_study(
            seed=0, n_users=400, users_per_shard=64
        )
        assert whole.to_json() == blocked.to_json()


def _synthetic_outcomes(n: int):
    """A cheap deterministic stream of varied two-segment outcomes."""
    cells = [
        f"{age}/{motor}/right/normal/none"
        for age in ("young", "adult", "senior")
        for motor in ("steady", "tremor")
    ]
    for i in range(n):
        errors = [0.25 * (i % 3 == 0), 0.125 * (i % 7 == 0)]
        times = [1.0 + (i % 11) * 0.05, 2.0 + (i % 5) * 0.07]
        subs = [1.0 + (i % 4) * 0.25, 1.0 + (i % 2) * 0.5]
        outcome = UserOutcome(
            discovered=i % 13 != 0,
            time_to_discovery_s=3.0 + (i % 17) * 0.3,
            exploratory_movements=3 + i % 6,
            block_errors=errors,
            block_times=times,
            block_subs=subs,
        )
        yield outcome, cells[i % len(cells)]


def _fold_and_peak(n_users: int) -> int:
    """Peak traced bytes while folding ``n_users`` synthetic outcomes."""
    aggregate = StudyAggregate(("short-mixed", "long-menu"))
    tracemalloc.start()
    try:
        for outcome, cell in _synthetic_outcomes(n_users):
            aggregate.add_outcome(outcome, cell=cell)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert aggregate.n_users == n_users
    return peak


class TestBoundedMemory:
    def test_200k_user_quick_study_memory_is_flat(self):
        """Aggregator state is O(1): <8 MiB, flat from 50k to 200k."""
        peak_small = _fold_and_peak(50_000)
        peak_large = _fold_and_peak(200_000)
        assert peak_large < 8 * 1024 * 1024, (
            f"200k-user fold peaked at {peak_large / 2**20:.1f} MiB — "
            "the aggregator is accumulating per-user state"
        )
        assert peak_large < peak_small + 1024 * 1024, (
            f"peak grew {peak_small} -> {peak_large} bytes between 50k "
            "and 200k users; streaming memory must not scale with n"
        )


class TestJobInvariance:
    def test_jobs_1_and_4_csv_bytes_identical(self):
        spec = scaled_user_study_spec(600, users_per_shard=150)
        serial, _ = run_experiments(
            ["STUDY1"], seed=0, jobs=1, overrides={"STUDY1": spec}
        )
        parallel, _ = run_experiments(
            ["STUDY1"], seed=0, jobs=4, overrides={"STUDY1": spec}
        )
        assert (
            serial["STUDY1"].csv_bytes() == parallel["STUDY1"].csv_bytes()
        )
        assert serial["STUDY1"].notes == parallel["STUDY1"].notes

    def test_users_per_shard_does_not_change_rows(self):
        coarse = scaled_user_study_spec(500, users_per_shard=500)
        fine = scaled_user_study_spec(500, users_per_shard=77)
        a, _ = run_experiments(
            ["STUDY1"], seed=0, jobs=1, overrides={"STUDY1": coarse}
        )
        b, _ = run_experiments(
            ["STUDY1"], seed=0, jobs=2, overrides={"STUDY1": fine}
        )
        assert a["STUDY1"].rows == b["STUDY1"].rows

    def test_aggregate_partition_invariance_on_real_engine(self):
        whole = run_user_block(11, 0, 120)
        parts = [
            run_user_block(11, 0, 50),
            run_user_block(11, 50, 30),
            run_user_block(11, 80, 40),
        ]
        forward = reduce(lambda x, y: x.merge(y), parts)
        backward = reduce(lambda x, y: x.merge(y), reversed(parts))
        assert snapshot_bytes(forward) == snapshot_bytes(whole)
        assert snapshot_bytes(backward) == snapshot_bytes(whole)


class TestAggregateValidation:
    def test_segment_mismatch_rejected(self):
        a = StudyAggregate(("x", "y"))
        b = StudyAggregate(("x",))
        with pytest.raises(ValueError):
            a.merge(b)
        outcome = UserOutcome(True, 1.0, 2, [0.0], [1.0], [1.0])
        with pytest.raises(ValueError):
            a.add_outcome(outcome)

    def test_finalize_checks_user_count(self):
        aggregate = run_user_block(0, 0, 10)
        with pytest.raises(ValueError):
            finalize_scaled_study([aggregate], n_users=11)

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            StudyAggregate(())
        with pytest.raises(ValueError):
            run_scaled_user_study(n_users=0)

    def test_population_rows_carry_quantiles(self):
        result = run_scaled_user_study(
            seed=0, n_users=200, battery="smoke", users_per_shard=100
        )
        p50 = result.column("p50_trial_s")
        p90 = result.column("p90_trial_s")
        assert all(a <= b for a, b in zip(p50, p90))
        assert all(0.0 <= e <= 1.0 for e in result.column("error_rate"))

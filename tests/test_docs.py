"""Documentation is executable: doctests + generated-docs drift checks.

Two guarantees, both tier-1:

* Every ``>>>`` example in the README and under ``docs/`` actually runs
  and prints what it claims (``doctest.testfile`` over each markdown
  file that contains examples).  A doc edit that breaks an example
  fails here, not in a reader's terminal.
* ``docs/API.md`` matches what ``scripts/generate_api_docs.py`` renders
  from the committed sources (the same check CI runs as the doc-drift
  gate).  The byte-level assertion is version-pinned because
  ``ast.unparse`` output varies across interpreters; other versions
  still assert the generator runs and covers its target packages.
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose ``>>>`` examples must execute.  Discovered
#: dynamically so new docs with examples are picked up automatically.
DOC_FILES = sorted(
    path
    for path in [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    if path.is_file() and ">>>" in path.read_text(encoding="utf-8")
)


def test_some_docs_carry_examples():
    """The observability guide keeps its worked examples."""
    assert REPO / "docs" / "OBSERVABILITY.md" in DOC_FILES


@pytest.mark.parametrize(
    "doc_path", DOC_FILES, ids=[p.name for p in DOC_FILES]
)
def test_markdown_doctests(doc_path):
    results = doctest.testfile(
        str(doc_path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL,
    )
    assert results.attempted > 0, f"{doc_path.name}: no examples ran"
    assert results.failed == 0, (
        f"{doc_path.name}: {results.failed}/{results.attempted} "
        "doctest example(s) failed - run "
        f"`python -m doctest {doc_path.relative_to(REPO)} -v` locally"
    )


def _import_generator(name):
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        return __import__(name)
    finally:
        sys.path.pop(0)


class TestGeneratedDocs:
    """The committed generated docs match their generators."""

    def _generator(self):
        return _import_generator("generate_api_docs")

    def test_api_md_is_current(self):
        generator = self._generator()
        rendered = generator.render()
        committed = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
        if sys.version_info[:2] != (3, 11):
            pytest.skip(
                "API.md bytes are pinned to the CI interpreter "
                "(Python 3.11); ast.unparse renders differently here"
            )
        assert rendered == committed, (
            "docs/API.md is stale - run "
            "`python scripts/generate_api_docs.py`"
        )

    def test_api_md_covers_target_packages(self):
        committed = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
        for section in (
            "## `repro.sim.kernel`",
            "## `repro.obs.metrics`",
            "## `repro.runner.sharding`",
            "## `repro.faults`",
        ):
            assert section in committed

    def test_generator_check_mode(self, tmp_path, monkeypatch, capsys):
        """--check exits 1 against a stale file, 0 against a fresh one."""
        generator = self._generator()
        stale = tmp_path / "API.md"
        stale.write_text("out of date\n", encoding="utf-8")
        monkeypatch.setattr(generator, "OUTPUT", stale)
        monkeypatch.setattr(generator, "REPO", tmp_path)
        assert generator.main(["--check"]) == 1
        assert "stale" in capsys.readouterr().err
        assert generator.main([]) == 0  # regenerates
        assert generator.main(["--check"]) == 0


class TestTechniquesMd:
    """docs/TECHNIQUES.md matches the technique registry metadata."""

    def _generator(self):
        return _import_generator("generate_techniques_md")

    def test_techniques_md_is_current(self):
        generator = self._generator()
        rendered = generator.render()
        committed = (REPO / "docs" / "TECHNIQUES.md").read_text(
            encoding="utf-8"
        )
        assert rendered == committed, (
            "docs/TECHNIQUES.md is stale - run "
            "`python scripts/generate_techniques_md.py`"
        )

    def test_covers_every_registered_technique(self):
        from repro.baselines import ALL_TECHNIQUES

        committed = (REPO / "docs" / "TECHNIQUES.md").read_text(
            encoding="utf-8"
        )
        for key, cls in sorted(ALL_TECHNIQUES.items()):
            assert f"## `{key}` — {cls.info.title}" in committed

    def test_generator_check_mode(self, tmp_path, monkeypatch, capsys):
        generator = self._generator()
        stale = tmp_path / "TECHNIQUES.md"
        stale.write_text("out of date\n", encoding="utf-8")
        monkeypatch.setattr(generator, "OUTPUT", stale)
        monkeypatch.setattr(generator, "REPO", tmp_path)
        assert generator.main(["--check"]) == 1
        assert "stale" in capsys.readouterr().err
        assert generator.main([]) == 0
        assert generator.main(["--check"]) == 0


class TestArenaMd:
    """docs/ARENA.md matches a fresh run of the tournament."""

    def _generator(self):
        return _import_generator("generate_arena_md")

    def test_arena_md_is_current(self):
        generator = self._generator()
        rendered = generator.render()
        committed = (REPO / "docs" / "ARENA.md").read_text(encoding="utf-8")
        assert rendered == committed, (
            "docs/ARENA.md is stale - run "
            "`python scripts/generate_arena_md.py`"
        )

    def test_leaderboard_lists_every_technique(self):
        from repro.experiments.arena import ARENA_ROSTER

        committed = (REPO / "docs" / "ARENA.md").read_text(encoding="utf-8")
        for key in ARENA_ROSTER:
            assert key in committed

    def test_generator_check_mode(self, tmp_path, monkeypatch, capsys):
        generator = self._generator()
        # A 2-user tournament keeps the three renders this test needs
        # fast; the drift test above runs the committed parameters.
        monkeypatch.setattr(generator, "ARENA_USERS", 2)
        stale = tmp_path / "ARENA.md"
        stale.write_text("out of date\n", encoding="utf-8")
        monkeypatch.setattr(generator, "OUTPUT", stale)
        monkeypatch.setattr(generator, "REPO", tmp_path)
        assert generator.main(["--check"]) == 1
        assert "stale" in capsys.readouterr().err
        assert generator.main([]) == 0
        assert generator.main(["--check"]) == 0

"""Tests for the dual-sensor fusion and the firmware's dual mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.sensors.fusion import DualRangeFinder
from repro.sensors.gp2d120 import GP2D120


@pytest.fixture
def finder() -> DualRangeFinder:
    return DualRangeFinder(GP2D120(rng=None), GP2D120(rng=None), baseline_cm=3.0)


class TestDualRangeFinder:
    def test_in_range_agreement(self, finder):
        reading = finder.fuse(0.1, 15.0)
        assert reading.valid
        assert not reading.in_foldback
        assert reading.distance_cm == pytest.approx(15.0, abs=0.2)
        assert reading.disagreement_cm < 0.5

    def test_foldback_detected_and_resolved(self, finder):
        reading = finder.fuse(0.1, 2.5)
        assert reading.valid
        assert reading.in_foldback
        assert reading.distance_cm == pytest.approx(2.5, abs=0.3)

    def test_floor_below_both_peaks(self, finder):
        floor = finder.usable_foldback_floor_cm()
        assert floor == pytest.approx(1.0)
        reading = finder.fuse(0.1, 0.5)  # both sensors folded
        # Both inversions are aliases that disagree -> flagged foldback,
        # or invalid; either way it must not report a confident in-range hit.
        assert (not reading.valid) or reading.in_foldback

    def test_accuracy_with_noise(self, rng):
        finder = DualRangeFinder(
            GP2D120.specimen(rng), GP2D120.specimen(rng), baseline_cm=3.0
        )
        clock = 0.0
        for true in (2.0, 6.0, 12.0, 20.0):
            estimates = []
            for _ in range(16):
                clock += 0.045
                reading = finder.fuse(clock, true)
                if reading.valid:
                    estimates.append(reading.distance_cm)
            assert np.mean(estimates) == pytest.approx(true, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DualRangeFinder(GP2D120(rng=None), GP2D120(rng=None), baseline_cm=0.0)
        with pytest.raises(ValueError):
            DualRangeFinder(
                GP2D120(rng=None), GP2D120(rng=None), tolerance_cm=0.0
            )

    def test_far_range_still_fuses(self, finder):
        # Recessed sensor sees 28+3=31 cm -> out of range; primary alone.
        reading = finder.fuse(0.1, 28.0)
        assert reading.valid
        assert reading.distance_cm == pytest.approx(28.0, abs=1.0)


class TestFirmwareDualMode:
    def _device(self, dual: bool, seed: int = 4) -> DistScroll:
        config = DeviceConfig(
            dual_sensor=dual, chunk_size=0, fast_scroll_enabled=False
        )
        return DistScroll(
            build_menu([f"I{i}" for i in range(30)]), config=config, seed=seed
        )

    def _dive(self, device: DistScroll, depth: float) -> tuple[int, int]:
        device.hold_at(5.5)
        device.run_for(0.5)
        at_crossing = device.highlighted_index
        for d in np.linspace(5.0, depth, 8):
            device.hold_at(float(d))
            device.run_for(0.1)
        device.run_for(1.5)
        return at_crossing, device.highlighted_index

    def test_deep_park_preserved_with_fusion(self):
        device = self._device(dual=True)
        before, after = self._dive(device, 1.5)
        assert after == before

    def test_deep_park_lost_without_fusion(self):
        device = self._device(dual=False)
        before, after = self._dive(device, 1.5)
        assert after != before  # the honest single-sensor limitation

    def test_normal_scrolling_unaffected(self):
        # A realistic chunk-sized level: islands are wide enough that the
        # highlight must land exactly (30 flat entries would be noise
        # limited at the far end in *either* mode — that is what EXT-LONG
        # measures, not a fusion property).
        config = DeviceConfig(dual_sensor=True, fast_scroll_enabled=False)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(10)]), config=config, seed=4
        )
        firmware = device.firmware
        for index in (0, 3, 6, 9):
            device.hold_at(firmware.aim_distance_for_index(index))
            device.run_for(0.4)
            assert device.highlighted_index == index

    def test_dual_fast_scroll_still_works(self):
        config = DeviceConfig(dual_sensor=True, chunk_size=0,
                              fast_scroll_enabled=True)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(30)]), config=config, seed=4
        )
        device.hold_at(20.0)
        device.run_for(0.4)
        device.hold_at(3.0)  # clearly in fold-back, fusion-confirmed
        device.run_for(1.0)
        fast = [e for _, e in device.events() if e.kind == "FastScroll"]
        assert len(fast) >= 5

    def test_dual_mode_requires_spare_sensor(self, sim):
        from repro.core.firmware import Firmware
        from repro.hardware.board import build_distscroll_board

        board = build_distscroll_board(sim, fit_spare_sensor=False)
        with pytest.raises(ValueError):
            Firmware(
                board,
                build_menu(["A", "B"]),
                DeviceConfig(dual_sensor=True),
            )

    def test_dual_mode_fits_mcu_budget(self):
        device = self._device(dual=True)
        device.hold_at(15.0)
        device.run_for(1.0)
        assert device.board.mcu.flash_free > 0
        utilization = device.board.mcu.tick_utilization(
            device.config.firmware_period_s
        )
        assert utilization < 1.0

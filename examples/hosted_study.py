#!/usr/bin/env python
"""A complete hosted user study: PC-side control, RF logging, replay.

Runs the study the authors planned (§6/§7) end to end:

1. the host PC administers instructed tasks over the RF downlink (the
   instruction appears on the device's second display),
2. a simulated participant performs them on the device,
3. the host decodes the uplink event stream, scores each task, and
4. the whole session is recorded to JSONL and re-loaded for offline
   analysis — including the true hand trajectory, which only a
   simulation can capture.

Run:  python examples/hosted_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.phonemenu import build_phone_menu
from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.host import SessionRecorder, SessionReplay, StudyController
from repro.interaction.gloves import GLOVES
from repro.interaction.user import SimulatedUser

TASKS = [
    ("Messages", "Write message"),
    ("Settings", "Tone settings", "Ringing tone"),
    ("Call register", "Missed calls"),
    ("Extras", "Stopwatch"),
    ("Settings", "Display", "Backlight"),
]


def main() -> None:
    device = DistScroll(
        build_phone_menu(),
        config=DeviceConfig(debug_display=False),
        seed=21,
    )
    controller = StudyController(device=device)
    participant = SimulatedUser(
        device=device,
        rng=np.random.default_rng(21),
        glove=GLOVES["latex"],  # a bio-lab participant
    )
    participant.practice_trials = 15

    session_path = Path(tempfile.gettempdir()) / "distscroll_session.jsonl"
    recorder = SessionRecorder(device, session_path, pose_resolution_cm=0.1)
    # Dense trajectory sampling (50 Hz) for the kinematic analysis.
    from repro.sim.kernel import PeriodicTask

    PeriodicTask(device.sim, 0.02, recorder.sample_pose, phase=0.0)

    print("Hosted study: 5 instructed tasks over the RF link")
    print("=================================================\n")
    device.run_for(0.5)

    for path in TASKS:
        score = controller.begin_task(path)
        device.run_for(0.3)
        shown = " ".join(line for line in device.visible_status() if line)
        for label in path:
            labels = [e.label for e in device.firmware.cursor.entries]
            participant.select_entry(labels.index(label))
            recorder.sample_pose()
            controller.poll()
        status = "ok" if score.completed else "INCOMPLETE"
        print(
            f"  {' > '.join(path):<44} {score.duration_s:5.1f} s  "
            f"{score.highlight_changes:2d} moves  [{status}]"
        )
        while device.depth > 0:
            device.click("back")
    recorder.close()

    summary = controller.summary()
    print("\nHost-side summary")
    for key, value in summary.items():
        print(f"  {key:<26} {value:.3f}" if isinstance(value, float)
              else f"  {key:<26} {value}")

    replay = SessionReplay.load(session_path)
    print("\nOffline replay analysis")
    print(f"  session duration:      {replay.duration():.1f} s")
    print(f"  events recorded:       {len(replay.events)}")
    print(f"  hand travel:           {replay.total_hand_travel_cm():.0f} cm")
    activations = list(replay.events_of_kind('EntryActivated'))
    print(f"  activations in replay: {len(activations)}")
    print(f"  session file:          {session_path}")

    from repro.host import analyze_session

    analysis = analyze_session(replay)
    print("\nPer-trial kinematics (velocity-peak submovement analysis):")
    for row in analysis.summary_rows():
        print(f"  {row}")
    print(
        f"\n  means: {analysis.mean_trial_s:.2f} s/trial, "
        f"{analysis.mean_submovements:.1f} submovements, "
        f"peak velocity {analysis.mean_peak_velocity:.0f} cm/s"
    )


if __name__ == "__main__":
    main()

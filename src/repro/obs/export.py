"""Exporters for observability payloads.

Three formats, all deterministic byte-for-byte for a seeded run:

* :func:`to_chrome_trace` — Chrome trace-event JSON ("JSON Object
  Format" with a ``traceEvents`` array of complete ``"ph": "X"``
  events).  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
  open it directly; sim seconds are exported as microseconds because
  the format's ``ts``/``dur`` are microseconds.
* :func:`to_jsonl` — one JSON object per line (a ``meta`` line, then
  every metric, then every span) for grep/jq pipelines.
* :func:`format_metrics` / :func:`format_spans` — human-readable text
  for the ``repro metrics`` and ``repro trace`` CLI commands.

The payload these functions consume is
:meth:`repro.obs.Recorder.payload` (or the shard-merged equivalent
stored on :class:`repro.experiments.harness.ExperimentResult.obs`):
``{"version": 1, "metrics": {...}, "spans": [...]}``.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Optional

from .metrics import SNAPSHOT_VERSION

__all__ = [
    "to_chrome_trace",
    "to_jsonl",
    "format_metrics",
    "format_spans",
    "metric_summaries",
]

_S_TO_US = 1e6


def _mean_of(entry: dict[str, Any]) -> Optional[float]:
    if entry["count"] == 0:
        return None
    total = Fraction(entry["sum"][0], entry["sum"][1])
    return float(total / entry["count"])


def metric_summaries(metrics: dict[str, Any]) -> dict[str, Any]:
    """Flatten a metric snapshot into plain display-friendly values.

    Counters become ints, gauges ``{"time", "value"}``, histograms
    ``{"count", "mean", "min", "max"}`` (the exact-rational sum is
    collapsed to a float mean).  Keys stay sorted.
    """
    out: dict[str, Any] = {}
    for name, entry in metrics.items():
        if entry["type"] == "counter":
            out[name] = {"type": "counter", "value": entry["value"]}
        elif entry["type"] == "gauge":
            last = entry["last"]
            out[name] = {
                "type": "gauge",
                "time": None if last is None else last[0],
                "value": None if last is None else last[1],
            }
        else:
            out[name] = {
                "type": "histogram",
                "count": entry["count"],
                "mean": _mean_of(entry),
                "min": entry["min"],
                "max": entry["max"],
            }
    return out


def to_chrome_trace(payload: dict[str, Any], title: str = "repro") -> str:
    """Render a payload as Chrome trace-event JSON.

    Every span becomes a complete event (``"ph": "X"``); ``pid`` is
    always 0 and ``tid`` is the shard index (0 for unsharded runs), so
    a sharded experiment shows one track per shard.  Metric summaries
    ride along in ``otherData`` where Perfetto surfaces them in the
    trace-info dialog.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": title},
        }
    ]
    for record in payload.get("spans", ()):
        start = record["start"]
        args: dict[str, Any] = {"depth": record["depth"]}
        args.update(record["attrs"])
        events.append(
            {
                "name": record["name"],
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": record.get("shard", 0),
                "ts": start * _S_TO_US,
                "dur": (record["end"] - start) * _S_TO_US,
                "args": args,
            }
        )
    document = {
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "version": payload.get("version", SNAPSHOT_VERSION),
            "metrics": metric_summaries(payload.get("metrics", {})),
        },
        "traceEvents": events,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def to_jsonl(payload: dict[str, Any]) -> str:
    """Render a payload as JSON Lines (meta, metrics, then spans)."""
    lines = [
        json.dumps(
            {
                "record": "meta",
                "version": payload.get("version", SNAPSHOT_VERSION),
            },
            sort_keys=True,
        )
    ]
    for name, entry in payload.get("metrics", {}).items():
        lines.append(
            json.dumps(
                {"record": "metric", "name": name, **entry}, sort_keys=True
            )
        )
    for record in payload.get("spans", ()):
        lines.append(json.dumps({"record": "span", **record}, sort_keys=True))
    return "\n".join(lines) + "\n"


def _format_number(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _histogram_bars(entry: dict[str, Any], width: int = 24) -> list[str]:
    """ASCII bars for the non-empty bins of a histogram snapshot."""
    from .metrics import _log_edges  # local: display-only helper

    edges = _log_edges(
        entry["low"], entry["high"], entry["bins_per_decade"]
    )
    counts = entry["counts"]
    peak = max(counts)
    if peak == 0:
        return []
    lines = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if index == 0:
            label = f"(-inf, {edges[0]:.3g})"
        elif index == len(edges):
            label = f"[{edges[-1]:.3g}, inf)"
        else:
            label = f"[{edges[index - 1]:.3g}, {edges[index]:.3g})"
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"    {label:>22}  {bar} {count}")
    return lines


def format_metrics(payload: dict[str, Any], histograms: bool = True) -> str:
    """Human-readable metric report for ``repro metrics``."""
    metrics = payload.get("metrics", {})
    if not metrics:
        return "no metrics recorded\n"
    grouped: dict[str, list[str]] = {
        "counter": [],
        "gauge": [],
        "histogram": [],
    }
    for name, entry in metrics.items():
        kind = entry["type"]
        if kind == "counter":
            grouped[kind].append(f"  {name:<44} {entry['value']}")
        elif kind == "gauge":
            last = entry["last"]
            if last is None:
                grouped[kind].append(f"  {name:<44} -")
            else:
                grouped[kind].append(
                    f"  {name:<44} {_format_number(last[1])}"
                    f" @ t={_format_number(last[0])}s"
                )
        else:
            mean = _mean_of(entry)
            grouped[kind].append(
                f"  {name:<44} count={entry['count']}"
                f" mean={_format_number(mean)}"
                f" min={_format_number(entry['min'])}"
                f" max={_format_number(entry['max'])}"
            )
            if histograms:
                grouped[kind].extend(_histogram_bars(entry))
    sections = []
    for kind, title in (
        ("counter", "counters"),
        ("gauge", "gauges"),
        ("histogram", "histograms"),
    ):
        if grouped[kind]:
            sections.append(title + ":")
            sections.extend(grouped[kind])
    return "\n".join(sections) + "\n"


def format_spans(payload: dict[str, Any]) -> str:
    """Per-name span summary (count / total / mean duration) as text."""
    spans = payload.get("spans", [])
    if not spans:
        return "no spans recorded\n"
    totals: dict[str, tuple[int, float]] = {}
    for record in spans:
        duration = record["end"] - record["start"]
        count, total = totals.get(record["name"], (0, 0.0))
        totals[record["name"]] = (count + 1, total + duration)
    lines = [f"{'span':<36} {'count':>8} {'total_s':>12} {'mean_s':>12}"]
    for name in sorted(totals):
        count, total = totals[name]
        lines.append(
            f"{name:<36} {count:>8} {total:>12.6f} {total / count:>12.6f}"
        )
    lines.append(f"{len(spans)} span(s) total")
    return "\n".join(lines) + "\n"

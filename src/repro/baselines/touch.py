"""Touch/stylus scrolling — the input DistScroll replaces under gloves.

The paper's motivation: "gloves reduce ... the tactile sensation of the
hand and fingers and make touch and stylus interfaces harder to use",
and stylus input generally requires two hands (hold + point).  The model
is a flick-and-tap scroller: drag flicks advance the view a page at a
time, then a precise tap activates the target entry.

The tap is a Fitts pointing task onto a ~4 mm-high list row; the glove's
``touch_error_factor`` inflates the endpoint spread, which is what makes
this technique collapse in the ABL-GLOVE experiment while remaining the
fastest bare-handed — matching everyday experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty, movement_time

__all__ = ["TouchScroller"]


@dataclass
class TouchScroller(ScrollingTechnique):
    """Flick-scrolling plus a precise activation tap.

    Parameters
    ----------
    rows_per_flick:
        Entries scrolled past per flick gesture.
    flick_time_s:
        Duration of one flick.
    row_height_mm:
        List row height — the tap target size.
    tap_distance_mm:
        Typical finger travel to the target row.
    """

    name: str = "touch"
    one_handed: bool = False  # device in one hand, stylus/finger in other
    glove_compatible: bool = False
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="touch",
        title="Touch/stylus flick-and-tap",
        citation=(
            "PDA touch/stylus input, the paper's motivating contrast "
            "(DistScroll §1)"
        ),
        input_model=(
            "Capacitive/resistive touch position; drag flicks scroll "
            "the view, a final tap lands on a ~4 mm list row."
        ),
        transfer_function=(
            "Flicks advance the view a page at a time (discrete rate "
            "bursts); the activation tap is a Fitts pointing task whose "
            "endpoint spread the glove's touch_error_factor inflates."
        ),
        control_order="position",
    )
    rows_per_flick: int = 5
    flick_time_s: float = 0.24
    row_height_mm: float = 4.0
    tap_distance_mm: float = 30.0

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Flick until the target is on screen, then tap it."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        steps = abs(target_index - start_index)
        trial.index_of_difficulty = index_of_difficulty(
            max(self.tap_distance_mm, 1e-6), self.row_height_mm
        )
        duration = self._lognormal(self.t.reaction_s) + self._lognormal(
            self.t.homing_s
        )
        flicks_needed = steps // self.rows_per_flick
        for _ in range(flicks_needed):
            duration += self._lognormal(self.flick_time_s, 0.15)
            trial.operations += 1
        # Visual search of the now-visible page.
        duration += self._lognormal(0.25, 0.25)
        # The activation tap: a Fitts pointing task onto the row.
        effective_width = self.row_height_mm / self.glove.touch_error_factor
        effective_width = max(effective_width, 0.3)
        for _ in range(8):
            mt = movement_time(
                0.10, 0.13, self.tap_distance_mm, effective_width
            )
            duration += self._lognormal(max(mt, 0.15), 0.10)
            trial.operations += 1
            # Miss probability from the endpoint spread vs. true row height.
            spread = (self.row_height_mm / 2.0) * (
                self.glove.touch_error_factor * 0.55
            )
            landing_offset = abs(self.rng.normal(0.0, spread))
            if landing_offset <= self.row_height_mm / 2.0:
                trial.duration_s = duration
                return trial
            # Tapped the wrong row: that *activates* the neighbour.
            trial.errors += 1
            duration += self._lognormal(self.t.reaction_s) + self._lognormal(
                self.t.keypress_s
            )
        trial.duration_s = duration
        return trial

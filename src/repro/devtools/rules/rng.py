"""REP002 — randomness only through seeded numpy ``Generator`` streams.

Determinism (and shard-order independence in the parallel runner) holds
because every random draw descends from an explicit seed: components
receive a ``numpy.random.Generator`` (or spawn one from a
``SeedSequence``), never reach for ambient global state.  Both the
stdlib ``random`` module and numpy's legacy global functions
(``np.random.rand``, ``np.random.seed``, ...) are process-global: a
single call anywhere couples unrelated experiments' streams and makes
``--jobs N`` results depend on worker scheduling.
"""

from __future__ import annotations

import ast

from repro.devtools.base import Rule, attribute_chain

__all__ = ["SeededRngOnlyRule"]

#: Legacy global-state members of ``numpy.random``.  Everything needed
#: for seeded streams (``default_rng``, ``Generator``, ``SeedSequence``,
#: bit generators) is absent from this set on purpose.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "exponential",
        "binomial",
        "beta",
        "gamma",
        "lognormal",
        "RandomState",
    }
)


class SeededRngOnlyRule(Rule):
    """Flag stdlib ``random`` and legacy ``numpy.random`` global state."""

    rule_id = "REP002"
    title = "randomness must flow from a passed-in Generator/SeedSequence"
    exempt_prefixes = ("benchmarks",)
    rationale = (
        "stdlib `random` and legacy `numpy.random` globals are"
        " process-wide state: one call anywhere couples unrelated"
        " experiments' streams and makes `--jobs N` results depend on"
        " worker scheduling.  Every draw must descend from an explicit"
        " seed via a passed-in `numpy.random.Generator`."
    )
    example = "values = np.random.rand(32)  # legacy global stream"
    escape_hatch = (
        "`repro lint --fix` rewrites mechanical cases to"
        " `np.random.default_rng(0).<method>(...)` (review the seed!);"
        " benchmark code under benchmarks/ is exempt; anything else is"
        " baselined with a justification."
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib `random` is process-global state: accept a"
                    " `numpy.random.Generator` parameter (or spawn one"
                    " via `Simulator.spawn_rng()`) instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "stdlib `random` is process-global state: accept a"
                " `numpy.random.Generator` parameter instead",
            )
        elif node.module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name in _LEGACY_NP_RANDOM:
                    self.report(
                        node,
                        f"legacy `numpy.random.{alias.name}` uses the global"
                        " stream; use `default_rng`/`SeedSequence` and pass"
                        " the Generator down",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = attribute_chain(node)
        if (
            len(chain) >= 3
            and chain[-3] in ("np", "numpy")
            and chain[-2] == "random"
            and chain[-1] in _LEGACY_NP_RANDOM
        ):
            self.report(
                node,
                f"legacy `{'.'.join(chain)}` draws from numpy's global"
                " stream; use `default_rng(seed)`/`SeedSequence` and pass"
                " the Generator down",
            )
        self.generic_visit(node)

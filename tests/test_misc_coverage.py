"""Coverage for smaller corners: kernel helpers, display windowing,
firmware-level display behaviour, RF downlink protocol, SDAZ geometry."""

from __future__ import annotations

import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.sim.kernel import Simulator, drain


class TestKernelHelpers:
    def test_drain_runs_everything(self):
        sim = Simulator(seed=0)
        hits = []
        drain(sim, [(0.2, lambda: hits.append("b")), (0.1, lambda: hits.append("a"))])
        assert hits == ["a", "b"]

    def test_run_while_stops_on_condition(self):
        sim = Simulator(seed=0)
        counter = {"n": 0}

        def bump():
            counter["n"] += 1
            sim.schedule(0.1, bump)

        sim.schedule(0.1, bump)
        sim.run_while(lambda: counter["n"] < 5, max_time=100.0)
        assert counter["n"] == 5

    def test_run_while_respects_max_time(self):
        sim = Simulator(seed=0)

        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.1, forever)
        sim.run_while(lambda: True, max_time=1.0)
        assert sim.now <= 1.1


class TestMenuWindowing:
    def test_window_pins_to_top(self):
        device = DistScroll(
            build_menu([f"I{i}" for i in range(10)]), seed=0, noisy=False
        )
        device.hold_at(27.0)  # entry 0
        device.run_for(0.4)
        lines = device.visible_menu()
        assert lines[0].startswith(">")
        assert "I0" in lines[0]

    def test_window_pins_to_bottom(self):
        device = DistScroll(
            build_menu([f"I{i}" for i in range(10)]), seed=0, noisy=False
        )
        device.hold_at(5.5)  # last entry
        device.run_for(0.5)
        lines = device.visible_menu()
        marked = [l for l in lines if l.startswith(">")]
        assert marked and "I9" in marked[0]
        # Window shows the tail of the list, not blanks.
        assert all(line for line in lines)

    def test_short_menu_pads_blank_lines(self):
        device = DistScroll(build_menu(["A", "B"]), seed=0, noisy=False)
        device.run_for(0.3)
        lines = device.visible_menu()
        assert lines[2] == "" and lines[4] == ""


class TestHostDownlink:
    def test_show_and_clear(self):
        device = DistScroll(build_menu(["A", "B"]), seed=0, noisy=False)
        device.board.rf_host.send(b"SHOW:hello there operator")
        device.run_for(0.3)
        status = " ".join(device.visible_status())
        assert "hello" in status
        device.board.rf_host.send(b"CLEAR")
        device.run_for(0.3)
        status = device.visible_status()
        assert status[0].startswith("raw")  # debug view restored

    def test_unknown_downlink_ignored(self):
        device = DistScroll(build_menu(["A", "B"]), seed=0, noisy=False)
        device.board.rf_host.send(b"REBOOT")  # not in the protocol
        device.run_for(0.3)
        assert not device.firmware.halted

    def test_long_instruction_wrapped(self):
        device = DistScroll(build_menu(["A", "B"]), seed=0, noisy=False)
        text = "Select the ringing tone volume entry in the settings menu"
        device.board.rf_host.send(b"SHOW:" + text.encode())
        device.run_for(0.3)
        lines = device.visible_status()
        assert all(len(line) <= 16 for line in lines)
        assert sum(1 for line in lines if line) >= 3


class TestSDAZGeometryEdges:
    def test_exact_granularity_level_is_flat(self):
        config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(10)]), config=config, seed=0
        )
        assert not device.firmware._level_needs_zoom()

    def test_window_clamps_at_list_end(self):
        config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(25)]), config=config, seed=0
        )
        firmware = device.firmware
        firmware._window_start = 23  # deliberately past the end
        start, end = firmware.window_range()
        assert end == 24
        assert end - start + 1 == 10

    def test_aim_outside_window_raises(self):
        config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(25)]), config=config, seed=0
        )
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(12))
        device.run_for(1.5)
        assert firmware.zoom == "fine"
        start, end = firmware.window_range()
        outside = end + 3 if end + 3 < 25 else start - 3
        with pytest.raises(ValueError):
            firmware.aim_distance_for_index(outside)


class TestDualSensorBoardWiring:
    def test_spare_channel_reads_offset_distance(self, sim):
        from repro.hardware.board import (
            ADC_CHANNEL_DISTANCE,
            ADC_CHANNEL_DISTANCE_SPARE,
            build_distscroll_board,
        )

        board = build_distscroll_board(sim, noisy=False, spare_offset_cm=3.0)
        board.set_pose(distance_cm=10.0)
        primary = board.adc.sample_volts(0.1, ADC_CHANNEL_DISTANCE)
        spare = board.adc.sample_volts(0.2, ADC_CHANNEL_DISTANCE_SPARE)
        # The spare sees 13 cm: a clearly lower voltage.
        assert spare < primary

    def test_no_spare_board(self, sim):
        from repro.hardware.board import build_distscroll_board

        board = build_distscroll_board(sim, fit_spare_sensor=False)
        assert board.spare_distance_sensor is None
        assert board.spare_offset_cm == 0.0

"""Dual-sensor fusion — putting the DistScroll's second ranger to work.

The prototype carries **two** distance-sensor slots: "the prototypical
design comprises two distance sensors (only one is used in our
experiments so far)" (§4).  This module implements the obvious reason to
fit a second one: mounted recessed by a few centimeters behind the
primary (a ``baseline_cm`` longitudinal offset), it sees ``d + baseline``
when the primary sees ``d`` — and that breaks the fold-back ambiguity:

* **in range** — both sensors' in-range inversions agree up to the known
  baseline;
* **primary folded (d < 4 cm)** — the primary's in-range inversion
  produces a bogus alias, but the recessed sensor still operates on its
  monotone branch (for ``d > 4 - baseline``), so the inversions
  *disagree* by far more than noise, and the true distance is recovered
  from the recessed sensor alone.

The :class:`DualRangeFinder` performs this consistency check per sample
pair and reports a fused distance estimate with a fold-back flag — the
firmware's ``dual_sensor`` mode consumes it in place of the heuristic
fold-back latch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensors.gp2d120 import GP2D120, SENSOR_MAX_CM

__all__ = ["FusedReading", "DualRangeFinder"]


@dataclass(frozen=True)
class FusedReading:
    """One fused range estimate.

    Attributes
    ----------
    distance_cm:
        Best estimate of the primary sensor's distance to the body.
    in_foldback:
        Whether the primary sensor is operating below its 4 cm peak.
    valid:
        Whether any estimate could be produced (both sensors out of
        range → ``False``).
    disagreement_cm:
        Absolute difference between the two in-range inversions (large
        values signal the fold-back or a corrupted reading).
    """

    distance_cm: float
    in_foldback: bool
    valid: bool
    disagreement_cm: float


class DualRangeFinder:
    """Consistency-checking fusion of the primary and recessed sensors.

    Parameters
    ----------
    primary, recessed:
        The two GP2D120 specimens.
    baseline_cm:
        How much farther the recessed sensor sits from the target; must
        be positive and large enough that the recessed sensor stays on
        its monotone branch through the primary's usable fold-back
        (≥ ~2.5 cm in practice).
    tolerance_cm:
        Maximum inversion disagreement still considered "consistent".
        Should comfortably exceed combined sensor noise mapped through
        the curve (~0.5–1 cm mid-range).
    """

    def __init__(
        self,
        primary: GP2D120,
        recessed: GP2D120,
        baseline_cm: float = 3.0,
        tolerance_cm: float = 1.5,
    ) -> None:
        if baseline_cm <= 0:
            raise ValueError(f"baseline must be positive, got {baseline_cm}")
        if tolerance_cm <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance_cm}")
        self.primary = primary
        self.recessed = recessed
        self.baseline_cm = float(baseline_cm)
        self.tolerance_cm = float(tolerance_cm)

    def fuse_voltages(self, v_primary: float, v_recessed: float) -> FusedReading:
        """Fuse one simultaneous pair of output voltages."""
        d_primary = self._invert(self.primary, v_primary)
        d_recessed_raw = self._invert(self.recessed, v_recessed)
        d_recessed = (
            d_recessed_raw - self.baseline_cm
            if d_recessed_raw is not None
            else None
        )

        if d_primary is not None and d_recessed is not None:
            disagreement = abs(d_primary - d_recessed)
            if disagreement <= self.tolerance_cm:
                # Consistent: both on the monotone branch.  Weight the
                # primary higher (it is the sensor the mapping is built
                # on); the recessed one mainly vouches for it.
                fused = 0.75 * d_primary + 0.25 * d_recessed
                return FusedReading(
                    distance_cm=float(fused),
                    in_foldback=False,
                    valid=True,
                    disagreement_cm=float(disagreement),
                )
            # Inconsistent: the primary has folded back (or glinted).
            # The recessed sensor is the trustworthy one.
            return FusedReading(
                distance_cm=float(d_recessed),
                in_foldback=True,
                valid=True,
                disagreement_cm=float(disagreement),
            )

        if d_recessed is not None:
            # Primary out of its output span entirely (saturated or
            # floored) while the recessed sensor still ranges.
            return FusedReading(
                distance_cm=float(d_recessed),
                in_foldback=d_recessed < self.primary.params.peak_distance_cm,
                valid=True,
                disagreement_cm=float("inf"),
            )

        if d_primary is not None:
            # Recessed out of range (target beyond ~30-baseline cm for it
            # is impossible since it sees farther; this happens only when
            # its beam misses).  Trust the primary, cannot rule out fold.
            return FusedReading(
                distance_cm=float(d_primary),
                in_foldback=False,
                valid=True,
                disagreement_cm=float("inf"),
            )

        return FusedReading(
            distance_cm=float("nan"),
            in_foldback=False,
            valid=False,
            disagreement_cm=float("inf"),
        )

    def fuse(self, time_s: float, true_distance_cm: float) -> FusedReading:
        """Sample both sensors at their physical offsets and fuse.

        Convenience for tests/experiments; the firmware path goes through
        the ADC instead.
        """
        v_primary = self.primary.output_voltage(time_s, true_distance_cm)
        v_recessed = self.recessed.output_voltage(
            time_s, true_distance_cm + self.baseline_cm
        )
        return self.fuse_voltages(v_primary, v_recessed)

    def usable_foldback_floor_cm(self) -> float:
        """Smallest primary distance the fusion can still resolve.

        Set by the recessed sensor's own 4 cm peak: below
        ``peak - baseline`` both sensors are folded and fusion fails.
        """
        return max(
            self.recessed.params.peak_distance_cm - self.baseline_cm, 0.0
        )

    def _invert(self, sensor: GP2D120, voltage: float):
        """In-range inversion, or ``None`` outside the monotone span."""
        try:
            distance = sensor.distance_for_voltage(voltage)
        except ValueError:
            return None
        if distance > SENSOR_MAX_CM:
            return None
        return distance

"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door that does not require writing
Python: list and run experiments, print a quick interactive demo of the
device, or dump the sensor calibration.

Commands
--------
``experiments``            list all experiment ids
``run <id> [--seed N] [--csv PATH]``
                           run one experiment and print its table
``calibrate [--seed N]``   print the Figure-4 sweep for one specimen
``demo [--seed N]``        scripted device walk-through on the phone menu
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.experiments import (
    ExperimentResult,
    run_ablation_mapping,
    run_breadth,
    run_calibration_ablation,
    run_direction,
    run_distance_profile,
    run_fault_sweep,
    run_fig4,
    run_fig5,
    run_firmware_ablation,
    run_foldback,
    run_fusion,
    run_gloves_bench,
    run_island_mapping,
    run_layouts,
    run_long_menus,
    run_pda,
    run_power,
    run_range_sweep,
    run_sensor_env,
    run_speed_comparison,
    run_stocktaking_by_glove,
    run_user_study,
)

__all__ = ["main", "EXPERIMENT_RUNNERS"]

#: Registry: experiment id -> zero-config runner returning a result.
EXPERIMENT_RUNNERS: dict[str, Callable[[int], ExperimentResult]] = {
    "FIG4": lambda seed: run_fig4(seed=seed)[0],
    "FIG5": lambda seed: run_fig5(seed=seed),
    "SENS-ENV": lambda seed: run_sensor_env(seed=seed, readings_per_point=8),
    "SENS-FOLD": lambda seed: run_foldback(seed=seed),
    "MAP-ISL": lambda seed: run_island_mapping(seed=seed),
    "STUDY1": lambda seed: run_user_study(
        seed=seed, n_users=8, n_blocks=3, trials_per_block=6
    ),
    "EXT-SPEED": lambda seed: run_speed_comparison(seed=seed)[0],
    "EXT-SPEED-PROFILE": lambda seed: run_distance_profile(seed=seed),
    "EXT-RANGE": lambda seed: run_range_sweep(
        seed=seed, n_trials=6, n_users=2
    ),
    "EXT-LONG": lambda seed: run_long_menus(
        seed=seed, menu_lengths=(10, 20, 40), n_trials=5, n_users=2
    ),
    "EXT-DIR": lambda seed: run_direction(seed=seed, n_users=8, n_trials=8),
    "EXT-FUSION": lambda seed: run_fusion(seed=seed),
    "EXT-PDA": lambda seed: run_pda(seed=seed, n_trials=6, n_users=2),
    "ABL-MAP": lambda seed: run_ablation_mapping(
        seed=seed, n_trials=5, n_users=2
    ),
    "ABL-GLOVE": lambda seed: run_gloves_bench(seed=seed, n_trials=6),
    "ABL-FW": lambda seed: run_firmware_ablation(seed=seed),
    "ABL-GLOVE-STOCK": lambda seed: run_stocktaking_by_glove(
        seed=seed, n_items=3
    ),
    "ABL-LAYOUT": lambda seed: run_layouts(seed=seed, n_users=5, n_trials=4),
    "ABL-CAL": lambda seed: run_calibration_ablation(
        seed=seed, n_specimens=3, n_trials=5
    ),
    "EXT-POWER": lambda seed: run_power(seed=seed, window_s=45.0),
    "ROB-FAULT": lambda seed: run_fault_sweep(seed=seed),
    "EXT-BREADTH": lambda seed: run_breadth(seed=seed, n_tasks=4, n_users=2),
}


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment_id in EXPERIMENT_RUNNERS:
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = EXPERIMENT_RUNNERS.get(args.experiment_id.upper())
    if runner is None:
        print(
            f"unknown experiment {args.experiment_id!r}; "
            "see `python -m repro experiments`",
            file=sys.stderr,
        )
        return 2
    result = runner(args.seed)
    print(result.table())
    if args.csv:
        result.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    result, calibration = run_fig4(seed=args.seed)
    print(result.table())
    fit = calibration.hyperbola
    print(
        f"\nspecimen curve: V = {fit.a:.3f}/(d + {fit.b:.3f}) + {fit.c:.4f}"
    )
    return 0


def _cmd_islands(args: argparse.Namespace) -> int:
    from repro.core.islands import Placement, build_island_map
    from repro.hardware.adc import ADC
    from repro.sensors.gp2d120 import GP2D120

    placement = Placement(args.placement)
    island_map = build_island_map(
        GP2D120(rng=None),
        ADC(rng=None),
        args.entries,
        range_cm=(args.near, args.far),
        island_fill=args.fill,
        placement=placement,
    )
    print(
        f"island map: {args.entries} entries over {args.near}-{args.far} cm, "
        f"fill {args.fill}, placement {placement.value}"
    )
    print(f"{'slot':>4} {'center_cm':>10} {'codes':>13} {'width':>6}")
    for slot in range(island_map.n_slots):
        island = island_map.island_for_slot(slot)
        print(
            f"{slot:>4} {island.center_distance_cm:>10.2f} "
            f"[{island.code_low:>4},{island.code_high:>4}] "
            f"{island.width_codes:>6}"
        )
    print(f"coverage: {island_map.coverage_fraction():.3f}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.apps.phonemenu import PhoneApp

    app = PhoneApp.create(seed=args.seed)
    device = app.device
    firmware = device.firmware
    print("DistScroll demo on the fictive phone menu (§6)\n")
    n_top = len(firmware.cursor.entries)
    for index in (0, n_top // 3, 2 * n_top // 3, n_top - 1):
        distance = firmware.aim_distance_for_index(index)
        device.hold_at(distance)
        device.run_for(0.5)
        print(f"  {distance:5.1f} cm -> {device.highlighted_label}")
    device.hold_at(firmware.aim_distance_for_index(0))
    device.run_for(0.5)
    device.click("select")
    print(f"\n  select -> entered {device.firmware.cursor.breadcrumb}")
    print("  top display:")
    for line in device.visible_menu():
        print(f"    |{line:<17}|")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DistScroll reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "experiments", help="list experiment ids"
    ).set_defaults(func=_cmd_experiments)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--csv", default=None, help="also write CSV here")
    run_parser.set_defaults(func=_cmd_run)

    calibrate_parser = sub.add_parser(
        "calibrate", help="print the Figure-4 sensor sweep"
    )
    calibrate_parser.add_argument("--seed", type=int, default=0)
    calibrate_parser.set_defaults(func=_cmd_calibrate)

    demo_parser = sub.add_parser("demo", help="scripted device walk-through")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.set_defaults(func=_cmd_demo)

    islands_parser = sub.add_parser(
        "islands", help="print the island table for a configuration"
    )
    islands_parser.add_argument("--entries", type=int, default=10)
    islands_parser.add_argument("--near", type=float, default=5.0)
    islands_parser.add_argument("--far", type=float, default=28.0)
    islands_parser.add_argument("--fill", type=float, default=0.62)
    islands_parser.add_argument(
        "--placement",
        default="equal-distance",
        choices=[p.value for p in __import__(
            "repro.core.islands", fromlist=["Placement"]
        ).Placement],
    )
    islands_parser.set_defaults(func=_cmd_islands)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

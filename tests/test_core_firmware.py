"""Tests for the firmware loop: islands→menu, buttons, chunking, display."""

from __future__ import annotations

import pytest

from repro.core.config import DeviceConfig, ScrollDirection
from repro.core.device import DistScroll
from repro.core.menu import build_menu


def make_device(n=10, config=None, noisy=False, seed=0):
    labels = [f"Item {i}" for i in range(n)]
    return DistScroll(build_menu(labels), config=config, seed=seed, noisy=noisy)


class TestDistanceToHighlight:
    def test_each_island_center_selects_its_entry(self):
        device = make_device(8)
        firmware = device.firmware
        for index in range(8):
            device.hold_at(firmware.aim_distance_for_index(index))
            device.run_for(0.4)
            assert device.highlighted_index == index

    def test_polarity_towards_scrolls_down(self):
        device = make_device(6)
        device.hold_at(6.0)  # near the body
        device.run_for(0.4)
        assert device.highlighted_index == 5  # last entry = "down"
        device.hold_at(27.0)
        device.run_for(0.4)
        assert device.highlighted_index == 0

    def test_polarity_towards_scrolls_up(self):
        config = DeviceConfig(direction=ScrollDirection.TOWARDS_SCROLLS_UP)
        device = make_device(6, config=config)
        device.hold_at(6.0)
        device.run_for(0.4)
        assert device.highlighted_index == 0
        device.hold_at(27.0)
        device.run_for(0.4)
        assert device.highlighted_index == 5

    def test_gap_holds_previous_selection(self):
        device = make_device(6)
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(3))
        device.run_for(0.4)
        assert device.highlighted_index == 3
        # Move into the gap between islands 3 and 2's distances.
        d3 = firmware.aim_distance_for_index(3)
        d2 = firmware.aim_distance_for_index(2)
        device.hold_at((d3 + d2) / 2.0)
        device.run_for(0.5)
        assert device.highlighted_index == 3  # unchanged, by design

    def test_out_of_range_holds_selection(self):
        device = make_device(6)
        device.hold_at(15.0)
        device.run_for(0.4)
        before = device.highlighted_index
        device.hold_at(45.0)  # beyond the sensor
        device.run_for(0.5)
        assert device.highlighted_index == before


class TestButtons:
    def test_select_enters_submenu(self):
        device = DistScroll(
            build_menu({"A": ["a1", "a2"], "B": []}), seed=0, noisy=False
        )
        device.hold_at(26.0)
        device.run_for(0.4)
        assert device.highlighted_label == "A"
        device.click("select")
        assert device.depth == 1
        assert device.firmware.cursor.entries[0].label == "a1"

    def test_select_leaf_emits_activation(self):
        device = DistScroll(build_menu({"A": [], "B": []}), seed=0, noisy=False)
        device.hold_at(24.0)
        device.run_for(0.4)
        device.click("select")
        kinds = [e.kind for _, e in device.events()]
        assert "EntryActivated" in kinds

    def test_back_leaves_submenu(self):
        device = DistScroll(build_menu({"A": ["a1"], "B": []}), seed=0, noisy=False)
        device.hold_at(26.0)
        device.run_for(0.4)
        device.click("select")
        assert device.depth == 1
        device.click("back")
        assert device.depth == 0

    def test_islands_rebuilt_per_level(self):
        device = DistScroll(
            build_menu({"A": ["a1", "a2", "a3"], "B": [], "C": [], "D": []}),
            seed=0,
            noisy=False,
        )
        device.hold_at(26.0)
        device.run_for(0.4)
        four = device.firmware.island_map.n_slots
        device.click("select")
        three = device.firmware.island_map.n_slots
        assert (four, three) == (4, 3)


class TestChunking:
    def test_long_level_is_chunked(self):
        config = DeviceConfig(chunk_size=10)
        device = make_device(25, config=config)
        assert device.firmware.n_chunks == 3
        assert device.firmware.island_map.n_slots == 10

    def test_aux_pages_chunks(self):
        config = DeviceConfig(chunk_size=10)
        device = make_device(25, config=config)
        device.run_for(0.2)
        device.click("aux")
        assert device.firmware.chunk == 1
        device.click("aux")
        assert device.firmware.chunk == 2
        assert device.firmware.island_map.n_slots == 5  # partial last chunk
        device.click("aux")
        assert device.firmware.chunk == 0  # wraps

    def test_chunk_of_index(self):
        config = DeviceConfig(chunk_size=10)
        device = make_device(25, config=config)
        assert device.firmware.chunk_of_index(0) == 0
        assert device.firmware.chunk_of_index(19) == 1
        assert device.firmware.chunk_of_index(24) == 2

    def test_selection_on_second_chunk(self):
        config = DeviceConfig(chunk_size=10)
        device = make_device(25, config=config)
        device.run_for(0.2)
        device.click("aux")
        aim = device.firmware.aim_distance_for_index(14)
        device.hold_at(aim)
        device.run_for(0.4)
        assert device.highlighted_index == 14

    def test_aim_for_wrong_chunk_raises(self):
        config = DeviceConfig(chunk_size=10)
        device = make_device(25, config=config)
        with pytest.raises(ValueError):
            device.firmware.aim_distance_for_index(14)

    def test_chunking_disabled(self):
        config = DeviceConfig(chunk_size=0)
        device = make_device(25, config=config)
        assert device.firmware.n_chunks == 1
        assert device.firmware.island_map.n_slots == 25


class TestFastScroll:
    def test_fast_scroll_steps_highlight(self):
        config = DeviceConfig(chunk_size=0, fast_scroll_enabled=True)
        device = make_device(30, config=config)
        device.hold_at(20.0)
        device.run_for(0.4)
        start = device.highlighted_index
        device.hold_at(3.95)  # hover at the peak
        device.run_for(1.0)
        fast_events = [e for _, e in device.events() if e.kind == "FastScroll"]
        assert len(fast_events) >= 5
        assert device.highlighted_index > start

    def test_fast_scroll_disabled_freezes(self):
        config = DeviceConfig(chunk_size=0, fast_scroll_enabled=False)
        device = make_device(30, config=config)
        device.hold_at(20.0)
        device.run_for(0.4)
        before = device.highlighted_index
        device.hold_at(3.95)
        device.run_for(1.0)
        assert device.highlighted_index == before

    def test_foldback_latch_preserves_selection(self):
        config = DeviceConfig(chunk_size=0, fast_scroll_enabled=False)
        device = make_device(30, config=config)
        device.hold_at(5.5)
        device.run_for(0.4)
        at_crossing = device.highlighted_index
        # A physical hand transits the peak; step through it like one.
        for d in (4.8, 4.2, 3.8, 3.2, 2.8, 2.4):
            device.hold_at(d)
            device.run_for(0.1)
        device.run_for(1.0)  # parked at 2.4 cm (alias ~6.1 cm)
        assert device.highlighted_index == at_crossing


class TestDisplays:
    def test_menu_window_shows_highlight_marker(self):
        device = make_device(10)
        device.hold_at(26.0)
        device.run_for(0.4)
        lines = device.visible_menu()
        assert any(line.startswith(">") for line in lines)
        marked = [l for l in lines if l.startswith(">")][0]
        assert device.highlighted_label in marked

    def test_debug_display_shows_raw_code(self):
        device = make_device(10)
        device.hold_at(15.0)
        device.run_for(0.4)
        status = device.visible_status()
        assert status[0].startswith("raw")

    def test_state_display_mode(self):
        config = DeviceConfig(debug_display=False)
        device = make_device(10, config=config)
        device.hold_at(15.0)
        device.run_for(0.4)
        status = device.visible_status()
        assert "(top)" in status[0]

    def test_window_scrolls_with_highlight(self):
        device = make_device(12)
        device.hold_at(6.0)  # highlight near the end of the list
        device.run_for(0.5)
        lines = device.visible_menu()
        assert any("Item 11" in line for line in lines)
        assert not any("Item 0" in line and "Item 01" not in line for line in lines)


class TestPowerAndHalt:
    def test_battery_drains_during_run(self):
        device = make_device(5, noisy=False)
        start = device.board.battery.state_of_charge
        device.run_for(30.0)
        assert device.board.battery.state_of_charge < start

    def test_halt_stops_processing(self):
        device = make_device(5)
        device.run_for(0.2)
        device.firmware.halt()
        ticks_before = device.board.mcu.ticks
        device.run_for(1.0)
        assert device.board.mcu.ticks == ticks_before

    def test_brownout_halts_firmware(self):
        device = make_device(5, noisy=False)
        # Force-flatten the battery.
        device.board.battery.draw(20.0, 3600 * 40)
        device.run_for(0.2)
        assert device.firmware.halted

    def test_mcu_headroom_is_positive(self):
        """The re-implemented firmware must fit the PIC's cycle budget."""
        device = make_device(10)
        device.hold_at(15.0)
        device.run_for(1.0)
        utilization = device.board.mcu.tick_utilization(
            device.config.firmware_period_s
        )
        assert 0.0 < utilization < 1.0

    def test_memory_fits_the_pic(self):
        device = make_device(10)
        assert device.board.mcu.flash_free > 0
        assert device.board.mcu.ram_free > 0


class TestEventsStream:
    def test_events_reach_host_over_rf(self):
        device = make_device(8, noisy=False)
        device.hold_at(26.0)
        device.run_for(0.3)
        device.hold_at(7.0)
        device.run_for(0.5)
        assert len(device.board.rf_host.received) > 0

    def test_listener_add_remove(self):
        device = make_device(5, noisy=False)
        seen = []
        cb = seen.append
        device.firmware.add_listener(cb)
        device.hold_at(7.0)
        device.run_for(0.4)
        count = len(seen)
        assert count > 0
        device.firmware.remove_listener(cb)
        device.hold_at(25.0)
        device.run_for(0.4)
        assert len(seen) == count

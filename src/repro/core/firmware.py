"""The DistScroll firmware, re-implemented from the paper's description.

"The code for the microcontroller in the DistScroll device is programmed
in C" (Section 4).  This module is that firmware's logic on the simulated
Smart-Its board: a fixed-rate main loop that

1. polls and debounces the three buttons,
2. starts an ADC conversion on the distance channel and median-filters
   the raw code,
3. maps the filtered code through the island table — keeping the previous
   selection while the reading sits in an inter-island gap,
4. drives the menu state machine (highlight / select / back / chunk
   paging for long levels),
5. renders the top display (menu window) and bottom display (state and
   debug information, as used in the initial study) over I2C,
6. streams interaction events over the RF link to the host PC.

Firmware-level mitigations from Section 4.2 are implemented faithfully:
the fold-back region below ~4 cm is unusable for absolute positioning, so
a *plausibility gate* rejects physically impossible code jumps, and —
optionally — the steep region is exploited as a **fast-scroll** gesture
"for faster scrolling or browsing" by advanced users.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.core.config import DeviceConfig, ScrollDirection
from repro.core.events import (
    ButtonEvent,
    ChunkChanged,
    EntryActivated,
    FastScroll,
    HighlightChanged,
    InteractionEvent,
    SubmenuEntered,
    SubmenuLeft,
)
from repro.core.islands import IslandMap, build_island_map
from repro.core.menu import MenuCursor, MenuEntry
from repro.faults import FaultKind
from repro.hardware.i2c import I2CError
from repro.hardware.board import (
    ADC_CHANNEL_DISTANCE,
    ADC_CHANNEL_DISTANCE_SPARE,
    DistScrollBoard,
)
from repro.obs.recorder import Recorder, active_recorder
from repro.sensors.fusion import DualRangeFinder
from repro.hardware.display import BT96040, TEXT_LINES
from repro.signal.filters import MedianFilter
from repro.sim.kernel import PeriodicTask

__all__ = ["Firmware"]

#: Rough instruction costs of the C routines, for cycle-budget accounting.
_COST_ADC_SAMPLE = 120
_COST_FILTER_PER_SAMPLE = 40
_COST_ISLAND_LOOKUP = 90
_COST_BUTTON_POLL = 25
_COST_DISPLAY_LINE = 450
_COST_RF_PACKET = 800
_COST_FUSION = 160

#: Display supply current (both panels), mA.
_DISPLAY_CURRENT_MA = 6.0
#: RF transmit pulse: charge per packet expressed as mA for 5 ms.
_RF_PULSE_MA = 18.0
_RF_PULSE_S = 0.005

#: One precomputed tick-obs stage: (span name, duration, attrs,
#: sorted attr items, cycles histogram, cycles as float).
_TickObsStage = tuple[
    str, float, dict[str, int], tuple[tuple[str, int], ...], Any, float
]
#: (stage rows, tick attrs, tick histogram, total cycles, battery gauge).
_TickObsPlan = tuple[list[_TickObsStage], dict[str, int], Any, float, Any]


class Firmware:
    """The device firmware bound to a board, a config and a menu.

    Parameters
    ----------
    board:
        Assembled hardware (see :func:`repro.hardware.build_distscroll_board`).
    menu:
        The menu tree to navigate.
    config:
        Device configuration.
    on_event:
        Optional application callback receiving every
        :class:`~repro.core.events.InteractionEvent`.

    Notes
    -----
    Construction allocates the firmware's flash/RAM footprint on the MCU
    and starts the main-loop :class:`~repro.sim.PeriodicTask`; the firmware
    is live as soon as the simulator runs.
    """

    def __init__(
        self,
        board: DistScrollBoard,
        menu: MenuEntry,
        config: Optional[DeviceConfig] = None,
        on_event: Optional[Callable[[InteractionEvent], None]] = None,
    ) -> None:
        self.board = board
        self.config = config or DeviceConfig()
        self.cursor = MenuCursor(root=menu)
        self._listeners: list[Callable[[InteractionEvent], None]] = []
        if on_event is not None:
            self._listeners.append(on_event)

        self._sim = board.sim
        self._filter = MedianFilter(self.config.smoothing_window)
        self._island_map: Optional[IslandMap] = None
        self._chunk = 0
        self._last_valid_code: Optional[int] = None
        self._suspicious_streak = 0
        self._fast_accumulator = 0.0
        self._fast_active = False
        self._foldback_latch = False
        self._display_dirty = True
        self._last_render_time = -math.inf
        self._halted = False

        # Graceful-degradation state (see repro.faults): render retry with
        # exponential backoff after I2C failures, a display watchdog that
        # re-renders after controller resets, and a brown-out hold that
        # rides out transient battery sag instead of halting.
        self._render_backoff_s = 0.0
        self._render_retry_at = -math.inf
        self._seen_display_resets = 0
        self._brownout_holding = False
        self.i2c_render_failures = 0
        self.i2c_render_recoveries = 0
        self.display_watchdog_rerenders = 0
        self.brownout_holds = 0

        self.raw_code: int = 0
        self.filtered_code: int = 0
        self.current_slot: Optional[int] = None

        # Static firmware footprint: mirrors a realistic C build for the
        # 18F452 (main loop, menu engine, display driver, RF stack).
        board.mcu.allocate("firmware-code", flash_bytes=14_500, ram_bytes=420)

        #: Text pushed by the host PC over RF (shown on the bottom panel
        #: in place of the debug/state view until cleared).
        self._host_message: Optional[list[str]] = None
        board.rf_device.on_receive(self._on_rf_packet)

        self._fusion: Optional[DualRangeFinder] = None
        if self.config.dual_sensor:
            if board.spare_distance_sensor is None:
                raise ValueError(
                    "dual_sensor mode requires the spare sensor slot to be "
                    "fitted (fit_spare_sensor=True at board assembly)"
                )
            self._fusion = DualRangeFinder(
                board.distance_sensor,
                board.spare_distance_sensor,
                baseline_cm=board.spare_offset_cm,
            )
            # The fusion routine and second ADC channel cost extra code.
            board.mcu.allocate("fusion-code", flash_bytes=1_800, ram_bytes=24)

        # Observability binds once at construction (see repro.obs): the
        # per-tick fast path stays a single None check when disabled.
        recorder = active_recorder()
        self._obs: Optional[Recorder] = (
            recorder if isinstance(recorder, Recorder) else None
        )
        # Precomputed tick-obs stage table, built lazily on the first
        # observed tick (stage costs and the MCU rate are fixed after
        # construction, so names/durations/instruments never change).
        self._tick_obs_plan: Optional[_TickObsPlan] = None

        self._wire_buttons()
        self._rebuild_islands()

        period = self.config.firmware_period_s
        self._main_task = PeriodicTask(self._sim, period, self._tick, phase=period)
        self._render_task = PeriodicTask(
            self._sim,
            1.0 / self.config.display_refresh_hz,
            self._render_if_dirty,
            phase=1.5 / self.config.display_refresh_hz,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def add_listener(self, callback: Callable[[InteractionEvent], None]) -> None:
        """Subscribe to interaction events."""
        self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[InteractionEvent], None]) -> None:
        """Unsubscribe (no-op when absent)."""
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    @property
    def island_map(self) -> IslandMap:
        """The active sensor-code→slot mapping for the current level."""
        assert self._island_map is not None
        return self._island_map

    @property
    def chunk(self) -> int:
        """Current page of a chunked long level (0 when unchunked)."""
        return self._chunk

    @property
    def n_chunks(self) -> int:
        """Number of pages the current level is split into."""
        n_entries = len(self.cursor.entries)
        size = self._effective_chunk_size()
        return max(1, math.ceil(n_entries / size))

    @property
    def halted(self) -> bool:
        """Whether the firmware stopped (battery brown-out or :meth:`halt`)."""
        return self._halted

    def halt(self) -> None:
        """Stop the firmware loops (power-off)."""
        self._halted = True
        self._main_task.stop()
        self._render_task.stop()

    def aim_distance_for_index(self, index: int) -> float:
        """Hand distance (cm) whose island selects entry ``index``.

        This is the *ground truth* aim point simulated users move to; it is
        also what a real user learns as the spatial position of an entry.
        Accounts for the current chunk — the caller must page to the right
        chunk first (see :meth:`chunk_of_index`).
        """
        size = self._effective_chunk_size()
        local = index - self._chunk * size
        slots = self.island_map.n_slots
        if not 0 <= local < slots:
            raise ValueError(
                f"entry {index} is not on chunk {self._chunk} "
                f"(local {local} outside 0..{slots - 1})"
            )
        slot = self._slot_for_local_index(local, slots)
        return self.island_map.center_distance(slot)

    def chunk_of_index(self, index: int) -> int:
        """Which chunk/page contains a global entry index."""
        return index // self._effective_chunk_size()

    def distance_tolerance_cm(self, index: int) -> float:
        """Half-width of the entry's island in distance terms (cm).

        The effective Fitts target width for this entry.
        """
        size = self._effective_chunk_size()
        local = index - self._chunk * size
        slot = self._slot_for_local_index(local, self.island_map.n_slots)
        return self.island_map.distance_tolerance(slot, self.board.distance_sensor)

    # ------------------------------------------------------------------
    # buttons
    # ------------------------------------------------------------------
    def _wire_buttons(self) -> None:
        buttons = self.board.buttons
        if "select" in buttons:
            buttons["select"].on_press = self._on_select
        if "back" in buttons:
            buttons["back"].on_press = self._on_back
        if "aux" in buttons:
            buttons["aux"].on_press = self._on_aux

    def _on_select(self) -> None:
        self._emit(ButtonEvent(time=self._sim.now, name="select", pressed=True))
        depth_before = self.cursor.depth
        activated = self.cursor.select()
        if activated is not None:
            path = self.cursor.breadcrumb + (activated.label,)
            self._emit(
                EntryActivated(
                    time=self._sim.now,
                    label=activated.label,
                    action=activated.action,
                    path=path,
                )
            )
        elif self.cursor.depth > depth_before:
            self._emit(
                SubmenuEntered(
                    time=self._sim.now,
                    label=self.cursor.current_level.label,
                    depth=self.cursor.depth,
                )
            )
            self._enter_level()
        self._display_dirty = True

    def _on_back(self) -> None:
        self._emit(ButtonEvent(time=self._sim.now, name="back", pressed=True))
        if self.cursor.back():
            self._emit(SubmenuLeft(time=self._sim.now, depth=self.cursor.depth))
            self._enter_level(keep_highlight=True)
        self._display_dirty = True

    def _on_aux(self) -> None:
        self._emit(ButtonEvent(time=self._sim.now, name="aux", pressed=True))
        self._advance_chunk(+1)

    # ------------------------------------------------------------------
    # level / chunk management
    # ------------------------------------------------------------------
    def _effective_chunk_size(self) -> int:
        n_entries = len(self.cursor.entries)
        if self.config.chunk_size == 0:
            return max(n_entries, 1)
        return min(self.config.chunk_size, max(n_entries, 1))

    def _enter_level(self, keep_highlight: bool = False) -> None:
        if keep_highlight:
            self._chunk = self.chunk_of_index(self.cursor.highlight)
        else:
            self._chunk = 0
        self._rebuild_islands()
        self._last_valid_code = None
        self._filter.reset()

    def _advance_chunk(self, step: int) -> None:
        chunks = self.n_chunks
        if chunks <= 1:
            return
        self._chunk = (self._chunk + step) % chunks
        size = self._effective_chunk_size()
        first = self._chunk * size
        self.cursor.set_highlight(first)
        self._rebuild_islands()
        self._emit(
            ChunkChanged(time=self._sim.now, chunk=self._chunk, n_chunks=chunks)
        )
        self._display_dirty = True

    def _mapping_sensor(self):
        """The curve the island table is computed from.

        Factory-calibrated devices use their own specimen's curve; an
        uncalibrated build must fall back to the generic datasheet part
        (ABL-CAL measures the difference).
        """
        if self.config.factory_calibrated:
            return self.board.distance_sensor
        from repro.sensors.gp2d120 import GP2D120

        return GP2D120(rng=None)

    def _rebuild_islands(self) -> None:
        self._confirmed_slot = None
        self._candidate_slot = None
        self._candidate_since = 0.0
        n_entries = len(self.cursor.entries)
        size = self._effective_chunk_size()
        first = self._chunk * size
        entries_on_chunk = min(size, n_entries - first)
        entries_on_chunk = max(entries_on_chunk, 1)
        self._island_map = build_island_map(
            self._mapping_sensor(),
            self.board.adc,
            entries_on_chunk,
            range_cm=self.config.range_cm,
            island_fill=self.config.island_fill,
            placement=self.config.placement,
        )
        # The island table lives in the PIC's RAM: 6 bytes per island.
        self.board.mcu.free("island-table")
        self.board.mcu.allocate(
            "island-table", ram_bytes=6 * self._island_map.n_slots
        )
        mapping_sensor = self._mapping_sensor()
        self._fast_threshold_code = self.board.adc.code_for_voltage(
            mapping_sensor.ideal_voltage(self.config.range_cm[0] - 0.45)
        )
        # Unlatch the fold-back hold only once the reading is clearly on
        # the usable branch again (shallow aliases stay above this code).
        self._reentry_code = self.board.adc.code_for_voltage(
            mapping_sensor.ideal_voltage(self.config.range_cm[0] + 1.5)
        )
        # A hand cannot move faster than ~150 cm/s; over one tick that
        # bounds how far the code can plausibly travel.
        self._max_plausible_delta = self._plausible_code_delta()

    def _plausible_code_delta(self) -> int:
        sensor = self.board.distance_sensor
        adc = self.board.adc
        near = self.config.range_cm[0]
        dt = self.config.firmware_period_s
        max_hand_speed_cm_s = 150.0
        travel = max_hand_speed_cm_s * dt
        code_here = adc.code_for_voltage(sensor.ideal_voltage(near))
        code_there = adc.code_for_voltage(sensor.ideal_voltage(near + travel))
        # Steepest part of the curve is at the near end; add noise headroom.
        return abs(code_here - code_there) + 24

    def _slot_for_local_index(self, local_index: int, n_slots: int) -> int:
        if self.config.direction is ScrollDirection.TOWARDS_SCROLLS_DOWN:
            return n_slots - 1 - local_index
        return local_index

    def _local_index_for_slot(self, slot: int, n_slots: int) -> int:
        if self.config.direction is ScrollDirection.TOWARDS_SCROLLS_DOWN:
            return n_slots - 1 - slot
        return slot

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._halted:
            return
        board = self.board
        now = self._sim.now
        self._service_faults(now)
        if board.battery.browned_out:
            plan = board.fault_plan
            if plan is not None and (
                plan.active_window(FaultKind.BATTERY_SAG, now) is not None
            ):
                # Fault-induced sag: the regulator dropped out but the cell
                # is fine.  Hold (skip the tick) and resume when it clears
                # rather than latching a permanent halt.
                if not self._brownout_holding:
                    self._brownout_holding = True
                    self.brownout_holds += 1
                    if self._obs is not None:
                        self._obs.counter("firmware.brownout.holds")
                return
            self.halt()
            return
        if self._brownout_holding:
            self._brownout_holding = False
            # Power came back: the signal chain must re-acquire and the
            # panels need a refresh.
            self._filter.reset()
            self._last_valid_code = None
            self._display_dirty = True
        mcu = board.mcu
        mcu.begin_tick()

        for button in board.buttons.values():
            button.poll(now)
            mcu.execute(_COST_BUTTON_POLL)

        self.raw_code = board.adc.sample(now, ADC_CHANNEL_DISTANCE)
        mcu.execute(_COST_ADC_SAMPLE)
        self.filtered_code = int(round(self._filter.update(self.raw_code)))
        mcu.execute(_COST_FILTER_PER_SAMPLE * self.config.smoothing_window)

        if self._fusion is not None:
            spare_code = board.adc.sample(now, ADC_CHANNEL_DISTANCE_SPARE)
            mcu.execute(_COST_ADC_SAMPLE + _COST_FUSION)
            self._process_code_fused(self.filtered_code, spare_code, now)
        else:
            self._process_code(self.filtered_code, now)
        mcu.execute(_COST_ISLAND_LOOKUP)

        period = self.config.firmware_period_s
        mcu.consume_power(period)
        board.battery.draw(_DISPLAY_CURRENT_MA, period)
        if self._obs is not None:
            self._record_tick_obs(now)

    def _record_tick_obs(self, now: float) -> None:
        """Emit the per-stage spans and histograms for one main-loop tick.

        Sim time does not advance *inside* a tick — all the stage work is
        charged to the MCU cycle budget — so span durations here are the
        modeled stage costs converted through the MCU's instruction rate.
        Stages are laid out back to back from the tick's start time,
        which is exactly the budget accounting the C firmware would show
        on a logic analyzer.
        """
        obs = self._obs
        assert obs is not None
        plan = self._tick_obs_plan
        if plan is None:
            plan = self._tick_obs_plan = self._build_tick_obs_plan(obs)
        stage_rows, tick_attrs, tick_hist, total_f, battery_gauge = plan
        cursor = now
        obs.begin_span("firmware.tick", now)
        for span_name, duration, attrs, items, hist, cycles_f in stage_rows:
            end = cursor + duration
            obs.emit_span_static(span_name, cursor, end, attrs, items)
            hist.observe(cycles_f)
            cursor = end
        obs.end_span(cursor, tick_attrs)
        tick_hist.observe(total_f)
        battery_gauge.set(self.board.battery.terminal_voltage(), now)

    def _build_tick_obs_plan(self, obs: Recorder) -> "_TickObsPlan":
        """Precompute the per-stage span names, durations and instruments.

        The stage cycle costs depend only on the board layout and firmware
        config, both fixed after construction, so the f-string name
        formatting, attr dicts and registry lookups need to happen once —
        not on every tick.  Durations are accumulated back into ``now``
        per tick with the same ``cursor + duration`` op sequence as the
        unrolled loop, keeping exported trace bytes identical.
        """
        fused = self._fusion is not None
        stages = (
            ("buttons", _COST_BUTTON_POLL * len(self.board.buttons)),
            ("adc", _COST_ADC_SAMPLE * (2 if fused else 1)),
            ("filter", _COST_FILTER_PER_SAMPLE * self.config.smoothing_window),
            ("fusion", _COST_FUSION if fused else 0),
            ("island-lookup", _COST_ISLAND_LOOKUP),
        )
        mips = self.board.mcu.params.mips
        rows: list[_TickObsStage] = []
        total = 0
        for stage, cycles in stages:
            if cycles == 0:
                continue
            total += cycles
            attrs = {"cycles": cycles}
            rows.append(
                (
                    f"firmware.tick.{stage}",
                    cycles / mips,
                    attrs,
                    tuple(sorted(attrs.items())),
                    obs.metrics.histogram(
                        f"firmware.stage.{stage}.cycles", low=1.0, high=1e6
                    ),
                    float(cycles),
                )
            )
        return (
            rows,
            {"cycles": total},
            obs.metrics.histogram("firmware.tick.cycles", low=1.0, high=1e6),
            float(total),
            obs.metrics.gauge("firmware.battery.volts"),
        )

    def _process_code(self, code: int, now: float) -> None:
        # Fold-back / fast-scroll region: codes steeper than anything the
        # usable range produces.
        if code > self._fast_threshold_code:
            if not self._foldback_latch and self._obs is not None:
                self._obs.counter("firmware.foldback.latches")
            self._foldback_latch = True
            if self.config.fast_scroll_enabled:
                self._fast_active = True
                self._fast_accumulator += self.config.firmware_period_s
                step_period = 1.0 / self.config.fast_scroll_rate_hz
                while self._fast_accumulator >= step_period:
                    self._fast_accumulator -= step_period
                    self._fast_step(now)
            return
        if self._foldback_latch:
            # The device crossed the voltage peak: readings below the
            # threshold may be fold-back aliases (< 4 cm looks like a far
            # distance).  Hold the selection until the reading is clearly
            # back on the usable branch (§4.2: the ambiguity "can be
            # tolerated" because the firmware simply freezes through it).
            if code > self._reentry_code:
                return
            self._foldback_latch = False
            self._last_valid_code = None  # re-acquire cleanly
        if self._fast_active:
            self._fast_active = False
            self._fast_accumulator = 0.0
            self._last_valid_code = None  # re-acquire after the gesture

        # Plausibility gate against fold-back aliases: a reading that
        # teleports further than a hand can move is held until confirmed.
        if (
            self._last_valid_code is not None
            and abs(code - self._last_valid_code) > self._max_plausible_delta
        ):
            self._suspicious_streak += 1
            if self._obs is not None:
                self._obs.counter("firmware.plausibility.rejections")
            if self._suspicious_streak < 3:
                return
        self._suspicious_streak = 0
        self._last_valid_code = code
        self._apply_slot_lookup(code, now)

    def _apply_slot_lookup(self, code: int, now: float) -> None:
        """Map a trusted code through the islands to the highlight."""
        slot = self.island_map.lookup(code)
        self.current_slot = slot
        if slot is None:
            self._candidate_slot = None
            return  # in a gap: selection unchanged, by design
        # Selection debounce: a *different* island must persist across
        # ``confirm_samples`` independent sensor measurement cycles before
        # the highlight moves.  (The GP2D120 holds its output for ~38 ms,
        # so counting firmware ticks would double-count one measurement —
        # the confirmation window is expressed in sensor-cycle time.)
        if slot != getattr(self, "_confirmed_slot", None):
            cycle = self.board.distance_sensor.params.cycle_time_s
            needed = self.config.confirm_samples * cycle
            if slot != getattr(self, "_candidate_slot", None):
                self._candidate_slot = slot
                self._candidate_since = now
            if now - self._candidate_since < needed - 1e-9:
                return
            self._confirmed_slot = slot
            self._candidate_slot = None
            if self._obs is not None:
                self._obs.counter("firmware.debounce.confirmations")
        n_slots = self.island_map.n_slots
        local = self._local_index_for_slot(slot, n_slots)
        size = self._effective_chunk_size()
        index = self._chunk * size + local
        index = min(index, len(self.cursor.entries) - 1)
        previous = self.cursor.highlight
        if self.cursor.set_highlight(index):
            self._display_dirty = True
            self._emit(
                HighlightChanged(
                    time=now,
                    index=self.cursor.highlight,
                    label=self.cursor.highlighted_entry.label,
                    previous_index=previous,
                )
            )

    def _process_code_fused(self, code: int, spare_code: int, now: float) -> None:
        """Dual-sensor decision path: fusion replaces the fold-back latch.

        The recessed sensor vouches for (or vetoes) the primary reading:
        a confirmed fold-back freezes the selection (or drives the
        fast-scroll gesture); a consistent pair goes straight to the
        island lookup with no latch heuristics.
        """
        assert self._fusion is not None
        lsb = self.board.adc.params.lsb_volts
        fused = self._fusion.fuse_voltages(code * lsb, spare_code * lsb)
        if not fused.valid:
            return  # nothing in front of either sensor: hold selection
        if fused.in_foldback:
            if self.config.fast_scroll_enabled:
                self._fast_active = True
                self._fast_accumulator += self.config.firmware_period_s
                step_period = 1.0 / self.config.fast_scroll_rate_hz
                while self._fast_accumulator >= step_period:
                    self._fast_accumulator -= step_period
                    self._fast_step(now)
            return
        if self._fast_active:
            self._fast_active = False
            self._fast_accumulator = 0.0
        # Near-peak codes above the mapped span also drive fast-scroll,
        # mirroring the single-sensor gesture region.
        if code > self._fast_threshold_code:
            if self.config.fast_scroll_enabled:
                self._fast_active = True
                self._fast_accumulator += self.config.firmware_period_s
                step_period = 1.0 / self.config.fast_scroll_rate_hz
                while self._fast_accumulator >= step_period:
                    self._fast_accumulator -= step_period
                    self._fast_step(now)
            return
        self._apply_slot_lookup(code, now)

    def _fast_step(self, now: float) -> None:
        """One fast-scroll increment toward the near-end of the list."""
        direction = (
            +1
            if self.config.direction is ScrollDirection.TOWARDS_SCROLLS_DOWN
            else -1
        )
        previous = self.cursor.highlight
        target = previous + direction
        n_entries = len(self.cursor.entries)
        if 0 <= target < n_entries:
            if self.chunk_of_index(target) != self._chunk:
                self._advance_chunk(direction)
                self.cursor.set_highlight(target)
            else:
                self.cursor.set_highlight(target)
            self._display_dirty = True
            if self._obs is not None:
                self._obs.counter("firmware.fastscroll.steps")
            self._emit(
                FastScroll(time=now, index=self.cursor.highlight, step=direction)
            )

    # ------------------------------------------------------------------
    # display rendering
    # ------------------------------------------------------------------
    def _on_rf_packet(self, packet) -> None:
        """Handle a downlink command from the host PC.

        Protocol (mirrors the trivial line protocol of the original
        Smart-Its host tools): ``SHOW:<text>`` displays an instruction on
        the bottom panel; ``CLEAR`` restores the debug/state view.
        """
        payload = packet.payload
        if payload.startswith(b"SHOW:"):
            text = payload[5:].decode("latin-1", errors="replace")
            self._host_message = _wrap_lines(text)
            self._display_dirty = True
        elif payload == b"CLEAR":
            self._host_message = None
            self._display_dirty = True

    def _render_if_dirty(self) -> None:
        if self._halted or self._brownout_holding:
            return
        now = self._sim.now
        # Display watchdog: a controller reset blanks the panel without the
        # firmware issuing anything — detect it and schedule a re-render.
        board = self.board
        resets = board.display_top.resets + board.display_bottom.resets
        if resets != self._seen_display_resets:
            self._seen_display_resets = resets
            self._display_dirty = True
            self.display_watchdog_rerenders += 1
            plan = board.fault_plan
            if plan is not None:
                self._record_recovery_for_kind(
                    FaultKind.DISPLAY_RESET, now, "watchdog-rerender"
                )
        if not self._display_dirty or now < self._render_retry_at:
            return
        self._display_dirty = False
        try:
            self._render_menu()
            if self._host_message is not None:
                self._write_bottom(self._host_message)
            elif self.config.debug_display:
                self._render_debug()
            else:
                self._render_state()
        except I2CError:
            # Bus trouble survived the bus-level retries: keep the frame
            # dirty and come back with exponential backoff, as the C
            # firmware's display task does.
            self.i2c_render_failures += 1
            if self._obs is not None:
                self._obs.counter("firmware.render.failures")
            self._display_dirty = True
            self._render_backoff_s = min(
                max(2.0 * self._render_backoff_s,
                    2.0 / self.config.display_refresh_hz),
                0.8,
            )
            self._render_retry_at = now + self._render_backoff_s
            return
        if self._render_backoff_s > 0.0:
            # A full frame landed after one or more failed attempts.
            self.i2c_render_recoveries += 1
            if self._obs is not None:
                self._obs.counter("firmware.render.recoveries")
            self._record_recovery_for_kind(
                FaultKind.I2C_ERROR, now, "render-retry-backoff"
            )
            self._render_backoff_s = 0.0
            self._render_retry_at = -math.inf

    def _record_recovery_for_kind(
        self, kind: FaultKind, now: float, action: str
    ) -> None:
        """Publish a firmware recovery against the active window, if any."""
        plan = self.board.fault_plan
        if plan is None:
            return
        hit = plan.active_window(kind, now)
        if hit is not None:
            plan.record_recovery(hit[0], now, action)

    def _service_faults(self, now: float) -> None:
        """Close out expired fault windows with their recovery actions.

        Every :class:`~repro.faults.FaultWindow` is paired with a recovery
        here: signal-path faults re-acquire the filter and plausibility
        state, and every recovery forces a display refresh so the user
        never looks at stale state.
        """
        plan = self.board.fault_plan
        if plan is None:
            return
        for window_id, window in plan.expired_windows(now):
            if window.kind in (
                FaultKind.ADC_GLITCH,
                FaultKind.ADC_STUCK,
                FaultKind.SENSOR_OCCLUSION,
                FaultKind.SENSOR_DROPOUT,
            ):
                self._filter.reset()
                self._last_valid_code = None
                self._foldback_latch = False
                self._suspicious_streak = 0
            self._display_dirty = True
            plan.record_recovery(window_id, now, "window-cleared")

    def _menu_window(self) -> tuple[int, list[tuple[bool, str]]]:
        """The TEXT_LINES-entry window around the highlight."""
        entries = self.cursor.entries
        highlight = self.cursor.highlight
        first = max(0, min(highlight - TEXT_LINES // 2, len(entries) - TEXT_LINES))
        rows = []
        for i in range(first, min(first + TEXT_LINES, len(entries))):
            rows.append((i == highlight, entries[i].label))
        return first, rows

    def _render_menu(self) -> None:
        from repro.hardware.board import I2C_ADDR_DISPLAY_TOP

        _, rows = self._menu_window()
        mcu = self.board.mcu
        for line in range(TEXT_LINES):
            if line < len(rows):
                marker = ">" if rows[line][0] else " "
                text = f"{marker}{rows[line][1]}"
            else:
                text = ""
            self.board.i2c.write(
                I2C_ADDR_DISPLAY_TOP, BT96040.encode_line(line, text)
            )
            mcu.execute(_COST_DISPLAY_LINE)

    def _render_debug(self) -> None:
        from repro.hardware.board import I2C_ADDR_DISPLAY_BOTTOM

        slot = self.current_slot if self.current_slot is not None else "-"
        lines = [
            f"raw {self.raw_code:4d}",
            f"flt {self.filtered_code:4d}",
            f"slot {slot}",
            f"chk {self._chunk + 1}/{self.n_chunks}",
            f"dep {self.cursor.depth}",
        ]
        self._write_bottom(lines)

    def _render_state(self) -> None:
        from repro.hardware.board import I2C_ADDR_DISPLAY_BOTTOM  # noqa: F401

        crumb = ">".join(self.cursor.breadcrumb[-2:]) or "(top)"
        lines = [
            crumb,
            f"{self.cursor.highlight + 1}/{len(self.cursor.entries)}",
            f"page {self._chunk + 1}/{self.n_chunks}",
            "",
            "",
        ]
        self._write_bottom(lines)

    def _write_bottom(self, lines: list[str]) -> None:
        from repro.hardware.board import I2C_ADDR_DISPLAY_BOTTOM

        mcu = self.board.mcu
        for line in range(TEXT_LINES):
            text = lines[line] if line < len(lines) else ""
            self.board.i2c.write(
                I2C_ADDR_DISPLAY_BOTTOM, BT96040.encode_line(line, text)
            )
            mcu.execute(_COST_DISPLAY_LINE)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _emit(self, event: InteractionEvent) -> None:
        for listener in list(self._listeners):
            listener(event)
        if self.board.rf_device.send(event.to_bytes()):
            self.board.mcu.execute(_COST_RF_PACKET)
            self.board.battery.draw(_RF_PULSE_MA, _RF_PULSE_S)


def _wrap_lines(text: str, width: int = 16, max_lines: int = TEXT_LINES) -> list[str]:
    """Word-wrap host text into display lines."""
    words = text.split()
    lines: list[str] = []
    current = ""
    for word in words:
        candidate = f"{current} {word}".strip()
        if len(candidate) <= width:
            current = candidate
        else:
            lines.append(current)
            current = word
        if len(lines) == max_lines:
            return lines
    if current:
        lines.append(current)
    return lines

"""The run-scoped recorder: metrics plus nestable sim-time spans.

One :class:`Recorder` collects everything observable about one run (or
one shard of one run): a :class:`~repro.obs.metrics.MetricRegistry` and
a flat list of completed spans.  Instrumented components never hold a
recorder reference of their own — they ask :func:`active_recorder` at
construction time and cache either the real instrument or ``None``:

.. code-block:: python

    recorder = active_recorder()
    self._obs_events = (
        recorder.metrics.counter("kernel.events.dispatched")
        if recorder.enabled
        else None
    )
    ...
    if self._obs_events is not None:   # ~2 ns when observability is off
        self._obs_events.inc()

The default active recorder is :data:`NULL_RECORDER`, whose ``enabled``
flag is ``False`` — so by default every hot path reduces to a cached
``is not None`` check and the perf gate (`repro bench --check`) sees no
measurable cost.

Spans are sim-time intervals.  Nothing here reads a wall clock: span
start/end times are passed in by the caller (usually ``sim.now``, or a
modeled duration derived from MCU cycle costs for work that happens
"inside" a single tick).  Completed spans are mirrored onto the
registered ``SPANS`` trace channel when a tracer is attached, so the
existing trace-determinism tests cover them too.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.sim import channels
from repro.sim.trace import Tracer

from .metrics import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "active_recorder",
    "set_active_recorder",
    "use_recorder",
    "span",
]

def _clean_attrs(attrs: Optional[dict[str, Any]]) -> dict[str, Any]:
    if not attrs:
        return {}
    if len(attrs) == 1:
        # A single-key dict is trivially sorted; skip the sort.
        return dict(attrs)
    return {key: attrs[key] for key in sorted(attrs)}


class Recorder:
    """Collects metrics and spans for one observed run.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` to mirror completed
        spans onto (channel ``spans``).  A device run attaches its own
        tracer via :meth:`attach_tracer` so spans ride the existing
        trace serialization.
    """

    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.metrics = MetricRegistry()
        self.spans: list[dict[str, Any]] = []
        self._stack: list[tuple[str, float, dict[str, Any]]] = []
        self._tracer = tracer
        # Per-kind instrument caches for the name-keyed conveniences
        # below: the registry's _get does a dict lookup plus an
        # isinstance kind check, which shows up when a hot loop calls
        # recorder.counter()/observe() by name every tick.  The caches
        # skip both once a name has been seen; kind-mismatch errors
        # still fire on first use because the cache is per kind.
        self._counter_cache: dict[str, Counter] = {}
        self._gauge_cache: dict[str, Gauge] = {}
        self._histogram_cache: dict[str, Histogram] = {}

    # -- wiring ---------------------------------------------------------

    def attach_tracer(self, tracer: Tracer) -> None:
        """Mirror completed spans onto ``tracer``'s ``spans`` channel."""
        self._tracer = tracer

    # -- metric conveniences -------------------------------------------

    def counter(self, name: str, n: int = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        counter = self._counter_cache.get(name)
        if counter is None:
            counter = self.metrics.counter(name)
            self._counter_cache[name] = counter
        counter.inc(n)

    def gauge(self, name: str, value: float, time: float) -> None:
        """Set the gauge ``name`` to ``value`` at sim ``time``."""
        gauge = self._gauge_cache.get(name)
        if gauge is None:
            gauge = self.metrics.gauge(name)
            self._gauge_cache[name] = gauge
        gauge.set(value, time)

    def observe(
        self,
        name: str,
        value: float,
        low: float = 1e-7,
        high: float = 1e3,
        bins_per_decade: int = 3,
    ) -> None:
        """Record ``value`` into the histogram ``name``.

        The ``(low, high, bins_per_decade)`` spec applies on first use
        of ``name`` only, exactly as in the underlying registry.
        """
        histogram = self._histogram_cache.get(name)
        if histogram is None:
            histogram = self.metrics.histogram(
                name, low=low, high=high, bins_per_decade=bins_per_decade
            )
            self._histogram_cache[name] = histogram
        histogram.observe(value)

    # -- spans ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current span nesting depth."""
        return len(self._stack)

    def begin_span(
        self,
        name: str,
        start: float,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """Open a span at sim time ``start``; close with :meth:`end_span`."""
        self._stack.append((name, float(start), _clean_attrs(attrs)))

    def end_span(
        self, end: float, attrs: Optional[dict[str, Any]] = None
    ) -> None:
        """Close the innermost open span at sim time ``end``."""
        if not self._stack:
            raise RuntimeError("end_span with no open span")
        name, start, opened = self._stack.pop()
        if attrs:
            opened.update(_clean_attrs(attrs))
        self._finish(name, start, float(end), len(self._stack), opened)

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """Record an already-complete span (child of any open span)."""
        self._finish(
            name, float(start), float(end), len(self._stack),
            _clean_attrs(attrs),
        )

    def emit_span_static(
        self,
        name: str,
        start: float,
        end: float,
        attrs: dict[str, Any],
        attr_items: tuple[tuple[str, Any], ...],
    ) -> None:
        """Like :meth:`emit_span` for precomputed instrumentation plans.

        The caller supplies ``attrs`` already key-sorted plus its
        ``tuple(sorted(attrs.items()))`` form, and promises never to
        mutate either — the same objects are stored by reference on
        every call, skipping the per-span dict copy and sort that
        :meth:`emit_span` pays.  Output is byte-identical to
        ``emit_span(name, start, end, attrs)``.
        """
        if end < start:
            raise ValueError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        depth = len(self._stack)
        self.spans.append(
            {
                "name": name,
                "start": start,
                "end": end,
                "depth": depth,
                "attrs": attrs,
            }
        )
        if self._tracer is not None:
            self._tracer.record(
                channels.SPANS, start, (name, end, depth, attr_items)
            )

    def _finish(
        self,
        name: str,
        start: float,
        end: float,
        depth: int,
        attrs: dict[str, Any],
    ) -> None:
        if end < start:
            raise ValueError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        record = {
            "name": name,
            "start": start,
            "end": end,
            "depth": depth,
            "attrs": attrs,
        }
        self.spans.append(record)
        if self._tracer is not None:
            self._tracer.record(
                channels.SPANS,
                start,
                (name, end, depth, tuple(sorted(attrs.items()))),
            )

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], float],
        **attrs: Any,
    ) -> Iterator[None]:
        """Span the enclosed block, reading sim time from ``clock``.

        ``clock`` is any zero-argument callable returning the current
        sim time — typically ``lambda: sim.now``.  It is read once on
        entry and once on exit; nothing inside may touch a wall clock.
        """
        self.begin_span(name, clock(), attrs)
        try:
            yield
        finally:
            self.end_span(clock())

    # -- snapshots ------------------------------------------------------

    def record_snapshot(self, tracer: Tracer, time: float) -> None:
        """Publish the full metric snapshot on the ``metrics`` channel."""
        tracer.record(channels.METRICS, time, self.metrics.snapshot())

    def payload(self) -> dict[str, Any]:
        """The JSON-safe observability payload for one run/shard."""
        return {
            "version": SNAPSHOT_VERSION,
            "metrics": self.metrics.snapshot(),
            "spans": list(self.spans),
        }


class NullRecorder:
    """The default, disabled recorder: every operation is a no-op.

    ``enabled`` is ``False`` so instrumented components cache ``None``
    instead of instruments and skip all bookkeeping; the no-op methods
    below exist so code that *does* hold a recorder reference (e.g. a
    context manager built before the check) still works.
    """

    enabled = False
    metrics: Optional[MetricRegistry] = None
    spans: list[dict[str, Any]] = []

    def attach_tracer(self, tracer: Tracer) -> None:
        """No-op."""

    def counter(self, name: str, n: int = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: float, time: float) -> None:
        """No-op."""

    def observe(
        self,
        name: str,
        value: float,
        low: float = 1e-7,
        high: float = 1e3,
        bins_per_decade: int = 3,
    ) -> None:
        """No-op."""

    def begin_span(
        self,
        name: str,
        start: float,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """No-op."""

    def end_span(
        self, end: float, attrs: Optional[dict[str, Any]] = None
    ) -> None:
        """No-op."""

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """No-op."""

    def emit_span_static(
        self,
        name: str,
        start: float,
        end: float,
        attrs: dict[str, Any],
        attr_items: tuple[tuple[str, Any], ...],
    ) -> None:
        """No-op."""

    @contextmanager
    def span(
        self,
        name: str,
        clock: Callable[[], float],
        **attrs: Any,
    ) -> Iterator[None]:
        """No-op context manager (does not even read the clock)."""
        yield

    def record_snapshot(self, tracer: Tracer, time: float) -> None:
        """No-op."""


#: The process-wide default recorder (observability off).
NULL_RECORDER = NullRecorder()

_active: Recorder | NullRecorder = NULL_RECORDER


def active_recorder() -> Recorder | NullRecorder:
    """The recorder new components should report to.

    Components read this once at construction and cache the result (or
    ``None`` when disabled); swapping the active recorder mid-run is
    deliberately unsupported.
    """
    return _active


def set_active_recorder(
    recorder: Recorder | NullRecorder,
) -> Recorder | NullRecorder:
    """Install ``recorder`` as active; returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def use_recorder(recorder: Recorder | NullRecorder) -> Iterator[None]:
    """Make ``recorder`` active for the enclosed block.

    This is how an observed run is delimited: build the components
    inside the block so they bind to the recorder at construction.
    """
    previous = set_active_recorder(recorder)
    try:
        yield
    finally:
        set_active_recorder(previous)


@contextmanager
def span(
    name: str, clock: Callable[[], float], **attrs: Any
) -> Iterator[None]:
    """``with obs.span("firmware.tick", lambda: sim.now):`` convenience.

    Delegates to the *currently* active recorder; a no-op when
    observability is off.
    """
    with active_recorder().span(name, clock, **attrs):
        yield

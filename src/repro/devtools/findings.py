"""The unit of lint output: one :class:`Finding` per violated invariant."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class Severity(enum.Enum):
    """How hard a finding fails the build."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule id, e.g. ``"REP001"``.
    path:
        Posix-style path of the offending file, relative to the linted
        tree root (so findings are stable across checkouts).
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation.
    severity:
        :class:`Severity` — baselined or warning findings never fail.
    snippet:
        The stripped source line.  Baseline matching keys on
        ``(rule, path, snippet, occurrence)`` rather than the line
        number, so a grandfathered finding survives unrelated edits
        above it.
    occurrence:
        0-based index among findings of the same ``(rule, path,
        snippet)`` within one run, assigned in line order by the
        engine.  Disambiguates identical source lines (two
        ``time.perf_counter()`` reads in one file) so baseline matching
        is one-to-one instead of one-suppresses-all.
    suppressed:
        Set by the engine when a committed baseline entry matches.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    snippet: str = ""
    occurrence: int = 0
    suppressed: bool = field(default=False, compare=False)

    def key(self) -> tuple[str, str, str, int]:
        """Identity used for baseline matching (line-number independent)."""
        return (self.rule, self.path, self.snippet, self.occurrence)

    def location(self) -> str:
        """``path:line:col`` for terminal output."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (schema pinned by the report tests)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "snippet": self.snippet,
            "occurrence": self.occurrence,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            severity=Severity(data["severity"]),
            snippet=str(data["snippet"]),
            occurrence=int(data.get("occurrence", 0)),
            suppressed=bool(data.get("suppressed", False)),
        )

    def with_suppressed(self, suppressed: bool) -> "Finding":
        """Copy with the ``suppressed`` flag set (findings are frozen)."""
        return Finding(
            rule=self.rule,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            severity=self.severity,
            snippet=self.snippet,
            occurrence=self.occurrence,
            suppressed=suppressed,
        )

    def with_occurrence(self, occurrence: int) -> "Finding":
        """Copy with the occurrence index set (assigned by the engine)."""
        return Finding(
            rule=self.rule,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            severity=self.severity,
            snippet=self.snippet,
            occurrence=occurrence,
            suppressed=self.suppressed,
        )

"""REP007 — float accumulation and elementwise pow determinism.

Two hazards that PR 4 and PR 6 each paid for in postmortem time:

* **Naive float accumulation in result-producing code.**  ``sum()``
  over floats is order-dependent, so shard merges stop being
  associative and ``--jobs 1 != --jobs N``.  PR 6 introduced the exact
  integer accumulators in ``analysis/stats.py`` (``StreamingMoments``)
  precisely so merges are byte-identical; result-producing modules
  (``experiments/``, ``host/``, ``analysis/``) must route float sums
  through them (or ``math.fsum`` for a fixed, documented order).
  Integer counting idioms (``sum(1 for ...)``, ``sum(x > t ...)``) are
  exact and stay allowed.

* **Elementwise ``**`` / ``np.power`` on arrays in fast paths.**
  numpy's SIMD pow differs from libm's scalar pow by 1 ulp on some
  inputs (found by hypothesis in PR 4), so a vectorized fast path using
  array pow silently diverges from its scalar oracle.  Fast-path
  modules (``sensors/``, ``signal/``, ``core/``) must keep pow
  per-element — or carry an inline justification.

Escape hatch: ``# reprolint: allow REP007 (reason)`` on the flagged
line or the line above — the reason is mandatory.
"""

from __future__ import annotations

import ast

from repro.devtools.base import Rule, attribute_chain

__all__ = ["FloatDeterminismRule"]

#: Result-producing scopes where order-dependent float sums are flagged.
_SUM_PREFIXES = ("experiments", "host", "analysis")
#: Fast-path scopes where array pow is flagged.
_POW_PREFIXES = ("sensors", "signal", "core")


def _under(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        path == prefix or path.startswith(prefix + "/")
        for prefix in prefixes
    )


def _is_int_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


def _counting_element(node: ast.AST) -> bool:
    """Elements whose sum is exact: int literals, comparisons, bools."""
    if _is_int_literal(node):
        return True
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True
    if isinstance(node, ast.Call):
        chain = attribute_chain(node.func)
        if chain and chain[-1] in ("len", "int"):
            return True
    if isinstance(node, ast.IfExp):
        return _counting_element(node.body) and _counting_element(node.orelse)
    return False


def _numpy_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attribute_chain(node.func)
    return len(chain) >= 2 and chain[0] in ("np", "numpy")


def _arrayish(node: ast.AST, _depth: int = 0) -> bool:
    """Syntactically certain to be a numpy array (conservative)."""
    if _depth > 4:
        return False
    if _numpy_call(node):
        return True
    if isinstance(node, ast.BinOp):
        return _arrayish(node.left, _depth + 1) or _arrayish(
            node.right, _depth + 1
        )
    if isinstance(node, ast.UnaryOp):
        return _arrayish(node.operand, _depth + 1)
    return False


class FloatDeterminismRule(Rule):
    """Flag order-dependent float sums and fast-path array pow."""

    rule_id = "REP007"
    title = "float sums go through exact accumulators; fast-path pow stays per-element"
    exempt_paths = ("analysis/stats.py",)  # the exact accumulators themselves
    supports_waiver = True
    rationale = (
        "`sum()` over floats is evaluation-order dependent, so shard merges"
        " stop being associative and `--jobs 1 != --jobs N` (the PR 6"
        " hazard); `analysis/stats.py` exists to make accumulation exact."
        "  numpy's SIMD `**`/`np.power` differs from scalar libm pow by"
        " 1 ulp on some inputs (the PR 4 hazard), so array pow in a fast"
        " path silently diverges from its scalar oracle."
    )
    example = (
        "mean_ms = sum(trial_times) / len(trial_times)"
        "  # order-dependent float sum in experiments/"
    )
    escape_hatch = (
        "Route the accumulation through `analysis/stats.py`"
        " (`StreamingMoments`) or `math.fsum`; for a deliberate fixed-order"
        " sum add `# reprolint: allow REP007 (reason)` on the flagged line."
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not super().applies_to(path):
            return False
        return _under(path, _SUM_PREFIXES) or _under(path, _POW_PREFIXES)

    # ------------------------------------------------------------------
    # order-dependent float sums
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and _under(self.context.path, _SUM_PREFIXES)
            and node.args
        ):
            argument = node.args[0]
            element = (
                argument.elt
                if isinstance(
                    argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                )
                else None
            )
            if element is None or not _counting_element(element):
                self.report(
                    node,
                    "order-dependent float `sum()` in a result-producing"
                    " module: use the exact accumulators in"
                    " analysis/stats.py (StreamingMoments) or math.fsum,"
                    " or waive with a reason if the order is fixed by"
                    " construction",
                )
        chain = attribute_chain(node.func)
        if (
            len(chain) >= 2
            and chain[0] in ("np", "numpy")
            and chain[-1] in ("power", "float_power")
            and _under(self.context.path, _POW_PREFIXES)
        ):
            self.report(
                node,
                f"`{'.'.join(chain)}` is SIMD pow (1-ulp divergence from"
                " scalar libm, the PR 4 hazard): keep pow per-element in"
                " fast paths or waive with a per-element justification",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # array pow in fast paths
    # ------------------------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Pow)
            and _under(self.context.path, _POW_PREFIXES)
            and _arrayish(node.left)
        ):
            self.report(
                node,
                "array `**` in a fast path is SIMD pow (1-ulp divergence"
                " from scalar libm): compute pow per-element or waive with"
                " a justification",
            )
        self.generic_visit(node)

"""The island mapping between sensor values and menu entries (§4.2).

This is the algorithmic heart of the paper.  Because "the sensor values
are not linear in the measurement range", a naive linear mapping from
sensor value to entry would cram many entries into a small hand movement
near the body and stretch few entries over a large movement far away.  The
authors instead:

1. choose how many entities lie in the data structure,
2. distribute the entities *equally over the scrollable distance*,
3. compute the expected sensor value for each entity's distance by
   inserting it into the fitted sensor function (Figure 5),
4. define **islands** around those computed values — intervals in which
   the entity is selected — that "do not cover the complete spectrum of
   possible values": between islands no selection changes, which both
   debounces the selection and gives "the perception that the entries are
   equally spaced on the complete scrollable distance".

:func:`build_island_map` implements exactly that construction against the
simulated GP2D120 + ADC chain; alternative :class:`Placement` strategies
exist for the ablation benchmarks (what happens *without* the paper's
design choices).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.hardware.adc import ADC
from repro.sensors.gp2d120 import GP2D120

__all__ = ["Placement", "Island", "IslandMap", "build_island_map"]


class Placement(Enum):
    """How entry positions are distributed over the sensor range."""

    #: The paper's design: equal spacing in *distance*, islands with gaps.
    EQUAL_DISTANCE = "equal-distance"
    #: Naive linear mapping in raw sensor value (ablation): equal spacing
    #: in ADC code, so perceived spacing is badly non-uniform.
    EQUAL_CODE = "equal-code"
    #: Equal distance spacing but islands abut with no gaps (ablation):
    #: boundary readings flicker between entries.
    FULL_COVERAGE = "full-coverage"


@dataclass(frozen=True)
class Island:
    """One selection interval in raw-ADC-code space.

    Attributes
    ----------
    slot:
        Position index, 0 = nearest to the body (lowest distance of the
        usable range, i.e. the *highest* codes).
    code_low, code_high:
        Inclusive ADC code interval selecting this slot.
    center_code:
        The computed expected code at the slot's center distance.
    center_distance_cm:
        The distance the slot was placed at.
    """

    slot: int
    code_low: int
    code_high: int
    center_code: int
    center_distance_cm: float

    def __post_init__(self) -> None:
        if self.code_low > self.code_high:
            raise ValueError(
                f"island {self.slot}: code_low {self.code_low} > "
                f"code_high {self.code_high}"
            )

    @property
    def width_codes(self) -> int:
        """Number of ADC codes the island spans."""
        return self.code_high - self.code_low + 1

    def contains(self, code: int) -> bool:
        """Whether a raw code falls inside this island."""
        return self.code_low <= code <= self.code_high


class IslandMap:
    """An ordered set of islands with O(log n) code lookup.

    Slots are ordered by distance (slot 0 nearest the body); since the
    sensor output falls with distance, slot 0 owns the highest codes.
    """

    def __init__(self, islands: list[Island], placement: Placement) -> None:
        if not islands:
            raise ValueError("an island map needs at least one island")
        self.placement = placement
        self.islands = sorted(islands, key=lambda isl: isl.code_low)
        self._lows = [isl.code_low for isl in self.islands]
        self._by_slot = {isl.slot: isl for isl in self.islands}
        if len(self._by_slot) != len(self.islands):
            raise ValueError("duplicate slot numbers in island map")
        for earlier, later in zip(self.islands, self.islands[1:]):
            if earlier.code_high >= later.code_low:
                raise ValueError(
                    f"islands overlap: slot {earlier.slot} "
                    f"[{earlier.code_low},{earlier.code_high}] and slot "
                    f"{later.slot} [{later.code_low},{later.code_high}]"
                )

    def __len__(self) -> int:
        return len(self.islands)

    @property
    def n_slots(self) -> int:
        """Number of selectable positions."""
        return len(self.islands)

    def lookup(self, code: int) -> Optional[int]:
        """Slot owning ``code``, or ``None`` when the code lies in a gap.

        ``None`` is the mechanism behind "no selection or change happens if
        the device is held in a distance between two of those islands":
        the firmware simply keeps the previous selection.
        """
        i = bisect.bisect_right(self._lows, code) - 1
        if i < 0:
            return None
        island = self.islands[i]
        return island.slot if island.contains(code) else None

    def island_for_slot(self, slot: int) -> Island:
        """The island of a given slot."""
        try:
            return self._by_slot[slot]
        except KeyError:
            raise KeyError(f"no island for slot {slot}") from None

    def center_distance(self, slot: int) -> float:
        """Distance (cm) at the center of a slot — the user's aim point."""
        return self.island_for_slot(slot).center_distance_cm

    def distance_tolerance(self, slot: int, sensor: GP2D120) -> float:
        """Half-width of the slot in *distance* terms (cm).

        How far the hand may stray from the aim point while staying inside
        the island; this is the effective target width ``W`` for Fitts's
        law analysis of the technique.
        """
        island = self.island_for_slot(slot)
        lsb = 5.0 / 1024.0  # approximate; exact value irrelevant for tolerance
        v_low = island.code_low * lsb
        v_high = (island.code_high + 1) * lsb
        try:
            d_far = sensor.distance_for_voltage(max(v_low, 1e-6))
            d_near = sensor.distance_for_voltage(v_high)
        except ValueError:
            return 0.0
        return abs(d_far - d_near) / 2.0

    def coverage_fraction(self) -> float:
        """Fraction of the mapped code span covered by islands (not gaps)."""
        total = self.islands[-1].code_high - self.islands[0].code_low + 1
        covered = sum(isl.width_codes for isl in self.islands)
        return covered / total

    def distance_spacings(self) -> np.ndarray:
        """Gaps between consecutive slot center distances, in cm.

        For the paper's placement these are all equal — the "perception
        that the entries are equally spaced".
        """
        centers = np.array(
            [self.center_distance(slot) for slot in range(self.n_slots)]
        )
        return np.abs(np.diff(centers))


def build_island_map(
    sensor: GP2D120,
    adc: ADC,
    n_entries: int,
    range_cm: tuple[float, float] = (5.0, 28.0),
    island_fill: float = 0.62,
    placement: Placement = Placement.EQUAL_DISTANCE,
) -> IslandMap:
    """Construct the sensor-value→entry mapping of Section 4.2.

    Parameters
    ----------
    sensor:
        The (calibrated) sensor whose fitted curve converts distances to
        expected voltages.  An ideal (noise-free) transfer function is
        used, mirroring the paper's use of the fitted Figure 5 curve.
    adc:
        The converter, for voltage→code conversion.
    n_entries:
        "How many entities lie in a given data structure."
    range_cm:
        Usable scroll range (near, far) in cm.  Defaults keep a safety
        margin inside the sensor's 4–30 cm branch so noise cannot push a
        reading over the fold-back peak or out of range.
    island_fill:
        Fraction of each entry's distance slice covered by its island;
        the remainder becomes the inter-island gap.  1.0 → no gaps.
    placement:
        Entry distribution strategy (see :class:`Placement`).

    Returns
    -------
    IslandMap
        The constructed mapping.

    Raises
    ------
    ValueError
        If the requested number of entries cannot be given at least
        one ADC code each within the range (the firmware must then chunk
        the menu — Section 7).
    """
    if n_entries < 1:
        raise ValueError(f"n_entries must be >= 1, got {n_entries}")
    if not 0.0 < island_fill <= 1.0:
        raise ValueError(f"island_fill must be in (0, 1], got {island_fill}")
    near, far = float(range_cm[0]), float(range_cm[1])
    if not near < far:
        raise ValueError(f"range must satisfy near < far, got {range_cm}")
    if near < sensor.params.peak_distance_cm:
        raise ValueError(
            f"near bound {near} cm lies in the fold-back region "
            f"(< {sensor.params.peak_distance_cm} cm)"
        )

    if placement is Placement.EQUAL_CODE:
        islands = _place_equal_code(sensor, adc, n_entries, near, far, island_fill)
    else:
        fill = 1.0 if placement is Placement.FULL_COVERAGE else island_fill
        islands = _place_equal_distance(sensor, adc, n_entries, near, far, fill)

    _validate_islands(islands, n_entries)
    return IslandMap(islands, placement)


def _code_for_distance(sensor: GP2D120, adc: ADC, distance_cm: float) -> int:
    """Expected ADC code at a distance, via the ideal sensor curve."""
    return adc.code_for_voltage(sensor.ideal_voltage(distance_cm))


def _codes_for_distances(
    sensor: GP2D120, adc: ADC, distances_cm: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`_code_for_distance`: one sensor + ADC pass."""
    return adc.codes_for_voltages(sensor.ideal_voltage_array(distances_cm))


def _place_equal_distance(
    sensor: GP2D120,
    adc: ADC,
    n_entries: int,
    near: float,
    far: float,
    fill: float,
) -> list[Island]:
    """The paper's construction: equal distance slices, islands inside.

    All edge/center codes come from one batched pass through the sensor
    transfer function and the ADC quantizer — bit-equal to the scalar
    per-slot computation, just one array op instead of ``3 * n_entries``
    scalar sweeps.
    """
    step = (far - near) / n_entries
    half_island = step * fill / 2.0
    centers = near + (np.arange(n_entries) + 0.5) * step
    # Voltage (and code) falls with distance: far edge → low code.
    edge_highs = _codes_for_distances(sensor, adc, centers - half_island)
    edge_lows = _codes_for_distances(sensor, adc, centers + half_island)
    center_codes = _codes_for_distances(sensor, adc, centers)
    code_lows = np.minimum(edge_lows, edge_highs)
    code_highs = np.maximum(edge_lows, edge_highs)
    islands = [
        Island(
            slot=slot,
            code_low=int(code_lows[slot]),
            code_high=int(code_highs[slot]),
            center_code=int(center_codes[slot]),
            center_distance_cm=float(centers[slot]),
        )
        for slot in range(n_entries)
    ]
    _shrink_overlaps(islands)
    return islands


def _place_equal_code(
    sensor: GP2D120,
    adc: ADC,
    n_entries: int,
    near: float,
    far: float,
    fill: float,
) -> list[Island]:
    """Ablation: equal slices of the raw code span (the naive mapping)."""
    code_near = _code_for_distance(sensor, adc, near)
    code_far = _code_for_distance(sensor, adc, far)
    code_lo_span, code_hi_span = min(code_far, code_near), max(code_far, code_near)
    span = code_hi_span - code_lo_span + 1
    step = span / n_entries
    islands = []
    for slot in range(n_entries):
        # Slot 0 is nearest → highest codes.
        slice_hi = code_hi_span - slot * step
        slice_lo = slice_hi - step
        center = (slice_lo + slice_hi) / 2.0
        half = step * fill / 2.0
        voltage = (center + 0.5) * adc.params.lsb_volts
        try:
            center_distance = sensor.distance_for_voltage(voltage)
        except ValueError:
            center_distance = far if voltage < 0.5 else near
        islands.append(
            Island(
                slot=slot,
                code_low=int(round(center - half)),
                code_high=int(round(center + half)),
                center_code=int(round(center)),
                center_distance_cm=float(center_distance),
            )
        )
    _shrink_overlaps(islands)
    return islands


def _shrink_overlaps(islands: list[Island]) -> None:
    """Resolve rounding-induced overlaps by splitting at the midpoint."""
    by_code = sorted(range(len(islands)), key=lambda i: islands[i].code_low)
    for a, b in zip(by_code, by_code[1:]):
        lower, upper = islands[a], islands[b]
        if lower.code_high >= upper.code_low:
            boundary = (lower.code_high + upper.code_low) // 2
            new_lower_high = min(boundary, lower.code_high)
            new_upper_low = max(boundary + 1, upper.code_low)
            if new_lower_high < lower.code_low or new_upper_low > upper.code_high:
                raise ValueError(
                    f"slots {lower.slot} and {upper.slot} collapse onto the "
                    "same ADC codes — too many entries for the range; chunk "
                    "the menu (Section 7) or widen the range"
                )
            islands[a] = Island(
                slot=lower.slot,
                code_low=lower.code_low,
                code_high=new_lower_high,
                center_code=lower.center_code,
                center_distance_cm=lower.center_distance_cm,
            )
            islands[b] = Island(
                slot=upper.slot,
                code_low=new_upper_low,
                code_high=upper.code_high,
                center_code=upper.center_code,
                center_distance_cm=upper.center_distance_cm,
            )


def _validate_islands(islands: list[Island], n_entries: int) -> None:
    for island in islands:
        if island.width_codes < 1:
            raise ValueError(
                f"{n_entries} entries leave island {island.slot} with no ADC "
                "codes — chunk the menu (Section 7) or widen the range"
            )

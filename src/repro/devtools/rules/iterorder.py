"""REP008 — no unordered set iteration on result-producing paths.

Python sets iterate in hash order, which varies with insertion history
and (for strings, absent ``PYTHONHASHSEED`` pinning) across processes.
Any set iteration whose elements flow into traces, snapshots, CSV rows
or experiment results makes output ordering non-deterministic — the
exact class of bug the runner's ``--jobs 1 == --jobs N`` byte-equality
contract exists to prevent.  The rule flags ``for`` loops and
comprehension generators over (syntactic) set expressions, plus
``list()``/``tuple()`` materialisations of them, unless wrapped in
``sorted()``.

Dict iteration is deliberately **not** flagged: CPython dicts iterate
in insertion order (guaranteed since 3.7), and the tree's determinism
discipline relies on that — e.g. ``PERSONA_DIMENSIONS`` declaration
order *is* the draw order.

Escape hatch: ``# reprolint: allow REP008 (reason)`` on the flagged
line or the line above — the reason is mandatory.  ``repro lint --fix``
wraps flagged iterables in ``sorted(...)`` automatically.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.devtools.base import Rule
from repro.devtools.dataflow import FunctionFlow, is_set_expression
from repro.devtools.findings import Finding

__all__ = ["IterationOrderRule", "set_iteration_sites"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]

#: Callables whose result does not depend on iteration order: a
#: comprehension feeding one of these directly is not a finding.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "set", "frozenset", "len", "min", "max", "any", "all", "sum"}
)


def set_iteration_sites(tree: ast.Module) -> list[tuple[ast.AST, ast.expr]]:
    """All ``(anchor_node, iterable_expr)`` set-iteration sites in a module.

    Shared by the rule (reporting) and the fixer (rewriting), so the two
    can never disagree about what is flagged.  The anchor is the node
    findings are reported at (the ``for`` statement / comprehension /
    call); the iterable is the set expression to wrap in ``sorted()``.
    """
    module_flow = FunctionFlow(tree)
    sites: list[tuple[ast.AST, ast.expr]] = []

    # Comprehensions that are the sole argument of an order-insensitive
    # consumer (`sorted(x.n for x in some_set)`) are fine as-is.
    absorbed: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE_CONSUMERS
            and len(node.args) == 1
            and isinstance(
                node.args[0],
                (ast.GeneratorExp, ast.ListComp, ast.SetComp),
            )
        ):
            absorbed.add(id(node.args[0]))

    scopes: list[_FunctionNode] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)

    for scope in scopes:
        flow = (
            module_flow
            if isinstance(scope, ast.Module)
            else FunctionFlow(scope)
        )

        def is_set(expr: Optional[ast.expr]) -> bool:
            return is_set_expression(
                expr, flow, module_symbols=module_flow.bindings
            )

        for node in _scope_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set(node.iter):
                    sites.append((node, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if id(node) in absorbed or isinstance(node, ast.SetComp):
                    continue  # order-insensitive consumer / still a set
                for generator in node.generators:
                    if is_set(generator.iter):
                        sites.append((node, generator.iter))
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and is_set(node.args[0])
                ):
                    sites.append((node, node.args[0]))
    return sites


def _scope_walk(scope: _FunctionNode) -> list[ast.AST]:
    """Nodes belonging to ``scope``, excluding nested function bodies."""
    collected: list[ast.AST] = []

    def descend(node: ast.AST, top: bool) -> None:
        if not top and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            descend(child, False)

    descend(scope, True)
    return collected


class IterationOrderRule(Rule):
    """Flag iteration over sets without an explicit ``sorted()``."""

    rule_id = "REP008"
    title = "set iteration must go through sorted() on result-producing paths"
    supports_waiver = True
    rationale = (
        "Sets iterate in hash order, which varies with insertion history"
        " and across processes; any set iteration feeding traces, snapshots"
        " or results breaks the runner's `--jobs 1 == --jobs N`"
        " byte-equality contract.  Dicts are exempt: CPython dict iteration"
        " is insertion-ordered and the tree relies on it."
    )
    example = (
        "for channel in {\"events\", \"faults\"}:"
        "  # hash-order iteration\n"
        "    trace.register(channel)"
    )
    escape_hatch = (
        "Wrap the iterable in `sorted(...)` (or run `repro lint --fix`);"
        " for order-insensitive folds add"
        " `# reprolint: allow REP008 (reason)` on the flagged line."
    )

    def run(self, tree: ast.Module) -> list[Finding]:
        seen: set[tuple[int, int]] = set()
        for anchor, _iterable in set_iteration_sites(tree):
            location = (
                getattr(anchor, "lineno", 1),
                getattr(anchor, "col_offset", 0),
            )
            if location in seen:
                continue  # one finding per anchor even with two set gens
            seen.add(location)
            self.report(
                anchor,
                "iteration over a set is hash-ordered: wrap the iterable in"
                " `sorted(...)` (auto-fixable via `repro lint --fix`) or"
                " waive with a reason if the fold is order-insensitive",
            )
        return self.findings

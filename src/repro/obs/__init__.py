"""Deterministic sim-time observability: metrics, spans, exporters.

``repro.obs`` answers "where does sim time go and how often does X
happen?" without perturbing the simulation: every instrument is fed
sim-time values only (no wall clock — reprolint REP001 holds here),
snapshots merge associatively/commutatively across runner shards so
``--jobs 1 == --jobs N`` stays byte-identical, and the whole layer is
off by default behind a :class:`NullRecorder` whose cost the perf gate
bounds.

Typical use::

    from repro.obs import Recorder, use_recorder, to_chrome_trace

    recorder = Recorder()
    with use_recorder(recorder):
        device = DistScroll(menu, seed=7)   # components bind at build
        device.run_for(1.0)
    trace_json = to_chrome_trace(recorder.payload())

See ``docs/OBSERVABILITY.md`` for the instrument taxonomy, span naming
conventions, and a worked Perfetto walkthrough.
"""

from __future__ import annotations

from .export import (
    format_metrics,
    format_spans,
    metric_summaries,
    to_chrome_trace,
    to_jsonl,
)
from .metrics import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    merge_snapshots,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    active_recorder,
    set_active_recorder,
    span,
    use_recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_snapshots",
    "SNAPSHOT_VERSION",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "active_recorder",
    "set_active_recorder",
    "use_recorder",
    "span",
    "to_chrome_trace",
    "to_jsonl",
    "format_metrics",
    "format_spans",
    "metric_summaries",
]

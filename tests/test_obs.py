"""Tests for the observability layer (repro.obs).

Covers the metric instruments and their merge semantics, the recorder's
span machinery (including the no-op default), the exporters — with a
committed golden pinning the Chrome trace-event JSON bytes for one
seeded run — the runner integration (``observe=True`` is byte-identical
across job counts), and the ``trace`` / ``metrics`` CLI commands.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.harness import ExperimentResult
from repro.obs import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRecorder,
    Recorder,
    SNAPSHOT_VERSION,
    active_recorder,
    format_metrics,
    format_spans,
    merge_snapshots,
    metric_summaries,
    set_active_recorder,
    to_chrome_trace,
    to_jsonl,
    use_recorder,
)
from repro.runner import run_experiments
from repro.runner.sharding import (
    execute_shard,
    make_shards,
    merge_shard_results,
)
from repro.runner.registry import REGISTRY
from repro.sim import channels
from repro.sim.trace import Tracer

GOLDEN = Path(__file__).resolve().parent / "data" / "obs_chrome_trace_golden.json"


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------
class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_non_positive(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(0)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.snapshot() == {"type": "counter", "value": 2}


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge("g")
        assert gauge.snapshot() == {"type": "gauge", "last": None}
        gauge.set(1.5, time=0.1)
        gauge.set(2.5, time=0.2)
        assert gauge.snapshot() == {"type": "gauge", "last": [0.2, 2.5]}


class TestHistogram:
    def test_binning_and_stats(self):
        hist = Histogram("h", low=1.0, high=1000.0, bins_per_decade=1)
        for value in (0.5, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        # underflow, [1,10), [10,100), [100,1000), overflow-edge, overflow
        assert snap["counts"][0] == 1  # 0.5 underflows
        assert snap["counts"][-1] == 1  # 5000 overflows
        assert snap["count"] == 4
        assert hist.min == 0.5 and hist.max == 5000.0
        assert hist.mean == pytest.approx(1263.875)

    def test_sum_is_exact_rational(self):
        hist = Histogram("h")
        hist.observe(0.1)
        hist.observe(0.2)
        num, den = hist.snapshot()["sum"]
        assert Fraction(num, den) == Fraction(0.1) + Fraction(0.2)

    def test_rejects_nan_and_bad_spec(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.observe(float("nan"))
        with pytest.raises(ValueError):
            Histogram("h", low=2.0, high=1.0)
        with pytest.raises(ValueError):
            Histogram("h", bins_per_decade=0)

    def test_fixed_edges_are_spec_determined(self):
        a = Histogram("a", low=1e-3, high=1e3, bins_per_decade=3)
        b = Histogram("b", low=1e-3, high=1e3, bins_per_decade=3)
        assert a.edges == b.edges

    def test_empty_mean_is_none(self):
        assert Histogram("h").mean is None


class TestMetricRegistry:
    def test_instruments_unique_per_name(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_keys_sorted(self):
        registry = MetricRegistry()
        registry.counter("zebra")
        registry.counter("aardvark")
        assert list(registry.snapshot()) == ["aardvark", "zebra"]
        assert registry.names() == ["aardvark", "zebra"]

    def test_get(self):
        registry = MetricRegistry()
        assert registry.get("missing") is None
        counter = registry.counter("c")
        assert registry.get("c") is counter


class TestMergeSnapshots:
    def test_counters_add(self):
        a = {"n": {"type": "counter", "value": 2}}
        b = {"n": {"type": "counter", "value": 3}}
        assert merge_snapshots(a, b)["n"]["value"] == 5

    def test_gauges_keep_latest(self):
        a = {"g": {"type": "gauge", "last": [1.0, 10.0]}}
        b = {"g": {"type": "gauge", "last": [2.0, 5.0]}}
        assert merge_snapshots(a, b)["g"]["last"] == [2.0, 5.0]
        assert merge_snapshots(b, a)["g"]["last"] == [2.0, 5.0]

    def test_histograms_add_elementwise(self):
        x = Histogram("h", low=1.0, high=10.0, bins_per_decade=1)
        y = Histogram("h", low=1.0, high=10.0, bins_per_decade=1)
        x.observe(2.0)
        y.observe(3.0)
        merged = merge_snapshots(
            {"h": x.snapshot()}, {"h": y.snapshot()}
        )["h"]
        assert merged["count"] == 2
        assert Fraction(*merged["sum"]) == Fraction(5)
        assert merged["min"] == 2.0 and merged["max"] == 3.0

    def test_empty_is_identity(self):
        a = {"n": {"type": "counter", "value": 2}}
        assert merge_snapshots(a, {}) == a
        assert merge_snapshots({}, a) == a

    def test_disjoint_names_union(self):
        a = {"x": {"type": "counter", "value": 1}}
        b = {"y": {"type": "counter", "value": 2}}
        assert sorted(merge_snapshots(a, b)) == ["x", "y"]

    def test_type_mismatch_raises(self):
        a = {"n": {"type": "counter", "value": 2}}
        b = {"n": {"type": "gauge", "last": None}}
        with pytest.raises(ValueError):
            merge_snapshots(a, b)

    def test_histogram_spec_mismatch_raises(self):
        x = Histogram("h", low=1.0, high=10.0)
        y = Histogram("h", low=1.0, high=100.0)
        with pytest.raises(ValueError):
            merge_snapshots({"h": x.snapshot()}, {"h": y.snapshot()})


# ---------------------------------------------------------------------------
# recorder
# ---------------------------------------------------------------------------
class TestRecorder:
    def test_span_nesting_depths(self):
        recorder = Recorder()
        recorder.begin_span("outer", 0.0)
        recorder.emit_span("leaf", 0.0, 0.5, {"k": 1})
        recorder.end_span(1.0)
        assert [(s["name"], s["depth"]) for s in recorder.spans] == [
            ("leaf", 1),
            ("outer", 0),
        ]

    def test_span_context_manager_reads_clock_twice(self):
        recorder = Recorder()
        times = iter([1.0, 2.0])
        with recorder.span("tick", lambda: next(times), stage="adc"):
            pass
        (span,) = recorder.spans
        assert span["start"] == 1.0 and span["end"] == 2.0
        assert span["attrs"] == {"stage": "adc"}

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Recorder().end_span(1.0)

    def test_end_before_start_raises(self):
        recorder = Recorder()
        recorder.begin_span("s", 2.0)
        with pytest.raises(ValueError):
            recorder.end_span(1.0)

    def test_spans_mirror_to_tracer(self):
        tracer = Tracer()
        recorder = Recorder(tracer=tracer)
        recorder.emit_span("s", 0.25, 0.75, {"a": 1})
        records = list(tracer.channel(channels.SPANS))
        assert len(records) == 1
        time_s, value = records[0]
        assert time_s == 0.25
        assert value == ("s", 0.75, 0, (("a", 1),))

    def test_record_snapshot_publishes_metrics_channel(self):
        tracer = Tracer()
        recorder = Recorder()
        recorder.counter("c", 3)
        recorder.record_snapshot(tracer, 1.5)
        records = list(tracer.channel(channels.METRICS))
        assert len(records) == 1
        assert records[0][1]["c"] == {"type": "counter", "value": 3}

    def test_payload_shape(self):
        recorder = Recorder()
        recorder.counter("c")
        recorder.gauge("g", 1.0, 0.5)
        recorder.observe("h", 0.25)
        recorder.emit_span("s", 0.0, 1.0)
        payload = recorder.payload()
        assert payload["version"] == SNAPSHOT_VERSION
        assert sorted(payload["metrics"]) == ["c", "g", "h"]
        assert len(payload["spans"]) == 1
        # JSON-safe end to end.
        json.dumps(payload)


class TestActiveRecorder:
    def test_default_is_disabled(self):
        recorder = active_recorder()
        assert isinstance(recorder, NullRecorder)
        assert recorder.enabled is False
        assert recorder.metrics is None

    def test_use_recorder_scopes_and_restores(self):
        recorder = Recorder()
        before = active_recorder()
        with use_recorder(recorder):
            assert active_recorder() is recorder
        assert active_recorder() is before

    def test_set_active_returns_previous(self):
        recorder = Recorder()
        previous = set_active_recorder(recorder)
        try:
            assert active_recorder() is recorder
        finally:
            assert set_active_recorder(previous) is recorder

    def test_null_recorder_never_reads_clock(self):
        def broken_clock() -> float:
            raise AssertionError("disabled span must not read the clock")

        with NULL_RECORDER.span("s", broken_clock):
            pass
        assert NULL_RECORDER.spans == []

    def test_null_recorder_ops_are_noops(self):
        NULL_RECORDER.counter("c")
        NULL_RECORDER.gauge("g", 1.0, 2.0)
        NULL_RECORDER.observe("h", 0.5)
        NULL_RECORDER.begin_span("s", 0.0)
        NULL_RECORDER.end_span(1.0)
        NULL_RECORDER.emit_span("s", 0.0, 1.0)
        NULL_RECORDER.record_snapshot(Tracer(), 0.0)
        assert NULL_RECORDER.spans == []


# ---------------------------------------------------------------------------
# trace-channel registration (reprolint REP003 surface)
# ---------------------------------------------------------------------------
class TestChannelRegistration:
    def test_spans_and_metrics_channels_registered(self):
        assert channels.SPANS == "spans"
        assert channels.METRICS == "metrics"
        assert channels.SPANS in channels.CHANNELS
        assert channels.METRICS in channels.CHANNELS


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
def _sample_payload() -> dict:
    recorder = Recorder()
    recorder.counter("kernel.events.dispatched", 7)
    recorder.gauge("firmware.battery.volts", 8.9, 0.5)
    recorder.observe("firmware.tick.cycles", 250.0, low=1.0, high=1e6)
    recorder.emit_span("firmware.tick", 0.0, 0.02, {"cycles": 250})
    return recorder.payload()


class TestExporters:
    def test_chrome_trace_schema(self):
        document = json.loads(to_chrome_trace(_sample_payload(), "t"))
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["generator"] == "repro.obs"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        (span,) = [e for e in events if e["ph"] == "X"]
        assert span["name"] == "firmware.tick"
        assert span["ts"] == 0.0
        assert span["dur"] == pytest.approx(0.02 * 1e6)
        assert span["pid"] == 0 and span["tid"] == 0
        assert span["args"]["cycles"] == 250

    def test_jsonl_lines_parse(self):
        lines = to_jsonl(_sample_payload()).splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [record["record"] for record in records]
        assert kinds[0] == "meta"
        assert kinds.count("metric") == 3
        assert kinds.count("span") == 1

    def test_metric_summaries_flatten(self):
        summary = metric_summaries(_sample_payload()["metrics"])
        assert summary["kernel.events.dispatched"]["value"] == 7
        assert summary["firmware.battery.volts"]["value"] == 8.9
        assert summary["firmware.tick.cycles"]["mean"] == 250.0

    def test_format_metrics_sections(self):
        text = format_metrics(_sample_payload())
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "kernel.events.dispatched" in text

    def test_format_metrics_no_histogram_bars(self):
        text = format_metrics(_sample_payload(), histograms=False)
        assert "#" not in text

    def test_format_spans_table(self):
        text = format_spans(_sample_payload())
        assert "firmware.tick" in text
        assert "1 span(s) total" in text

    def test_empty_payload_exports(self):
        assert "no metrics recorded" in format_metrics({})
        assert "no spans recorded" in format_spans({})
        json.loads(to_chrome_trace({}))


class TestChromeTraceGolden:
    """Pin the exporter bytes for one seeded run against a golden file.

    Regenerate (after an intentional schema change) with the snippet in
    this test, writing to ``tests/data/obs_chrome_trace_golden.json``.
    """

    def _trace(self) -> str:
        from repro.core.device import DistScroll
        from repro.core.menu import build_menu

        recorder = Recorder()
        with use_recorder(recorder):
            device = DistScroll(
                build_menu(["Alpha", "Beta", "Gamma"]), seed=42
            )
            device.hold_at(12.0)
            device.run_for(0.12)
            recorder.record_snapshot(device.tracer, device.sim.now)
        return to_chrome_trace(recorder.payload(), title="obs-golden")

    def test_bytes_match_golden(self):
        if not GOLDEN.exists():
            pytest.skip("golden file not committed")
        assert self._trace() == GOLDEN.read_text()

    def test_golden_is_valid_chrome_trace(self):
        if not GOLDEN.exists():
            pytest.skip("golden file not committed")
        document = json.loads(GOLDEN.read_text())
        assert set(document) == {
            "displayTimeUnit", "otherData", "traceEvents"
        }
        for event in document["traceEvents"]:
            assert event["ph"] in {"M", "X"}
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert {"name", "cat", "pid", "tid", "ts", "args"} <= set(
                    event
                )


# ---------------------------------------------------------------------------
# runner + harness integration
# ---------------------------------------------------------------------------
class TestRunnerIntegration:
    def test_observed_run_attaches_payload(self):
        results, _ = run_experiments(
            ["FIG4"], seed=0, jobs=1, observe=True
        )
        obs = results["FIG4"].obs
        assert obs is not None
        assert obs["version"] == SNAPSHOT_VERSION
        assert obs["metrics"]["runner.shards"]["value"] >= 1
        assert all("shard" in span for span in obs["spans"])

    def test_unobserved_run_has_no_payload(self):
        results, _ = run_experiments(["FIG4"], seed=0, jobs=1)
        assert results["FIG4"].obs is None

    def test_trace_bytes_identical_across_job_counts(self):
        spec = REGISTRY["MAP-ISL"]
        results1, _ = run_experiments(
            ["MAP-ISL"], seed=1, jobs=1, observe=True
        )
        results3, _ = run_experiments(
            ["MAP-ISL"], seed=1, jobs=3, observe=True
        )
        assert spec.sharder == "param"  # a real multi-shard merge
        trace1 = to_chrome_trace(results1["MAP-ISL"].obs, "MAP-ISL")
        trace3 = to_chrome_trace(results3["MAP-ISL"].obs, "MAP-ISL")
        assert trace1 == trace3

    def test_merge_is_shard_order_independent(self):
        spec = REGISTRY["MAP-ISL"]
        shards = make_shards(spec, seed=1)[:2]
        parts = [
            execute_shard(spec, seed=1, shard=shard, observe=True)
            for shard in shards
        ]
        forward = merge_shard_results(spec, parts)
        backward = merge_shard_results(spec, list(reversed(parts)))
        assert forward.obs == backward.obs

    def test_observation_does_not_change_rows(self):
        plain, _ = run_experiments(["FIG4"], seed=0, jobs=1)
        observed, _ = run_experiments(
            ["FIG4"], seed=0, jobs=1, observe=True
        )
        assert plain["FIG4"].csv_bytes() == observed["FIG4"].csv_bytes()

    def test_result_obs_json_roundtrip(self):
        result = ExperimentResult("X", "t", ("a",))
        result.add_row(1)
        result.obs = {"version": 1, "metrics": {}, "spans": []}
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.obs == result.obs
        bare = ExperimentResult("X", "t", ("a",))
        assert ExperimentResult.from_json(bare.to_json()).obs is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestObsCLI:
    def test_metrics_bare_prints_stage_histograms(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "firmware.tick.cycles" in out
        assert "firmware.stage.adc.cycles" in out
        assert "adc.samples" in out
        assert "histograms:" in out

    def test_metrics_experiment(self, capsys):
        assert main(["metrics", "FIG4", "--no-histograms"]) == 0
        out = capsys.readouterr().out
        assert "calibration.points" in out

    def test_metrics_unknown_experiment(self, capsys):
        assert main(["metrics", "NOPE"]) == 2

    def test_trace_summary_and_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "fig4.jsonl"
        assert main(
            ["trace", "FIG4", "--out", str(out_path), "--format", "jsonl"]
        ) == 0
        assert "calibration.point" in capsys.readouterr().out
        for line in out_path.read_text().splitlines():
            json.loads(line)

    def test_run_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "fig4-trace.json"
        assert main(["run", "FIG4", "--trace-out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"][0]["args"]["name"] == "FIG4"
        assert any(
            event.get("name") == "calibration.point"
            for event in document["traceEvents"]
        )

"""``repro lint --fix``: mechanical rewrites for the fixable subset.

Two finding classes have a rewrite that is provably safe from syntax
alone, so the linter can apply it instead of just complaining:

* **REP008** — wrap the hash-ordered iterable in ``sorted(...)``.  The
  rewrite shares its detection logic with the rule
  (:func:`~repro.devtools.rules.iterorder.set_iteration_sites`), so
  fixer and rule can never disagree about what is flagged; inline
  waivers are respected.
* **REP002** — rewrite legacy ``np.random.<fn>(...)`` calls to
  ``np.random.default_rng(0).<method>(...)``.  Only call shapes whose
  Generator equivalent takes the same arguments are rewritten
  (``randint``'s exclusive upper bound matches ``integers``;
  ``rand``/``randn`` only with at most one positional argument, since
  their legacy multi-argument shape form has no same-shape
  equivalent).  The injected seed is the constant ``0`` — a reviewed
  starting point, not a policy; the point of the rewrite is to move
  the call onto an explicit stream so the seed *can* be threaded.

Fixes are applied as text edits located by AST positions, rightmost
first, so earlier edits never shift later spans.  Running the fixer on
already-fixed output is a no-op (``sorted(...)`` is not a set
expression; ``default_rng`` is not a legacy attribute), which makes
``--fix`` byte-stable — the CI fixture test pins this.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.devtools.base import waiver_reason
from repro.devtools.rules.iterorder import set_iteration_sites

__all__ = ["FixResult", "apply_fixes", "fix_tree"]

#: Legacy ``numpy.random`` functions with an argument-compatible
#: ``Generator`` method.  ``None`` constraints mean any call shape.
_GENERATOR_EQUIVALENT: dict[str, str] = {
    "random": "random",
    "random_sample": "random",
    "ranf": "random",
    "sample": "random",
    "rand": "random",
    "randn": "standard_normal",
    "randint": "integers",
    "uniform": "uniform",
    "normal": "normal",
    "standard_normal": "standard_normal",
    "choice": "choice",
    "shuffle": "shuffle",
    "permutation": "permutation",
    "poisson": "poisson",
    "exponential": "exponential",
    "binomial": "binomial",
    "beta": "beta",
    "gamma": "gamma",
    "lognormal": "lognormal",
    "bytes": "bytes",
}

#: Legacy functions whose multi-positional shape form has no
#: same-arguments Generator equivalent: fix only with <= 1 positional.
_SHAPE_STYLE = frozenset({"rand", "randn"})


@dataclass
class FixResult:
    """What one fixer run changed."""

    fixes: int = 0
    files_changed: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class _Edit:
    start: int
    end: int
    replacement: str
    #: Logical-fix id: a sorted() wrap is two edits sharing one group.
    group: int = 0


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(
    offsets: list[int], node: ast.expr
) -> Optional[tuple[int, int]]:
    if node.end_lineno is None or node.end_col_offset is None:
        return None
    start = offsets[node.lineno - 1] + node.col_offset
    end = offsets[node.end_lineno - 1] + node.end_col_offset
    return start, end


def _waived(lines: list[str], lineno: int, rule_id: str) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            if waiver_reason(lines[candidate - 1], rule_id) is not None:
                return True
    return False


def _rep008_edits(
    tree: ast.Module,
    offsets: list[int],
    lines: list[str],
    group_start: int,
) -> list[_Edit]:
    edits = []
    group = group_start
    for anchor, iterable in set_iteration_sites(tree):
        if _waived(lines, getattr(anchor, "lineno", 0), "REP008"):
            continue
        span = _span(offsets, iterable)
        if span is None:
            continue
        start, end = span
        group += 1
        edits.append(_Edit(start, start, "sorted(", group))
        edits.append(_Edit(end, end, ")", group))
    return edits


def _rep002_edits(
    tree: ast.Module, offsets: list[int], group_start: int
) -> list[_Edit]:
    edits = []
    group = group_start
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
        ):
            continue
        legacy = func.attr
        method = _GENERATOR_EQUIVALENT.get(legacy)
        if method is None:
            continue
        if legacy in _SHAPE_STYLE and (len(node.args) > 1 or node.keywords):
            continue
        span = _span(offsets, func)
        if span is None:
            continue
        base = func.value.value.id
        group += 1
        edits.append(
            _Edit(
                span[0],
                span[1],
                f"{base}.random.default_rng(0).{method}",
                group,
            )
        )
    return edits


def apply_fixes(source: str, path: str) -> tuple[str, int]:
    """Apply all mechanical fixes to one source text.

    Returns ``(new_source, fix_count)``; the input is returned
    unchanged (count 0) when nothing is fixable or the file does not
    parse.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    offsets = _line_offsets(source)
    lines = source.splitlines()
    wrap_edits = _rep008_edits(tree, offsets, lines, group_start=0)
    rewrite_edits = _rep002_edits(
        tree, offsets, group_start=len(wrap_edits)
    )
    edits = wrap_edits + rewrite_edits
    if not edits:
        return source, 0
    # Rightmost-first application; drop overlapping spans defensively
    # (insertions at identical offsets keep their relative order).
    edits.sort(key=lambda e: (e.start, e.end), reverse=True)
    result = source
    last_start: Optional[int] = None
    applied_groups: set[int] = set()
    for edit in edits:
        if last_start is not None and edit.end > last_start:
            continue
        result = result[: edit.start] + edit.replacement + result[edit.end :]
        last_start = edit.start
        applied_groups.add(edit.group)
    return result, len(applied_groups)


def fix_tree(root: Path, rel_paths: list[str]) -> FixResult:
    """Apply fixes to files under ``root``; returns what changed."""
    result = FixResult()
    for rel_path in sorted(set(rel_paths)):
        file_path = Path(root) / rel_path
        if not file_path.is_file():
            continue
        source = file_path.read_text(encoding="utf-8")
        fixed, count = apply_fixes(source, rel_path)
        if fixed != source:
            file_path.write_text(fixed, encoding="utf-8")
            result.fixes += count
            result.files_changed.append(rel_path)
    return result

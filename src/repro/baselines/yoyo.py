"""Rantanen's YoYo interface — the paper's closest conceptual ancestor.

The YoYo [9] is "attached to the garment.  It can be pulled with one hand
and retracts automatically using a spring.  By pulling, a wheel is turned
and this is translated as an input parameter."  Like DistScroll it maps a
*pull distance* to a position (position control, so Fitts-law pointing),
and it was explicitly designed for thick arctic gloves.

DistScroll's claimed advantages are structural, and the model carries
them: the YoYo's mechanical parts can jam ("fluids penetrating the case"),
the spring adds load, it is attached to specific clothing (donning cost
per session, not modeled per-trial), and selection is done by *pressing
the device itself*, which can yank the pull distance off target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty, movement_time

__all__ = ["YoYoScroller"]


@dataclass
class YoYoScroller(ScrollingTechnique):
    """Pull-string position-control scrolling.

    Parameters
    ----------
    pull_range_cm:
        Usable cord travel mapped over the list.
    fitts_a, fitts_b:
        Pointing parameters for the pulling arm (slightly worse than a
        free reach: the spring loads the movement).
    press_disturbance_cm:
        How far pressing-to-select tugs the cord off its position.
    jam_probability:
        Per-trial chance the mechanism sticks and needs a second pull.
    """

    name: str = "yoyo"
    one_handed: bool = True
    glove_compatible: bool = True
    mechanical_parts: bool = True
    body_attached: bool = True
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="yoyo",
        title="YoYo pull-string scrolling",
        citation="Rantanen et al. YoYo interface (DistScroll §2 ref [9])",
        input_model=(
            "Spring-retracting cord attached to the garment; pulling "
            "turns a wheel whose rotation encodes the pull distance."
        ),
        transfer_function=(
            "Position control: pull distance maps linearly onto the "
            "list, so reaches follow Fitts' law; pressing the device to "
            "select can tug the cord off target, and the mechanism can "
            "jam."
        ),
        control_order="position",
    )
    pull_range_cm: float = 25.0
    fitts_a: float = 0.14
    fitts_b: float = 0.17
    press_disturbance_cm: float = 0.35
    jam_probability: float = 0.02

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Pull the cord to the target's position and press to select."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        slot_cm = self.pull_range_cm / n_entries
        distance_cm = abs(target_index - start_index) * slot_cm
        width_cm = max(slot_cm * 0.8, 0.15)
        trial.index_of_difficulty = index_of_difficulty(
            max(distance_cm, 1e-6) + 1e-9, width_cm
        )
        duration = self._lognormal(self.t.reaction_s)
        position_cm = start_index * slot_cm
        target_cm = target_index * slot_cm

        for _ in range(12):
            move = abs(target_cm - position_cm)
            if move < 0.01:
                move = 0.01
            mt = movement_time(self.fitts_a, self.fitts_b, move, width_cm)
            mt *= self.glove.movement_time_factor
            duration += self._lognormal(max(mt, 0.12), 0.10)
            trial.operations += 1
            sigma = width_cm * 0.27
            position_cm = target_cm + self.rng.normal(0.0, sigma)
            if self.rng.random() < self.jam_probability:
                trial.errors += 1
                duration += self._lognormal(0.6, 0.3)
                continue
            landed = int(round(position_cm / slot_cm))
            if landed == target_index:
                break
            trial.errors += 0  # off-by-one pulls are corrections, not errors
            duration += self._lognormal(self.t.reaction_s)
        # Selection by pressing the device can tug the cord: with some
        # probability the press lands one entry off.
        duration += self._confirm_selection(trial)
        tug = abs(self.rng.normal(0.0, self.press_disturbance_cm))
        if tug > slot_cm / 2.0:
            trial.errors += 1
            duration += self._lognormal(self.t.reaction_s) + self._press(trial)
        trial.duration_s = duration
        return trial

"""The two-phase lint engine: project graph first, rules second.

Phase 1 parses every file once and extracts
:class:`~repro.devtools.graph.FileFacts` (imports, symbols, spawn
sites) — a pure function of each file's text, so facts are cached by
source digest.  The facts link into a
:class:`~repro.devtools.graph.ProjectGraph` giving the flow rules
cross-module name resolution and import closures.

Phase 2 runs two rule kinds:

* per-file :class:`~repro.devtools.base.Rule` visitors (REP001–REP008),
  each seeing the project graph through its
  :class:`~repro.devtools.base.LintContext` — their findings are
  cached per file, keyed on the file digest *plus* its import-closure
  digest *plus* a global digest of the cross-cutting facts (spawn-site
  resolutions and the stream registry), so a change anywhere that
  could alter this file's findings invalidates exactly this key;
* whole-project :class:`~repro.devtools.base.ProjectRule` checks
  (REP009), which run on every lint (they are cheap and depend on the
  test tree, which is outside the per-file key space).

After both phases the engine sorts findings and assigns each its
``occurrence`` index — the 0-based rank among identical ``(rule, path,
snippet)`` findings in line order — which makes baseline matching
one-to-one even for byte-identical source lines.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Type

from repro.devtools.base import LintContext, ProjectRule, Rule
from repro.devtools.cache import LintCache
from repro.devtools.findings import Finding, Severity
from repro.devtools.graph import (
    FileFacts,
    ProjectGraph,
    extract_facts,
    resolve_spawn_sites,
    source_digest,
    spawn_digest,
    stream_registry,
)

__all__ = [
    "ENGINE_CACHE_VERSION",
    "LintEngine",
    "LintResult",
    "LintStats",
    "ProjectView",
    "default_project_rules",
    "default_rules",
]

#: Bumped whenever rule logic changes in a way that must invalidate
#: cached findings (it participates in every findings cache key).
ENGINE_CACHE_VERSION = "reprolint-2.0"

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".reprolint_cache"}
)


def default_rules() -> tuple[Type[Rule], ...]:
    """The shipped per-file rule set (imported lazily to avoid cycles)."""
    from repro.devtools.rules import ALL_RULES

    return ALL_RULES


def default_project_rules() -> tuple[Type[ProjectRule], ...]:
    """The shipped whole-project rule set."""
    from repro.devtools.rules import PROJECT_RULES

    return PROJECT_RULES


@dataclass
class ProjectView:
    """What a :class:`ProjectRule` may inspect: the whole phase-1 view."""

    graph: ProjectGraph
    sources: Mapping[str, str]
    #: ``test file name -> text`` of the discovered test tree, or
    #: ``None`` when the linted tree has no tests directory (fixtures).
    tests_texts: Optional[Mapping[str, str]] = None

    def source_for(self, path: str) -> Optional[str]:
        return self.sources.get(path)


@dataclass
class LintStats:
    """Counters for one lint run (surfaced by ``repro lint --verbose``)."""

    files: int = 0
    linted: int = 0
    cache_hits: int = 0
    parsed: int = 0


@dataclass
class LintResult:
    """Findings plus run statistics."""

    findings: list[Finding] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)


class LintEngine:
    """Runs per-file and whole-project rules over a source tree.

    Parameters
    ----------
    rules:
        Per-file rule *classes* instantiated per file; defaults to the
        shipped REP001–REP008 set.
    project_rules:
        Whole-project rule classes run once per lint; defaults to the
        shipped REP009 set.  Pass ``()`` to disable.
    """

    def __init__(
        self,
        rules: Optional[Iterable[Type[Rule]]] = None,
        project_rules: Optional[Iterable[Type[ProjectRule]]] = None,
    ) -> None:
        self.rules: tuple[Type[Rule], ...] = (
            tuple(rules) if rules is not None else default_rules()
        )
        self.project_rules: tuple[Type[ProjectRule], ...] = (
            tuple(project_rules)
            if project_rules is not None
            else default_project_rules()
        )

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str) -> list[Finding]:
        """Lint one source string as if it lived at relative ``path``.

        Single-file mode: the project graph contains just this file
        (imports resolve nowhere) and project rules are skipped.
        """
        result = self._lint(
            sources={path: source},
            tests_texts=None,
            run_project_rules=False,
        )
        return result.findings

    def lint_file(self, file_path: Path, rel_path: str) -> list[Finding]:
        """Lint one file on disk, reporting it as ``rel_path``."""
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, rel_path)

    def lint_tree(self, root: Path) -> list[Finding]:
        """Lint every ``*.py`` under ``root``; findings sorted stably."""
        return self.lint_project(root).findings

    def lint_project(
        self,
        root: Path,
        *,
        cache: Optional[LintCache] = None,
        only_paths: Optional[Iterable[str]] = None,
        tests_root: Optional[Path] = None,
    ) -> LintResult:
        """Full two-phase lint of the tree under ``root``.

        ``only_paths`` restricts phase 2 (rule execution) to the given
        relative paths — phase 1 still covers the whole tree so
        cross-module resolution stays correct.  ``tests_root``
        overrides test-tree discovery (``None`` = auto-discover next to
        or above ``root``).
        """
        root = Path(root)
        sources: dict[str, str] = {}
        for file_path in sorted(root.rglob("*.py")):
            if _SKIP_DIRS.intersection(file_path.parts):
                continue
            rel_path = file_path.relative_to(root).as_posix()
            sources[rel_path] = file_path.read_text(encoding="utf-8")
        if tests_root is None:
            tests_root = self._discover_tests_root(root)
        tests_texts = self._read_tests(tests_root)
        selected = None if only_paths is None else set(only_paths)
        return self._lint(
            sources=sources,
            tests_texts=tests_texts,
            run_project_rules=True,
            cache=cache,
            selected=selected,
        )

    def changed_selection(
        self, root: Path, changed: Iterable[str]
    ) -> frozenset[str]:
        """Relative paths to re-lint for a set of changed files.

        A changed file re-lints itself plus every file whose import
        closure contains it (flow findings there may have changed).
        """
        root = Path(root)
        facts = []
        for file_path in sorted(root.rglob("*.py")):
            if _SKIP_DIRS.intersection(file_path.parts):
                continue
            rel_path = file_path.relative_to(root).as_posix()
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=rel_path)
            except SyntaxError:
                continue
            facts.append(extract_facts(rel_path, source, tree))
        graph = ProjectGraph(facts)
        return graph.dependents_of(changed)

    # ------------------------------------------------------------------
    # the two-phase core
    # ------------------------------------------------------------------
    def _lint(
        self,
        sources: Mapping[str, str],
        tests_texts: Optional[Mapping[str, str]],
        run_project_rules: bool,
        cache: Optional[LintCache] = None,
        selected: Optional[set[str]] = None,
    ) -> LintResult:
        stats = LintStats(files=len(sources))
        findings: list[Finding] = []

        # --- phase 1: facts + graph ----------------------------------
        all_facts: list[FileFacts] = []
        trees: dict[str, ast.Module] = {}
        digests: dict[str, str] = {}
        for path in sorted(sources):
            source = sources[path]
            digest = source_digest(path, source)
            digests[path] = digest
            facts = cache.facts_for(digest) if cache is not None else None
            if facts is None:
                try:
                    tree = ast.parse(source, filename=path)
                except SyntaxError as exc:
                    findings.append(
                        Finding(
                            rule="REP000",
                            path=path,
                            line=exc.lineno or 1,
                            col=(exc.offset or 1) - 1,
                            message=f"syntax error: {exc.msg}",
                            severity=Severity.ERROR,
                            snippet="",
                        )
                    )
                    continue
                stats.parsed += 1
                trees[path] = tree
                facts = extract_facts(path, source, tree)
                if cache is not None:
                    cache.store_facts(digest, facts)
            all_facts.append(facts)
        graph = ProjectGraph(all_facts)

        # Cross-cutting digest: spawn-site resolutions + stream registry.
        registry = stream_registry(graph)
        resolved_spawns = resolve_spawn_sites(graph, registry or {})
        global_digest = hashlib.sha256(
            "\x00".join(
                [
                    ENGINE_CACHE_VERSION,
                    ",".join(self.rule_ids()),
                    spawn_digest(resolved_spawns, registry),
                ]
            ).encode("utf-8")
        ).hexdigest()

        # --- phase 2a: per-file rules --------------------------------
        for facts in all_facts:
            path = facts.path
            if selected is not None and path not in selected:
                continue
            stats.linted += 1
            key = hashlib.sha256(
                "\x00".join(
                    [
                        global_digest,
                        facts.digest,
                        graph.closure_digest(path),
                    ]
                ).encode("utf-8")
            ).hexdigest()
            cached = (
                cache.findings_for(key) if cache is not None else None
            )
            if cached is not None:
                stats.cache_hits += 1
                findings.extend(cached)
                continue
            tree = trees.get(path)
            if tree is None:
                tree = ast.parse(sources[path], filename=path)
                stats.parsed += 1
            file_findings: list[Finding] = []
            for rule_cls in self.rules:
                if not rule_cls.applies_to(path):
                    continue
                context = LintContext(
                    path=path,
                    source=sources[path],
                    project=graph,
                    facts=facts,
                )
                file_findings.extend(rule_cls(context).run(tree))
            if cache is not None:
                cache.store_findings(key, file_findings)
            findings.extend(file_findings)

        # --- phase 2b: project rules (never cached) ------------------
        if run_project_rules and self.project_rules:
            view = ProjectView(
                graph=graph, sources=sources, tests_texts=tests_texts
            )
            for project_rule_cls in self.project_rules:
                findings.extend(project_rule_cls().run_project(view))

        return LintResult(
            findings=self._assign_occurrences(self.sort(findings)),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _discover_tests_root(root: Path) -> Optional[Path]:
        for candidate in (
            root / "tests",
            root.parent / "tests",
            root.parent.parent / "tests",
        ):
            if candidate.is_dir() and any(candidate.glob("test_*.py")):
                return candidate
        return None

    @staticmethod
    def _read_tests(tests_root: Optional[Path]) -> Optional[dict[str, str]]:
        if tests_root is None:
            return None
        texts: dict[str, str] = {}
        for test_file in sorted(tests_root.rglob("test_*.py")):
            if _SKIP_DIRS.intersection(test_file.parts):
                continue
            rel = test_file.relative_to(tests_root).as_posix()
            texts[rel] = test_file.read_text(encoding="utf-8")
        return texts

    @staticmethod
    def _assign_occurrences(findings: Sequence[Finding]) -> list[Finding]:
        """Occurrence = rank among identical (rule, path, snippet).

        Findings arrive sorted by (path, line, col, rule), so the rank
        is assigned in line order — the committed baseline's entries
        stay pinned to *their* line even when a twin appears later in
        the file.
        """
        counters: dict[tuple[str, str, str], int] = {}
        out: list[Finding] = []
        for finding in findings:
            bucket = (finding.rule, finding.path, finding.snippet)
            occurrence = counters.get(bucket, 0)
            counters[bucket] = occurrence + 1
            out.append(
                finding
                if finding.occurrence == occurrence
                else finding.with_occurrence(occurrence)
            )
        return out

    @staticmethod
    def sort(findings: Sequence[Finding]) -> list[Finding]:
        """Stable presentation order: path, line, column, rule id."""
        return sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )

    def rule_ids(self) -> list[str]:
        """Ids of all configured rules (per-file then project order)."""
        return [rule.rule_id for rule in self.rules] + [
            rule.rule_id for rule in self.project_rules
        ]

"""Parallel experiment execution: sharding, process pool, result cache.

The experiment suite is embarrassingly parallel — every (experiment,
seed) pair, and within several experiments every sweep point or
participant, is an independent work unit.  This package turns the flat
registry of experiment runners into:

* :mod:`repro.runner.registry` — declarative :class:`ExperimentSpec`
  entries (import path + parameters + sharding strategy) replacing the
  old closure-based registry;
* :mod:`repro.runner.sharding` — deterministic decomposition of a spec
  into :class:`Shard` work units and order-stable merging of the partial
  results, with per-shard seeds derived via ``SeedSequence`` spawning
  where an experiment opts in;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  keyed by experiment id, parameters, seed and a digest of the package
  sources, so re-running an unchanged sweep is near-instant;
* :mod:`repro.runner.pool` — the driver that fans shards across a
  ``ProcessPoolExecutor`` and writes ``BENCH_runner.json`` timings.

The contract throughout: ``--jobs 1`` and ``--jobs N`` produce
byte-identical merged CSVs, and a cache hit recomputes nothing.
"""

from repro.runner.cache import ResultCache, source_digest
from repro.runner.pool import run_experiments
from repro.runner.registry import REGISTRY, ExperimentSpec, build_runner
from repro.runner.sharding import (
    Shard,
    execute_shard,
    make_shards,
    merge_shard_results,
    spawn_shard_seeds,
)

__all__ = [
    "REGISTRY",
    "ExperimentSpec",
    "build_runner",
    "ResultCache",
    "source_digest",
    "run_experiments",
    "Shard",
    "make_shards",
    "execute_shard",
    "merge_shard_results",
    "spawn_shard_seeds",
]

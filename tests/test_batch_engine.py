"""Tests for the batched multi-device engine (repro.core.batch).

The structure-of-arrays engine must be a *bit-equality* twin of the
scalar per-device engine — same RNG streams, same IEEE op order, same
state machine — across every regime the fleet can hit: mixed personas
and gloves, corrupting surfaces, active fault windows, and observe=On.
The scalar engine is the oracle; whenever the two disagree by even one
bit, the batch path is wrong.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    DeviceBatch,
    ScalarDeviceEngine,
    derive_device_spec,
    device_stream,
)
from repro.obs.recorder import Recorder, use_recorder
from repro.sim.kernel import (
    BatchTask,
    SimulationError,
    Simulator,
    global_batch_units_processed,
)

TICK = 1.0 / 50.0


def run_both(seed, indices, ticks, fault_every=0, duration_hint_s=2.0):
    """Step a batch and its scalar twins over the same tick grid."""
    specs = [
        derive_device_spec(
            seed,
            index,
            fault_every=fault_every,
            duration_hint_s=duration_hint_s,
        )
        for index in indices
    ]
    batch = DeviceBatch(specs, seed=seed)
    scalars = [ScalarDeviceEngine(spec, seed=seed) for spec in specs]
    now = 0.0
    for _ in range(ticks):
        now += TICK
        batch.step(now)
        for engine in scalars:
            engine.step(now)
    return batch, scalars


def assert_bit_equal(batch, scalars):
    for row, engine in enumerate(scalars):
        assert batch.state(row) == engine.state(), (
            f"state mismatch on device {batch.specs[row].index}"
        )
        assert batch.counters(row) == engine.counters(), (
            f"counter mismatch on device {batch.specs[row].index}"
        )


class TestScalarVsBatchedEquality:
    """The hypothesis property suite: batch == oracle, bit for bit."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_devices=st.integers(1, 12),
        ticks=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_mixed_fleet_bit_equality(self, seed, n_devices, ticks):
        """Mixed personas/gloves/surfaces, no faults."""
        batch, scalars = run_both(seed, range(n_devices), ticks)
        assert_bit_equal(batch, scalars)

    @given(
        seed=st.integers(0, 2**31 - 1),
        ticks=st.integers(50, 200),
        fault_every=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_faulted_fleet_bit_equality(self, seed, ticks, fault_every):
        """Active fault windows: glitch/stuck/occlusion/dropout."""
        batch, scalars = run_both(
            seed,
            range(8),
            ticks,
            fault_every=fault_every,
            duration_hint_s=ticks * TICK,
        )
        assert_bit_equal(batch, scalars)
        faulted = [s for s in batch.specs if s.fault_windows]
        assert faulted, "fault_every <= 3 over 8 devices must fault some"

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_observed_fleet_bit_equality(self, seed):
        """observe=On must not perturb a single RNG draw or state bit."""
        with use_recorder(Recorder()):
            observed, _ = run_both(seed, range(6), 80, fault_every=2)
        plain, scalars = run_both(seed, range(6), 80, fault_every=2)
        assert_bit_equal(observed, scalars)
        for row in range(6):
            assert observed.state(row) == plain.state(row)

    @given(
        seed=st.integers(0, 2**31 - 1),
        offset=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_row_position_is_irrelevant(self, seed, offset):
        """A device's trajectory depends on its index, not its row."""
        lone, _ = run_both(seed, [offset + 3], 60)
        packed, _ = run_both(seed, range(offset, offset + 6), 60)
        assert packed.state(3) == lone.state(0)
        assert packed.counters(3) == lone.counters(0)

    def test_reset_replays_identically(self):
        batch, scalars = run_both(7, range(8), 100, fault_every=4)
        first = [batch.state(row) for row in range(8)]
        batch.reset()
        now = 0.0
        for _ in range(100):
            now += TICK
            batch.step(now)
        assert [batch.state(row) for row in range(8)] == first
        assert_bit_equal(batch, scalars)


class TestRngStreamPins:
    """Pin the numpy facts the batched draws rely on."""

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_uniform_batch_equals_scalar_draws(self, seed, n):
        a = device_stream(seed, 0, 3).uniform(0.1, 2.9, size=n)
        b = device_stream(seed, 0, 3)
        assert [float(x) for x in a] == [b.uniform(0.1, 2.9) for _ in range(n)]

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_normal_batch_equals_scalar_draws(self, seed, n):
        a = device_stream(seed, 1, 3).normal(0.0, 0.4, size=n)
        b = device_stream(seed, 1, 3)
        assert [float(x) for x in a] == [b.normal(0.0, 0.4) for _ in range(n)]

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_random_batch_equals_scalar_draws(self, seed, n):
        a = device_stream(seed, 2, 2).random(size=n)
        b = device_stream(seed, 2, 2)
        assert [float(x) for x in a] == [b.random() for _ in range(n)]

    def test_streams_are_purpose_disjoint(self):
        draws = {
            purpose: float(device_stream(3, 5, purpose).random())
            for purpose in range(8)
        }
        assert len(set(draws.values())) == len(draws)


class TestDeviceBatchShape:
    def test_result_rows_are_plain_scalars(self):
        batch, _ = run_both(11, range(4), 30, fault_every=2)
        rows = batch.result_rows()
        assert len(rows) == 4
        for row in rows:
            assert len(row) == 18
            for cell in row:
                assert isinstance(cell, (int, str)), cell

    def test_step_returns_device_count(self):
        specs = [derive_device_spec(0, i) for i in range(5)]
        batch = DeviceBatch(specs, seed=0)
        assert batch.step(TICK) == 5

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            DeviceBatch([], seed=0)


class TestBatchTask:
    def test_accounting_counts_device_ticks(self):
        specs = [derive_device_spec(42, i) for i in range(10)]
        batch = DeviceBatch(specs, seed=42)
        sim = Simulator(seed=42)
        before = global_batch_units_processed()
        task = BatchTask(sim, TICK, batch.step)
        sim.run_while(lambda: True, max_time=1.0)
        task.stop()
        assert batch.ticks == 49  # the tick landing on max_time won't fire
        assert sim.batch_units_processed == 10 * batch.ticks
        assert global_batch_units_processed() - before == 10 * batch.ticks
        # Each batch tick is ONE kernel event regardless of fleet size.
        assert sim.events_processed == batch.ticks

    def test_stop_halts_recurrence(self):
        sim = Simulator(seed=0)
        fired = []
        task = BatchTask(sim, 0.1, lambda now: fired.append(now) or 3)
        sim.run(max_events=2)
        task.stop()
        assert not task.running
        sim.run()
        assert len(fired) == 2
        assert sim.batch_units_processed == 6

    def test_zero_units_is_not_recorded(self):
        sim = Simulator(seed=0)
        task = BatchTask(sim, 0.1, lambda now: 0)
        sim.run(max_events=3)
        task.stop()
        assert sim.batch_units_processed == 0

    def test_rejects_nonpositive_period(self):
        sim = Simulator(seed=0)
        with pytest.raises(SimulationError):
            BatchTask(sim, 0.0, lambda now: 1)

    def test_observed_batch_units_counter(self):
        recorder = Recorder()
        with use_recorder(recorder):
            sim = Simulator(seed=1)
            task = BatchTask(sim, 0.05, lambda now: 7)
            sim.run(max_events=4)
            task.stop()
        snapshot = recorder.metrics.snapshot()
        assert snapshot["kernel.batch.units"]["value"] == 28

    def test_unbatched_observed_run_creates_no_batch_counter(self):
        """Lazy counter: metric snapshots of non-batch runs stay stable."""
        recorder = Recorder()
        with use_recorder(recorder):
            sim = Simulator(seed=1)
            sim.schedule(0.1, lambda: None)
            sim.run()
        assert "kernel.batch.units" not in recorder.metrics.snapshot()


class TestDevicebatchSharder:
    """Shard-layout invariance of the FLEET decomposition."""

    def test_block_layout_cannot_change_rows(self):
        from repro.experiments.fleet import run_device_block

        whole = run_device_block(5, 0, 24, duration_s=1.0)
        split = [
            row
            for start, count in ((0, 7), (7, 7), (14, 7), (21, 3))
            for row in run_device_block(5, start, count, duration_s=1.0)
        ]
        assert split == whole

    def test_jobs_do_not_change_fleet_bytes(self, tmp_path):
        from repro.runner.pool import run_experiments
        from repro.runner.registry import ExperimentSpec

        spec = ExperimentSpec(
            experiment_id="FLEET",
            entry="repro.experiments.fleet:run_fleet",
            params=(
                ("n_devices", 48),
                ("duration_s", 1.0),
                ("personas", "full"),
                ("fault_every", 8),
            ),
            sharder="devicebatch",
            n_users_param="n_devices",
            user_entry="repro.experiments.fleet:run_device_block",
            aggregate_entry="repro.experiments.fleet:finalize_fleet",
            aggregate_params=(
                "n_devices",
                "duration_s",
                "personas",
                "fault_every",
            ),
            users_per_shard=16,
        )
        outputs = {}
        for jobs in (1, 3):
            csv_dir = tmp_path / f"jobs{jobs}"
            run_experiments(
                ["FLEET"],
                seed=0,
                jobs=jobs,
                csv_dir=csv_dir,
                overrides={"FLEET": spec},
            )
            outputs[jobs] = (csv_dir / "FLEET.csv").read_bytes()
        assert outputs[1] == outputs[3]

    def test_registry_fleet_matches_serial_driver(self):
        from repro.experiments.fleet import run_fleet
        from repro.runner.registry import REGISTRY
        from repro.runner.sharding import (
            execute_shard,
            make_shards,
            merge_shard_results,
        )

        spec = REGISTRY["FLEET"]
        assert spec.sharder == "devicebatch"
        small = type(spec)(
            **{
                **spec.__dict__,
                "params": (
                    ("n_devices", 32),
                    ("duration_s", 1.0),
                    ("personas", "full"),
                    ("fault_every", 8),
                ),
                "users_per_shard": 8,
            }
        )
        shards = make_shards(small, seed=2)
        assert len(shards) == 4
        merged = merge_shard_results(
            small, [execute_shard(small, 2, shard) for shard in shards]
        )
        serial = run_fleet(
            seed=2, n_devices=32, duration_s=1.0, devices_per_shard=8
        )
        assert merged.rows == serial.rows
        assert merged.notes[0] == serial.notes[0]
        assert merged.notes[1] == serial.notes[1]


class TestFleetKernelDriveMatchesOracle:
    def test_kernel_tick_grid_equals_manual_grid(self):
        """BatchTask fires on the same accumulated grid the oracle uses."""
        specs = [derive_device_spec(9, i, fault_every=4) for i in range(6)]
        batch = DeviceBatch(specs, seed=9)
        sim = Simulator(seed=9)
        times = []

        def step(now):
            times.append(now)
            return batch.step(now)

        task = BatchTask(sim, TICK, step)
        sim.run_while(lambda: True, max_time=1.0)
        task.stop()
        scalars = [ScalarDeviceEngine(spec, seed=9) for spec in specs]
        for now in times:
            for engine in scalars:
                engine.step(now)
        assert_bit_equal(batch, scalars)

    def test_pow_foldback_region_stays_scalar(self):
        """Devices that wander into fold-back still match the oracle.

        numpy's vectorized ``**`` differs from libm by 1 ulp (PR 4), so
        the fold-back branch must stay per-element; seeds that latch
        exercise it.
        """
        found = False
        for seed in range(40):
            batch, scalars = run_both(seed, range(6), 120, fault_every=2)
            assert_bit_equal(batch, scalars)
            if any(batch.latches[row] > 0 for row in range(6)):
                found = True
        assert found, "no fleet latched fold-back in 40 seeds"

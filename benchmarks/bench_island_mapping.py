"""MAP-ISL — island-mapping spacing, coverage and hold stability (§4.2)."""

from __future__ import annotations

from repro.experiments import run_island_mapping


def test_bench_island_mapping(benchmark, report):
    result = benchmark.pedantic(
        run_island_mapping,
        kwargs={"seed": 1, "hold_time_s": 4.0},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert max(result.column("spacing_cv")) < 1e-6
    assert max(result.column("flicker_gap_hz")) <= 0.5

"""Up/down button scrolling — the mainstream phone-keypad baseline.

The standard technique on 2005-era mobile phones: discrete up/down keys
with auto-repeat after a hold delay.  Time grows *linearly* with scroll
distance (one press or repeat step per entry), which is exactly the
regime distance-based scrolling is supposed to beat for far targets: the
DistScroll jumps anywhere in the range in one Fitts-law reach.

Auto-repeat introduces an overshoot hazard: releasing the key at 10
repeats/s carries a timing uncertainty of roughly one repeat period, so
long repeats may overrun the target and need corrective single presses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty

__all__ = ["ButtonScroller"]


@dataclass
class ButtonScroller(ScrollingTechnique):
    """Discrete up/down keys with auto-repeat.

    Parameters
    ----------
    repeat_threshold:
        Scroll distances up to this use individual presses; longer
        distances hold the key and auto-repeat.
    """

    name: str = "buttons"
    one_handed: bool = True
    glove_compatible: bool = False  # small keys; thick gloves mis-press
    repeat_threshold: int = 4
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="buttons",
        title="Up/down buttons with auto-repeat",
        citation="2005-era mobile-phone keypads (DistScroll §2 baseline)",
        input_model=(
            "Two discrete keys; each press (or auto-repeat tick) is a "
            "debounced digital input, one entry per step."
        ),
        transfer_function=(
            "Position control, one entry per press; holding past the "
            "repeat delay scrolls at the auto-repeat rate, with a "
            "release-timing overshoot hazard on long bursts."
        ),
        control_order="position",
    )

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Scroll press-by-press (or via auto-repeat) and select."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        trial.index_of_difficulty = index_of_difficulty(
            max(abs(target_index - start_index), 1e-6) + 1e-9, 1.0
        )
        duration = self._lognormal(self.t.reaction_s)
        position = start_index
        remaining = target_index - position
        while remaining != 0:
            steps = abs(remaining)
            if steps <= self.repeat_threshold:
                for _ in range(steps):
                    duration += self._press(trial)
                position = target_index
            else:
                duration += self._auto_repeat_burst(trial, steps)
                overshoot = self._overshoot(steps)
                position = target_index + overshoot * (1 if remaining > 0 else -1)
                position = max(0, min(position, n_entries - 1))
                if position != target_index:
                    trial.errors += 1
                    duration += self._lognormal(self.t.reaction_s)
            remaining = target_index - position
        duration += self._confirm_selection(trial)
        trial.duration_s = duration
        return trial

    def _auto_repeat_burst(self, trial: TechniqueTrial, steps: int) -> float:
        """Hold the key until roughly ``steps`` entries scrolled by."""
        trial.operations += 1
        hold = (
            self._lognormal(self.t.keypress_s)
            + self.t.auto_repeat_delay_s
            + (steps - 1) / self.t.auto_repeat_rate_hz
        )
        return hold

    def _overshoot(self, steps: int) -> int:
        """Entries overrun when releasing from auto-repeat."""
        # Release timing uncertainty of ~±1 repeat period.
        sigma = 1.1
        overshoot = abs(self.rng.normal(0.0, sigma))
        return int(overshoot)

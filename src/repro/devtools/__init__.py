"""``reprolint`` — project-wide invariant linting for the simulation stack.

The simulator's headline guarantees (``--jobs 1 == --jobs N``
byte-identical CSVs, every fault injection paired with a recovery) rest
on code conventions: all randomness flows from a passed-in
``numpy.random.Generator`` on registered spawn-key streams, trace
channels are spelled from one registry, nothing inside the sim reads
wall-clock time, float accumulation is exact, and every vectorized fast
path keeps its scalar oracle.  This package enforces those conventions
mechanically, with a two-phase engine: phase 1 builds a cross-module
symbol/import graph over the whole tree, phase 2 runs per-file and
whole-project rules on top of it, with content-addressed incremental
caching.

Layout
------
``findings``   :class:`Finding` / :class:`Severity` — what a rule emits.
``base``       :class:`Rule` (per-file ``ast.NodeVisitor`` with an
               ancestor stack) and :class:`ProjectRule` (whole-project
               checks), plus the inline-waiver parsing.
``graph``      phase 1: :class:`FileFacts` extraction and the
               :class:`ProjectGraph` (imports, symbols, spawn sites,
               closures, digests).
``dataflow``   intra-procedural helpers (assignment chains, RNG-draw
               and set-expression predicates).
``engine``     :class:`LintEngine` — the two-phase run, occurrence
               assignment, sorted findings.
``cache``      :class:`LintCache` — content-addressed incremental
               facts/findings store.
``fixer``      ``repro lint --fix`` mechanical rewrites.
``baseline``   committed grandfather file: load/match/write/prune.
``report``     text and JSON rendering of a lint run.
``rules``      the shipped rule set (REP001–REP009).

Entry point: ``repro lint`` in :mod:`repro.cli`, or programmatically::

    from repro.devtools import LintEngine
    findings = LintEngine().lint_tree(Path("src/repro"))
"""

from repro.devtools.base import LintContext, ProjectRule, Rule
from repro.devtools.baseline import Baseline
from repro.devtools.cache import LintCache
from repro.devtools.engine import (
    LintEngine,
    LintResult,
    default_project_rules,
    default_rules,
)
from repro.devtools.findings import Finding, Severity
from repro.devtools.report import format_json, format_text

__all__ = [
    "Baseline",
    "Finding",
    "LintCache",
    "LintContext",
    "LintEngine",
    "LintResult",
    "ProjectRule",
    "Rule",
    "Severity",
    "default_project_rules",
    "default_rules",
    "format_json",
    "format_text",
]

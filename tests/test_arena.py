"""Tests for the ARENA cross-technique tournament.

The guarantees under test:

* **Block-partition invariance** — any partition of the population into
  ``run_arena_block`` calls merges to byte-identical
  :meth:`ArenaAggregate.snapshot` JSON, which is what makes
  ``--jobs 1 == --jobs N`` hold by construction.
* **Roster-indexed streams** — a subset run replays exactly the bits a
  full tournament gives those techniques.
* **The leaderboard contract** — ranked by the composite score, one row
  per technique, fault-degradation and per-scenario notes present.
* **Registry + CLI wiring** — the ARENA spec shards by userblocks and
  the CLI accepts ``--users/--personas/--battery`` without extra flags.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.arena import (
    ARENA_ROSTER,
    arena_fault_window,
    finalize_arena,
    run_arena,
    run_arena_block,
)
from repro.runner.registry import REGISTRY, arena_spec


def _snapshot_bytes(aggregate):
    return json.dumps(aggregate.snapshot(), sort_keys=True)


class TestBlockInvariance:
    def test_any_partition_merges_byte_identical(self):
        whole = run_arena_block(0, 0, 6, battery="smoke")
        for cuts in ([(0, 2), (2, 3), (5, 1)], [(0, 1), (1, 5)]):
            parts = [
                run_arena_block(0, start, count, battery="smoke")
                for start, count in cuts
            ]
            merged = parts[0]
            for part in parts[1:]:
                merged = merged.merge(part)
            assert _snapshot_bytes(merged) == _snapshot_bytes(whole)

    def test_shard_width_never_changes_the_result(self):
        wide = run_arena(seed=3, n_users=6, battery="smoke", users_per_shard=6)
        narrow = run_arena(
            seed=3, n_users=6, battery="smoke", users_per_shard=2
        )
        assert wide.rows == narrow.rows
        assert wide.notes == narrow.notes

    def test_subset_replays_full_run_bits(self):
        """Dropping techniques never perturbs the survivors' streams."""
        full = run_arena_block(1, 0, 4, battery="smoke")
        subset = run_arena_block(
            1, 0, 4, battery="smoke", techniques=("yoyo",)
        )
        t = full.techniques.index("yoyo")
        full_yoyo = [cell.snapshot() for cell in full.stats[t]]
        sub_yoyo = [cell.snapshot() for cell in subset.stats[0]]
        assert json.dumps(full_yoyo, sort_keys=True) == json.dumps(
            sub_yoyo, sort_keys=True
        )

    def test_layout_mismatch_refused(self):
        smoke = run_arena_block(0, 0, 1, battery="smoke")
        yoyo_only = run_arena_block(0, 1, 1, battery="smoke",
                                    techniques=("yoyo",))
        with pytest.raises(ValueError):
            smoke.merge(yoyo_only)


class TestLeaderboard:
    def test_ranked_by_score_over_full_roster(self):
        result = run_arena(seed=0, n_users=4, battery="smoke")
        assert result.columns[:3] == ("rank", "technique", "score")
        scores = [row[2] for row in result.rows]
        assert scores == sorted(scores)
        assert [row[0] for row in result.rows] == list(
            range(1, len(ARENA_ROSTER) + 1)
        )
        assert {row[1] for row in result.rows} == set(ARENA_ROSTER)

    def test_fault_cohort_lands_in_notes(self):
        result = run_arena(seed=0, n_users=4, battery="smoke", fault_every=2)
        assert any("grip-loss" in note for note in result.notes)
        assert any("never failed" in note for note in result.notes)

    def test_fault_free_run_has_no_degradation_notes(self):
        result = run_arena(seed=0, n_users=3, battery="smoke", fault_every=0)
        assert not any("never failed" in note for note in result.notes)

    def test_user_count_mismatch_rejected(self):
        aggregate = run_arena_block(0, 0, 2, battery="smoke")
        with pytest.raises(ValueError):
            finalize_arena([aggregate], 3, battery="smoke")

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError):
            run_arena_block(0, 0, 1, techniques=("warpdrive",))

    def test_duplicate_technique_rejected(self):
        with pytest.raises(ValueError):
            run_arena_block(0, 0, 1, techniques=("yoyo", "yoyo"))


class TestFaultPlan:
    def test_window_covers_the_middle_third(self):
        (fault,) = arena_fault_window("pointnmove", 12)
        assert fault.kind == "grip-loss"
        assert (fault.start_trial, fault.end_trial) == (4, 8)

    def test_idealized_techniques_get_no_window(self):
        assert arena_fault_window("buttons", 12) == ()

    def test_tiny_sessions_still_get_a_nonempty_window(self):
        (fault,) = arena_fault_window("headmouse", 2)
        assert fault.end_trial > fault.start_trial


class TestRegistryAndCLI:
    def test_registry_entry_shards_by_userblocks(self):
        spec = REGISTRY["ARENA"]
        assert spec.sharder == "userblocks"
        assert spec.user_entry == "repro.experiments.arena:run_arena_block"
        assert (
            spec.aggregate_entry == "repro.experiments.arena:finalize_arena"
        )

    def test_arena_spec_scales_the_population(self):
        spec = arena_spec(32, battery="smoke", users_per_shard=8)
        params = dict(spec.params)
        assert params["n_users"] == 32
        assert params["battery"] == "smoke"
        assert spec.users_per_shard == 8

    def test_cli_jobs_parity(self, tmp_path, capsys):
        serial = tmp_path / "serial.csv"
        sharded = tmp_path / "sharded.csv"
        assert main([
            "run", "ARENA", "--users", "4", "--battery", "smoke",
            "--csv", str(serial),
        ]) == 0
        assert main([
            "run", "ARENA", "--users", "4", "--battery", "smoke",
            "--jobs", "2", "--csv", str(sharded),
        ]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == sharded.read_bytes()

    def test_cli_arena_accepts_battery_without_users(self, capsys):
        assert main(["run", "ARENA", "--battery", "smoke"]) == 0
        assert "ARENA" in capsys.readouterr().out

"""REP003 — trace-channel literals must exist in the channel registry.

``Tracer.record("fautls", ...)`` is not an error at runtime — it
cheerfully creates a new empty channel, and every consumer reading the
intended one sees nothing.  The registry in :mod:`repro.sim.channels`
declares every legal channel name; this rule rejects any string literal
passed to a tracer method that is not registered.  Call sites should
normally use the registry *constants* (which this rule never flags,
since a ``Name`` argument is not a literal); a registered literal is
tolerated so tests can spell channels inline.
"""

from __future__ import annotations

import ast
from typing import ClassVar, FrozenSet, Optional

from repro.devtools.base import Rule, attribute_chain

__all__ = ["TraceChannelRegistryRule"]

#: Tracer methods whose first positional argument is a channel name.
_TRACER_METHODS = frozenset(
    {"record", "channel", "get", "subscribe", "unsubscribe"}
)


def _registry() -> FrozenSet[str]:
    from repro.sim.channels import CHANNELS

    return CHANNELS


class TraceChannelRegistryRule(Rule):
    """Flag unregistered channel-name literals at tracer call sites."""

    rule_id = "REP003"
    title = "trace-channel literals must be declared in repro.sim.channels"
    rationale = (
        "Trace channels are part of the golden-file contract: an"
        " undeclared channel string is either a typo (events silently"
        " dropped by consumers) or an unreviewed extension of the trace"
        " schema.  The registry in `repro/sim/channels.py` is the single"
        " source of truth."
    )
    example = 'tracer.record("event", payload)  # typo of "events"'
    escape_hatch = (
        "Declare the channel as a constant in `repro/sim/channels.py`"
        " (and update consumers); test-only channels are baselined with a"
        " justification."
    )

    #: Override for tests (None -> load from ``repro.sim.channels``).
    known_channels: ClassVar[Optional[FrozenSet[str]]] = None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _TRACER_METHODS
            and self._is_tracer(func.value)
            and node.args
        ):
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                known = self.known_channels
                if known is None:
                    known = _registry()
                if arg.value not in known:
                    self.report(
                        arg,
                        f"unregistered trace channel {arg.value!r}: declare"
                        " it in repro/sim/channels.py and use the constant"
                        " (a typo here silently records into a dead"
                        " channel)",
                    )
        self.generic_visit(node)

    @staticmethod
    def _is_tracer(receiver: ast.AST) -> bool:
        """Heuristic: the receiver's terminal name mentions ``tracer``.

        Matches ``tracer.record``, ``self.tracer.get``,
        ``self._tracer.record``, ``device.tracer.subscribe`` — without
        needing type inference.  ``cache.get(...)`` and friends pass.
        """
        chain = attribute_chain(receiver)
        if not chain:
            return False
        return "tracer" in chain[-1].lower()

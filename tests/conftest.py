"""Shared fixtures for the DistScroll reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.hardware.adc import ADC
from repro.sensors.gp2d120 import GP2D120
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for test-local noise."""
    return np.random.default_rng(99)


@pytest.fixture
def ideal_sensor() -> GP2D120:
    """Noise-free datasheet-typical GP2D120."""
    return GP2D120(rng=None)


@pytest.fixture
def ideal_adc() -> ADC:
    """Noise-free 10-bit ADC."""
    return ADC(rng=None)


@pytest.fixture
def flat_labels() -> list[str]:
    """A 10-entry flat menu's labels."""
    return [f"Item {i}" for i in range(10)]


@pytest.fixture
def quiet_device(flat_labels) -> DistScroll:
    """A DistScroll on ideal (noise-free) hardware — deterministic."""
    return DistScroll(build_menu(flat_labels), seed=0, noisy=False)


@pytest.fixture
def noisy_device(flat_labels) -> DistScroll:
    """A DistScroll on realistic noisy hardware."""
    return DistScroll(build_menu(flat_labels), seed=42, noisy=True)


@pytest.fixture
def fast_config() -> DeviceConfig:
    """A configuration tuned for quick tests (higher loop rates)."""
    return DeviceConfig(firmware_hz=100.0, display_refresh_hz=50.0)

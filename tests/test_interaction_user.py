"""Tests for the closed-loop simulated user (the §6 study machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.interaction.gloves import GLOVES
from repro.interaction.user import MotorProfile, SimulatedUser


def make_pair(n=10, seed=5, glove=None, config=None, practiced=True):
    labels = [f"Item {i}" for i in range(n)]
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    rng = np.random.default_rng(seed)
    user = SimulatedUser(
        device=device,
        rng=rng,
        glove=glove or GLOVES["none"],
    )
    if practiced:
        user.practice_trials = 50
    device.run_for(0.5)
    return device, user


class TestSelection:
    def test_selects_requested_entry(self):
        device, user = make_pair()
        result = user.select_entry(6)
        assert result.success
        assert result.duration_s > 0.3

    def test_selects_every_entry_eventually(self):
        device, user = make_pair(n=8)
        for target in range(8):
            result = user.select_entry(target)
            assert result.success, f"failed on entry {target}"

    def test_far_targets_take_longer_than_near(self):
        durations = {1: [], 9: []}
        for seed in range(4):
            device, user = make_pair(n=10, seed=seed)
            user.hand.move_to(device.firmware.aim_distance_for_index(0), 0.3)
            device.run_for(0.5)
            durations[1].append(user.select_entry(1).duration_s)
            user.hand.move_to(device.firmware.aim_distance_for_index(0), 0.3)
            device.run_for(0.5)
            durations[9].append(user.select_entry(9).duration_s)
        assert np.mean(durations[9]) > np.mean(durations[1]) * 0.8

    def test_submenu_selection_descends(self):
        device = DistScroll(
            build_menu({"A": ["a1", "a2"], "B": [], "C": []}), seed=2
        )
        user = SimulatedUser(device=device, rng=np.random.default_rng(2))
        user.practice_trials = 50
        device.run_for(0.5)
        result = user.select_entry(0)  # "A" is a submenu
        assert result.success
        assert device.depth == 1

    def test_trial_records_geometry(self):
        device, user = make_pair()
        result = user.select_entry(5)
        assert result.target_width_cm > 0
        assert result.movement_distance_cm >= 0

    def test_practice_counter_increments(self):
        device, user = make_pair()
        before = user.practice_trials
        user.select_entry(3)
        assert user.practice_trials == before + 1


class TestChunkedSelection:
    def test_pages_to_target_chunk(self):
        config = DeviceConfig(chunk_size=10)
        device, user = make_pair(n=25, config=config)
        result = user.select_entry(17)
        assert result.success
        assert device.firmware.chunk == 1

    def test_returns_to_earlier_chunk(self):
        config = DeviceConfig(chunk_size=10)
        device, user = make_pair(n=25, config=config)
        user.select_entry(17)
        result = user.select_entry(3)
        assert result.success
        assert device.firmware.chunk == 0


class TestGloves:
    def test_arctic_mittens_slower_but_successful(self):
        bare_times, mitten_times = [], []
        for seed in range(3):
            device, user = make_pair(seed=seed)
            bare_times.append(user.select_entry(7).duration_s)
            device, user = make_pair(seed=seed, glove=GLOVES["arctic"])
            result = user.select_entry(7)
            assert result.success
            mitten_times.append(result.duration_s)
        assert np.mean(mitten_times) > np.mean(bare_times)

    def test_mittens_fumble_buttons_sometimes(self):
        misses = 0
        for seed in range(8):
            device, user = make_pair(seed=seed, glove=GLOVES["arctic"])
            result = user.select_entry(4)
            misses += result.button_misses
        assert misses > 0


class TestLearning:
    def test_unpracticed_user_needs_more_submovements(self):
        fresh_subs, trained_subs = [], []
        for seed in range(5):
            device, user = make_pair(seed=seed, practiced=False)
            fresh_subs.append(user.select_entry(7).submovements)
            device, user = make_pair(seed=seed, practiced=True)
            trained_subs.append(user.select_entry(7).submovements)
        assert np.mean(fresh_subs) >= np.mean(trained_subs)

    def test_aim_uncertainty_shrinks_with_practice(self):
        device, user = make_pair(practiced=False)
        fresh = user._aim_uncertainty_factor()
        user.practice_trials = 100
        trained = user._aim_uncertainty_factor()
        assert fresh > trained
        assert trained < 1.15


class TestDiscovery:
    def test_discovery_happens_promptly(self):
        discovered_times = []
        for seed in range(4):
            device, user = make_pair(seed=seed, practiced=False)
            result = user.discover(timeout_s=60.0)
            assert result.discovered
            discovered_times.append(result.time_to_discovery_s)
        assert np.median(discovered_times) < 30.0

    def test_hint_speeds_discovery(self):
        with_hint, without = [], []
        for seed in range(4):
            device, user = make_pair(seed=seed, practiced=False)
            with_hint.append(user.discover(hint_given=True).time_to_discovery_s)
            device, user = make_pair(seed=seed + 100, practiced=False)
            without.append(user.discover(hint_given=False).time_to_discovery_s)
        assert np.mean(with_hint) <= np.mean(without)

    def test_unreadable_display_blocks_discovery(self):
        device, user = make_pair(practiced=False)
        device.board.potentiometer.set_position(0.02)  # washed out
        device.board.apply_contrast()
        result = user.discover(timeout_s=10.0)
        assert not result.discovered


class TestMotorProfile:
    def test_sampled_profiles_vary(self):
        rng = np.random.default_rng(0)
        profiles = [MotorProfile.sample(rng) for _ in range(10)]
        reaction_times = {p.reaction_time_s for p in profiles}
        assert len(reaction_times) == 10

    def test_sampled_profiles_plausible(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = MotorProfile.sample(rng)
            assert 0.1 < p.reaction_time_s < 0.8
            assert 0.0 <= p.impulsivity <= 0.15
            assert 0.05 < p.fitts_b < 0.4

"""Curve fitting for the GP2D120 calibration (Figures 4 and 5).

The paper fits an "idealized curve" through measured (distance, voltage)
samples and reports that in log space the samples "nearly perfectly fit the
curve".  The standard model for Sharp triangulation sensors is the shifted
hyperbola

    V(d) = a / (d + b) + c

which is linear in ``a`` and ``c`` for fixed ``b``; we solve the inner linear
problem exactly and search ``b`` with scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

__all__ = [
    "HyperbolicFit",
    "fit_hyperbola",
    "fit_power_law",
    "r_squared",
    "PowerLawFit",
]


@dataclass(frozen=True)
class HyperbolicFit:
    """Result of fitting ``V(d) = a / (d + b) + c``.

    Attributes
    ----------
    a, b, c:
        Fitted parameters.  ``a`` has units V*cm, ``b`` cm, ``c`` V.
    residual_rms:
        Root-mean-square residual in volts.
    r2:
        Coefficient of determination on the raw (linear-axis) data.
    """

    a: float
    b: float
    c: float
    residual_rms: float
    r2: float

    def voltage(self, distance_cm: np.ndarray | float) -> np.ndarray | float:
        """Predicted voltage at the given distance(s)."""
        return self.a / (np.asarray(distance_cm, dtype=float) + self.b) + self.c

    def distance(self, voltage: np.ndarray | float) -> np.ndarray | float:
        """Invert the fit: distance producing the given voltage(s).

        Only valid for voltages inside the monotone branch (above ``c``).
        """
        v = np.asarray(voltage, dtype=float)
        return self.a / (v - self.c) - self.b


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``V(d) = k * d ** p`` in log-log space (Figure 5)."""

    k: float
    p: float
    r2_log: float

    def voltage(self, distance_cm: np.ndarray | float) -> np.ndarray | float:
        """Predicted voltage at the given distance(s)."""
        # reprolint: allow REP007 (calibration-time curve evaluation with no scalar twin — there is no oracle for SIMD pow to diverge from)
        return self.k * np.asarray(distance_cm, dtype=float) ** self.p


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination of ``predicted`` against ``observed``."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _solve_linear_part(
    distances: np.ndarray, voltages: np.ndarray, b: float
) -> tuple[float, float, float]:
    """For fixed ``b`` solve least-squares for ``a`` and ``c``; return rss."""
    basis = 1.0 / (distances + b)
    design = np.column_stack([basis, np.ones_like(basis)])
    coeffs, _, _, _ = np.linalg.lstsq(design, voltages, rcond=None)
    residuals = voltages - design @ coeffs
    return float(coeffs[0]), float(coeffs[1]), float(np.sum(residuals**2))


def fit_hyperbola(
    distances_cm: np.ndarray,
    voltages: np.ndarray,
    b_bounds: tuple[float, float] = (-2.0, 20.0),
) -> HyperbolicFit:
    """Fit the idealized sensor curve ``V = a/(d+b) + c`` (Figure 4).

    Parameters
    ----------
    distances_cm:
        Distances of the measured samples, in cm.  Must all exceed the lower
        bound of ``b_bounds`` negated (so ``d + b`` stays positive).
    voltages:
        Measured analog voltages at the Smart-Its input port.
    b_bounds:
        Search interval for the distance offset ``b``.

    Returns
    -------
    HyperbolicFit
        Fitted parameters with fit-quality statistics.
    """
    distances = np.asarray(distances_cm, dtype=float)
    voltages_arr = np.asarray(voltages, dtype=float)
    if distances.shape != voltages_arr.shape:
        raise ValueError("distances and voltages must have the same shape")
    if distances.size < 3:
        raise ValueError("need at least 3 samples to fit three parameters")

    lo = max(b_bounds[0], -float(distances.min()) + 1e-3)
    hi = b_bounds[1]
    result = optimize.minimize_scalar(
        lambda b: _solve_linear_part(distances, voltages_arr, b)[2],
        bounds=(lo, hi),
        method="bounded",
    )
    b = float(result.x)
    a, c, rss = _solve_linear_part(distances, voltages_arr, b)
    fit = HyperbolicFit(
        a=a,
        b=b,
        c=c,
        residual_rms=float(np.sqrt(rss / distances.size)),
        r2=r_squared(voltages_arr, a / (distances + b) + c),
    )
    return fit


def fit_power_law(
    distances_cm: np.ndarray, voltages: np.ndarray
) -> PowerLawFit:
    """Fit ``V = k * d**p`` by linear regression in log-log space.

    This is the straight line of Figure 5: on logarithmic axes the measured
    values "nearly perfectly fit the curve".
    """
    distances = np.asarray(distances_cm, dtype=float)
    voltages_arr = np.asarray(voltages, dtype=float)
    if np.any(distances <= 0) or np.any(voltages_arr <= 0):
        raise ValueError("power-law fit needs strictly positive data")
    log_d = np.log(distances)
    log_v = np.log(voltages_arr)
    design = np.column_stack([log_d, np.ones_like(log_d)])
    coeffs, _, _, _ = np.linalg.lstsq(design, log_v, rcond=None)
    p, log_k = float(coeffs[0]), float(coeffs[1])
    predicted = design @ coeffs
    return PowerLawFit(k=float(np.exp(log_k)), p=p, r2_log=r_squared(log_v, predicted))

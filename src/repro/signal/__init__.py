"""Streaming filters and curve fitting shared across the library."""

from repro.signal.filters import (
    ExponentialMovingAverage,
    HysteresisQuantizer,
    MedianFilter,
    MovingAverage,
    RateLimiter,
)
from repro.signal.fitting import (
    HyperbolicFit,
    PowerLawFit,
    fit_hyperbola,
    fit_power_law,
    r_squared,
)

__all__ = [
    "ExponentialMovingAverage",
    "HysteresisQuantizer",
    "MedianFilter",
    "MovingAverage",
    "RateLimiter",
    "HyperbolicFit",
    "PowerLawFit",
    "fit_hyperbola",
    "fit_power_law",
    "r_squared",
]

"""PERF — micro-benchmarks of the simulation substrate itself.

Not a paper figure: these keep the reproduction honest about simulator
throughput (events/second, firmware ticks/second, full closed-loop
trials/second) so regressions in the substrate are caught.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.interaction.user import SimulatedUser
from repro.signal.filters import MedianFilter
from repro.sim.kernel import PeriodicTask, Simulator


def test_bench_event_throughput(benchmark):
    """Raw kernel: schedule-and-run a large batch of events."""

    def run():
        sim = Simulator(seed=0)
        for i in range(10_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def test_bench_periodic_tasks(benchmark):
    """Many interleaved periodic tasks (the hardware polling pattern)."""

    def run():
        sim = Simulator(seed=0)
        counter = [0]

        def tick():
            counter[0] += 1

        for i in range(20):
            PeriodicTask(sim, 0.01 + i * 0.001, tick)
        sim.run_until(10.0)
        return counter[0]

    count = benchmark(run)
    assert count > 5000


def test_bench_device_simulated_second(benchmark):
    """One simulated second of the full device (firmware + displays)."""
    labels = [f"Item {i}" for i in range(10)]

    def run():
        device = DistScroll(build_menu(labels), seed=1)
        device.hold_at(15.0)
        device.run_for(1.0)
        return device.board.mcu.ticks

    ticks = benchmark(run)
    assert ticks >= 49


class _ResortMedian:
    """The pre-fix MedianFilter: re-sorts the whole window every sample."""

    def __init__(self, window: int) -> None:
        self._buffer: deque[float] = deque(maxlen=window)

    def update(self, sample: float) -> float:
        self._buffer.append(float(sample))
        ordered = sorted(self._buffer)
        n = len(ordered)
        if n % 2 == 1:
            return ordered[n // 2]
        return 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])


def test_bench_median_filter_sorted_insert(benchmark):
    """Firmware hot path: the median filter must not re-sort its window.

    Benchmarks the incremental (bisect + insort) filter and asserts it
    both matches the re-sorting reference sample-for-sample and beats it
    on wall clock for a large window — the micro-benchmark regression
    gate for the sorted-insert fix.
    """
    window = 513
    samples = np.random.default_rng(0).normal(size=20_000).tolist()

    def run():
        med = MedianFilter(window)
        total = 0.0
        for sample in samples:
            total += med.update(sample)
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)

    med = MedianFilter(window)
    reference = _ResortMedian(window)
    assert all(
        med.update(s) == reference.update(s) for s in samples[:3000]
    ), "sorted-insert median diverged from the re-sort reference"

    def timed(filter_factory) -> float:
        best = float("inf")
        for _ in range(3):
            filt = filter_factory(window)
            start = time.perf_counter()
            for sample in samples:
                filt.update(sample)
            best = min(best, time.perf_counter() - start)
        return best

    t_insort = timed(MedianFilter)
    t_resort = timed(_ResortMedian)
    assert t_insort < t_resort, (
        f"sorted insert ({t_insort:.3f}s) must beat per-sample re-sort "
        f"({t_resort:.3f}s) on a {window}-sample window"
    )
    assert np.isfinite(total)


def test_bench_closed_loop_trial(benchmark):
    """A complete user selection trial through the whole stack."""
    labels = [f"Item {i}" for i in range(10)]

    def run():
        device = DistScroll(build_menu(labels), seed=1)
        user = SimulatedUser(device=device, rng=np.random.default_rng(1))
        user.practice_trials = 50
        device.run_for(0.5)
        return user.select_entry(7).success

    assert benchmark(run)

#!/usr/bin/env python
"""The altitude-control game of Section 5.2, rendered in ASCII.

An aircraft sits on the left of the 96x40 top display; moving the
DistScroll towards/away from the body flies it up and down through
obstacles (#) and collectibles (o).  The thumb button fires, the other
buttons change speed.  A simulated pilot hand plays a short session and
the final frames are rendered to the terminal.

Run:  python examples/altitude_game.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.game import AltitudeGame, GameConfig
from repro.hardware.board import build_distscroll_board
from repro.interaction.hand import Hand
from repro.sim.kernel import Simulator


def render(board, game) -> str:
    """Downsample the 96x40 framebuffer to an 48x10 terminal view."""
    frame = board.display_top.framebuffer
    rows = []
    for r in range(0, 40, 4):
        row = []
        for c in range(0, 96, 2):
            block = frame[r : r + 4, c : c + 2]
            row.append("#" if block.any() else " ")
        rows.append("".join(row))
    return "\n".join("|" + row + "|" for row in rows)


def main() -> None:
    sim = Simulator(seed=2025)
    board = build_distscroll_board(sim)
    game = AltitudeGame(board, config=GameConfig(obstacle_rate_hz=2.0))
    rng = np.random.default_rng(1)
    hand = Hand(
        sim,
        lambda d: board.set_pose(distance_cm=d),
        start_cm=16.0,
        rng=sim.spawn_rng(),
    )

    print("Altitude game (Section 5.2) — a simulated pilot plays 20 s")
    print("==========================================================")

    from repro.apps.game import ReactivePilot

    pilot = ReactivePilot(game, hand, rng)
    for second in range(20):
        sim.run_until(sim.now + 1.0)
        if second % 4 == 3:
            print(f"\nt={sim.now:4.1f}s  score={game.state.score}  "
                  f"hits={game.state.collisions}/3  "
                  f"collected={game.state.collected}")
            print(render(board, game))

    state = game.state
    print("\nFinal score sheet")
    print(f"  score: {state.score}")
    print(f"  obstacles dodged/destroyed: "
          f"{state.score - 5 * state.collected + 3 * state.collisions}")
    print(f"  collectibles: {state.collected}")
    print(f"  shots fired: {state.shots_fired}")
    print(f"  collisions: {state.collisions} -> "
          f"{'GAME OVER' if state.game_over else 'survived'}")
    print("\nBottom display:")
    for line in board.display_bottom.lines:
        print(f"  |{line:<16}|")


if __name__ == "__main__":
    main()

"""FIG5 — the sensor curve on logarithmic axes.

Regenerates Figure 5: "Visualization of the sensor values using
logarithmic axis.  The measured values (asterisks) nearly perfectly fit
the curve."  On log-log axes the GP2D120 response is almost a straight
line (a power law); the reproduction criterion is the near-perfect fit —
R² in log space ≳ 0.99.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.fig4 import run_fig4
from repro.experiments.harness import ExperimentResult

__all__ = ["run_fig5"]


def run_fig5(seed: int = 0, readings_per_point: int = 16) -> ExperimentResult:
    """Run the sweep and report the log-space fit of Figure 5."""
    _, calibration = run_fig4(seed=seed, readings_per_point=readings_per_point)
    power = calibration.power_law

    result = ExperimentResult(
        experiment_id="FIG5",
        title="GP2D120 response on logarithmic axes (power-law fit)",
        columns=("log10_distance", "log10_measured_V", "log10_fitted_V"),
    )
    for sample in calibration.samples:
        fitted = float(power.voltage(sample.distance_cm))
        result.add_row(
            math.log10(sample.distance_cm),
            math.log10(max(sample.mean_voltage, 1e-9)),
            math.log10(max(fitted, 1e-9)),
        )
    result.note(
        f"power law: V = {power.k:.2f} * d^{power.p:.3f}  "
        f"(log-space R^2 = {power.r2_log:.4f})"
    )
    result.note(
        "paper: 'the measured values nearly perfectly fit the curve' — "
        "reproduced when log-space R^2 exceeds 0.99"
    )
    # Residual spread in log space, the visual 'distance from the line'.
    log_meas = np.array([r[1] for r in result.rows])
    log_fit = np.array([r[2] for r in result.rows])
    result.note(
        f"max |log residual| = {float(np.max(np.abs(log_meas - log_fit))):.4f} dex"
    )
    return result

"""Property suite for the streaming aggregation layer.

The laws under test are the ones the sharded runner relies on: for
every sketch in :mod:`repro.analysis.stats`, ``merge()`` must be
*exactly* associative and commutative with a fresh instance as
identity — at the level of serialized bytes, not approximate floats —
and the streamed statistics must match an exact reference computation.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import CellCounter, QuantileSketch, StreamingMoments

#: Finite, non-NaN observations of mixed magnitude and sign.
finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
float_lists = st.lists(finite_floats, min_size=0, max_size=60)
#: Strictly interior to the default sketch range [1e-3, 1e3), where the
#: one-bin rank-error bound applies (under/overflow clamp to min/max).
interior_floats = st.floats(min_value=1e-3, max_value=900.0)
cell_keys = st.sampled_from(
    ["adult/steady", "senior/tremor", "young/low-dexterity", "adult/arctic"]
)


def snapshot_bytes(aggregate) -> bytes:
    return json.dumps(aggregate.snapshot(), sort_keys=True).encode()


def moments_of(values) -> StreamingMoments:
    moments = StreamingMoments()
    for value in values:
        moments.add(value)
    return moments


def sketch_of(values) -> QuantileSketch:
    sketch = QuantileSketch()
    for value in values:
        sketch.add(value)
    return sketch


def counter_of(keys) -> CellCounter:
    counter = CellCounter()
    for key in keys:
        counter.add(key)
    return counter


@st.composite
def values_and_partition(draw, elements=finite_floats):
    """A value list plus an arbitrary ordered partition of it."""
    values = draw(st.lists(elements, min_size=0, max_size=40))
    cuts = draw(
        st.lists(
            st.integers(0, len(values)), min_size=0, max_size=6
        ).map(sorted)
    )
    bounds = [0, *cuts, len(values)]
    chunks = [
        values[bounds[i]:bounds[i + 1]] for i in range(len(bounds) - 1)
    ]
    return values, chunks


class TestMergeLaws:
    """Associativity, commutativity, identity — for every aggregate."""

    @given(float_lists, float_lists, float_lists)
    def test_moments_associative(self, a, b, c):
        x, y, z = moments_of(a), moments_of(b), moments_of(c)
        assert snapshot_bytes(x.merge(y).merge(z)) == snapshot_bytes(
            x.merge(y.merge(z))
        )

    @given(float_lists, float_lists)
    def test_moments_commutative(self, a, b):
        x, y = moments_of(a), moments_of(b)
        assert snapshot_bytes(x.merge(y)) == snapshot_bytes(y.merge(x))

    @given(float_lists)
    def test_moments_identity(self, a):
        x = moments_of(a)
        assert snapshot_bytes(x.merge(StreamingMoments())) == snapshot_bytes(x)
        assert snapshot_bytes(StreamingMoments().merge(x)) == snapshot_bytes(x)

    @given(float_lists, float_lists, float_lists)
    def test_sketch_associative(self, a, b, c):
        x, y, z = sketch_of(a), sketch_of(b), sketch_of(c)
        assert snapshot_bytes(x.merge(y).merge(z)) == snapshot_bytes(
            x.merge(y.merge(z))
        )

    @given(float_lists, float_lists)
    def test_sketch_commutative(self, a, b):
        x, y = sketch_of(a), sketch_of(b)
        assert snapshot_bytes(x.merge(y)) == snapshot_bytes(y.merge(x))

    @given(float_lists)
    def test_sketch_identity(self, a):
        x = sketch_of(a)
        assert snapshot_bytes(x.merge(QuantileSketch())) == snapshot_bytes(x)

    @given(st.lists(cell_keys, max_size=30), st.lists(cell_keys, max_size=30),
           st.lists(cell_keys, max_size=30))
    def test_counter_associative_commutative(self, a, b, c):
        x, y, z = counter_of(a), counter_of(b), counter_of(c)
        assert snapshot_bytes(x.merge(y).merge(z)) == snapshot_bytes(
            x.merge(y.merge(z))
        )
        assert snapshot_bytes(x.merge(y)) == snapshot_bytes(y.merge(x))
        assert snapshot_bytes(x.merge(CellCounter())) == snapshot_bytes(x)


class TestStreamingVsExact:
    """Streamed moments equal an exact rational reference computation."""

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_mean_is_correctly_rounded(self, values):
        moments = moments_of(values)
        exact = sum((Fraction(v) for v in values), Fraction(0)) / len(values)
        assert moments.mean == float(exact)
        # And therefore within an ulp or two of the fsum-based mean.
        fsum_mean = math.fsum(values) / len(values)
        tolerance = 4 * math.ulp(max(abs(fsum_mean), 1e-300))
        assert abs(moments.mean - fsum_mean) <= tolerance

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    def test_variance_is_correctly_rounded(self, values):
        moments = moments_of(values)
        n = len(values)
        total = sum((Fraction(v) for v in values), Fraction(0))
        sumsq = sum((Fraction(v) ** 2 for v in values), Fraction(0))
        exact = (sumsq - total * total / n) / (n - 1)
        assert moments.variance == float(max(exact, Fraction(0)))

    @given(float_lists)
    def test_min_max_exact(self, values):
        moments = moments_of(values)
        if not values:
            assert moments.mean is None and moments.min is None
        else:
            assert moments.min == min(values)
            assert moments.max == max(values)


class TestQuantileRankError:
    """Sketch quantiles land within one bin of the empirical quantile."""

    @settings(max_examples=200)
    @given(
        st.lists(interior_floats, min_size=1, max_size=80),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_one_bin_multiplicative_bound(self, values, q):
        sketch = sketch_of(values)
        estimate = sketch.quantile(q)
        rank = max(1, math.ceil(q * len(values)))
        truth = sorted(values)[rank - 1]
        factor = 10.0 ** (1.0 / sketch.bins_per_decade)
        assert truth / factor * (1 - 1e-12) <= estimate
        assert estimate <= truth * factor * (1 + 1e-12)

    @given(st.lists(interior_floats, min_size=1, max_size=80))
    def test_extremes_are_exact(self, values):
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) == pytest.approx(min(values), rel=1.2)
        # Estimates never escape the observed range.
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            estimate = sketch.quantile(q)
            assert min(values) <= estimate <= max(values)

    def test_empty_sketch_has_no_quantiles(self):
        assert QuantileSketch().quantile(0.5) is None
        assert QuantileSketch().median is None

    def test_incompatible_specs_refuse_to_merge(self):
        with pytest.raises(ValueError):
            QuantileSketch(1e-3, 1e3, 16).merge(QuantileSketch(1e-2, 1e3, 16))


class TestShardSplitInvariance:
    """Any partition of the stream merges to the same bytes."""

    @given(values_and_partition())
    def test_moments_partition_invariant(self, case):
        values, chunks = case
        whole = moments_of(values)
        parts = [moments_of(chunk) for chunk in chunks]
        merged = StreamingMoments()
        for part in parts:
            merged = merged.merge(part)
        assert snapshot_bytes(merged) == snapshot_bytes(whole)
        backwards = StreamingMoments()
        for part in reversed(parts):
            backwards = backwards.merge(part)
        assert snapshot_bytes(backwards) == snapshot_bytes(whole)

    @given(values_and_partition())
    def test_sketch_partition_invariant(self, case):
        values, chunks = case
        whole = sketch_of(values)
        merged = QuantileSketch()
        for chunk in chunks:
            merged = merged.merge(sketch_of(chunk))
        assert snapshot_bytes(merged) == snapshot_bytes(whole)

    @given(values_and_partition(elements=cell_keys))
    def test_counter_partition_invariant(self, case):
        keys, chunks = case
        whole = counter_of(keys)
        merged = CellCounter()
        for chunk in reversed(chunks):
            merged = merged.merge(counter_of(chunk))
        assert snapshot_bytes(merged) == snapshot_bytes(whole)


class TestRoundTrips:
    """snapshot()/from_snapshot() are exact inverses."""

    @given(float_lists)
    def test_moments_roundtrip(self, values):
        moments = moments_of(values)
        clone = StreamingMoments.from_snapshot(moments.snapshot())
        assert snapshot_bytes(clone) == snapshot_bytes(moments)

    @given(float_lists)
    def test_sketch_roundtrip(self, values):
        sketch = sketch_of(values)
        clone = QuantileSketch.from_snapshot(sketch.snapshot())
        assert snapshot_bytes(clone) == snapshot_bytes(sketch)

    @given(st.lists(cell_keys, max_size=30))
    def test_counter_roundtrip(self, keys):
        counter = counter_of(keys)
        clone = CellCounter.from_snapshot(counter.snapshot())
        assert snapshot_bytes(clone) == snapshot_bytes(counter)
        assert clone.total() == len(keys)

"""ABL-MAP — ablating the two island-mapping design choices (§4.2).

The paper motivates two choices; this experiment removes each:

* **equal-distance placement** vs. the naive equal-code placement
  ("we could not choose a linear mapping ... many entities would be
  scrolled with only a small amount of movement" near the body) — the
  ablation measures the spacing non-uniformity and the error
  concentration at the near end;
* **gaps between islands** vs. full coverage ("no selection or change
  happens if the device is held in a distance between two of those
  islands") — the ablation measures selection flicker on boundaries.

Reported per variant: spacing CV, hold-still flicker at a boundary, and
closed-loop selection error rates for near vs. far targets.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.islands import Placement, build_island_map
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.hardware.adc import ADC
from repro.interaction.user import SimulatedUser
from repro.sensors.gp2d120 import GP2D120

__all__ = ["run_ablation_mapping"]

_VARIANTS: tuple[tuple[str, Placement, float], ...] = (
    ("paper (equal-dist + gaps)", Placement.EQUAL_DISTANCE, 0.62),
    ("no gaps (full coverage)", Placement.FULL_COVERAGE, 1.0),
    ("naive (equal-code + gaps)", Placement.EQUAL_CODE, 0.62),
)


def run_ablation_mapping(
    seed: int = 0,
    n_entries: int = 12,
    n_trials: int = 8,
    n_users: int = 3,
) -> ExperimentResult:
    """Compare the paper's mapping against both ablated variants."""
    result = ExperimentResult(
        experiment_id="ABL-MAP",
        title="Island-mapping ablation",
        columns=(
            "variant",
            "spacing_cv",
            "boundary_flicker_hz",
            "near_wrong_per_trial",
            "far_wrong_per_trial",
            "mean_trial_s",
        ),
    )
    master = np.random.default_rng(seed)

    for label, placement, fill in _VARIANTS:
        spacing_cv = _spacing_cv(placement, fill, n_entries)
        flicker = _boundary_flicker(seed, placement, fill, n_entries)
        near_wrong, far_wrong, mean_time = _closed_loop(
            master, placement, fill, n_entries, n_trials, n_users
        )
        result.add_row(
            label, spacing_cv, flicker, near_wrong, far_wrong, mean_time
        )

    result.note(
        "equal-code placement concentrates errors on near targets (steep "
        "curve end); full coverage flickers on boundaries — both ablations "
        "lose to the paper's design"
    )
    return result


def _spacing_cv(placement: Placement, fill: float, n_entries: int) -> float:
    island_map = build_island_map(
        GP2D120(rng=None), ADC(rng=None), n_entries,
        island_fill=fill, placement=placement,
    )
    spacings = island_map.distance_spacings()
    return float(spacings.std() / spacings.mean())


def _boundary_flicker(
    seed: int, placement: Placement, fill: float, n_entries: int
) -> float:
    """Highlight changes/s holding exactly on an island boundary."""
    config = DeviceConfig(placement=placement, island_fill=fill,
                          smoothing_window=1)
    labels = [f"Item {i}" for i in range(n_entries)]
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    island_map = device.firmware.island_map
    mid = island_map.n_slots // 2
    d1 = island_map.center_distance(mid - 1)
    d2 = island_map.center_distance(mid)
    device.hold_at((d1 + d2) / 2.0)
    device.run_for(0.5)
    before = sum(1 for _, e in device.events() if e.kind == "HighlightChanged")
    hold = 5.0
    device.run_for(hold)
    after = sum(1 for _, e in device.events() if e.kind == "HighlightChanged")
    return (after - before) / hold


def _closed_loop(
    master: np.random.Generator,
    placement: Placement,
    fill: float,
    n_entries: int,
    n_trials: int,
    n_users: int,
) -> tuple[float, float, float]:
    config = DeviceConfig(placement=placement, island_fill=fill)
    labels = [f"Item {i}" for i in range(n_entries)]
    near_wrong: list[int] = []
    far_wrong: list[int] = []
    times: list[float] = []
    near_cutoff = n_entries // 3
    for _ in range(n_users):
        user_seed = int(master.integers(2**31))
        rng = np.random.default_rng(user_seed)
        device = DistScroll(build_menu(labels), config=config, seed=user_seed)
        user = SimulatedUser(device=device, rng=rng)
        user.practice_trials = 30
        device.run_for(0.5)
        targets = list(rng.integers(0, n_entries, size=n_trials))
        for target in targets:
            target = int(target)
            trial = user.select_entry(target)
            times.append(trial.duration_s)
            # "Near" in hand terms = the body end of the range.  Slot 0 is
            # nearest; under the default towards-down polarity that is the
            # *last* index.
            if target >= n_entries - near_cutoff:
                near_wrong.append(trial.wrong_activations)
            elif target < near_cutoff:
                far_wrong.append(trial.wrong_activations)
            while device.depth > 0:
                device.click("back")
    return (
        float(np.mean(near_wrong)) if near_wrong else 0.0,
        float(np.mean(far_wrong)) if far_wrong else 0.0,
        float(np.mean(times)),
    )

"""Hierarchical menu data structures navigated by the DistScroll.

The paper's central use case is "navigating data structures or browsing
menus": a tree of entries where the distance sensor drives the highlight
within one level, the select button descends into submenus (or activates a
leaf), and the back button ascends (Section 5.1; the initial study
"simulated a fictive mobile phone menu").

:class:`MenuEntry` is an immutable tree node; :class:`MenuCursor` is the
mutable navigation state the firmware owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["MenuEntry", "MenuCursor", "build_menu", "flatten_paths"]


@dataclass(frozen=True)
class MenuEntry:
    """One node of a menu tree.

    Attributes
    ----------
    label:
        Text shown on the display (truncated to the panel width there).
    children:
        Sub-entries; empty for leaves.
    action:
        Optional identifier reported when a leaf is activated.
    """

    label: str
    children: tuple["MenuEntry", ...] = ()
    action: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this entry has no sub-menu."""
        return not self.children

    def child(self, label: str) -> "MenuEntry":
        """Find a direct child by label.

        Raises
        ------
        KeyError
            If no child carries the label.
        """
        for entry in self.children:
            if entry.label == label:
                return entry
        raise KeyError(f"{self.label!r} has no child {label!r}")

    def walk(self) -> Iterator["MenuEntry"]:
        """Depth-first iteration over this node and all descendants."""
        yield self
        for entry in self.children:
            yield from entry.walk()

    def count_entries(self) -> int:
        """Total number of nodes in the subtree (including this one)."""
        return sum(1 for _ in self.walk())

    def max_depth(self) -> int:
        """Depth of the deepest leaf (a lone leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.max_depth() for child in self.children)

    def max_fanout(self) -> int:
        """Largest number of siblings at any level of the subtree."""
        fanout = len(self.children)
        for child in self.children:
            fanout = max(fanout, child.max_fanout())
        return fanout


def build_menu(spec: dict | list | tuple, label: str = "root") -> MenuEntry:
    """Build a menu tree from nested dicts/lists.

    ``{"Messages": ["Inbox", "Outbox"], "Settings": {"Sound": [...]}}``
    becomes a two-level tree.  Strings become leaves whose ``action`` is
    the lower-cased label.

    Example
    -------
    >>> menu = build_menu({"A": ["x", "y"], "B": []})
    >>> [e.label for e in menu.children]
    ['A', 'B']
    """
    if isinstance(spec, dict):
        children = tuple(build_menu(sub, label=name) for name, sub in spec.items())
        return MenuEntry(label=label, children=children)
    if isinstance(spec, (list, tuple)):
        children = []
        for item in spec:
            if isinstance(item, str):
                children.append(
                    MenuEntry(label=item, action=item.lower().replace(" ", "_"))
                )
            elif isinstance(item, MenuEntry):
                children.append(item)
            else:
                children.append(build_menu(item, label="?"))
        return MenuEntry(label=label, children=tuple(children))
    raise TypeError(f"cannot build a menu from {type(spec).__name__}")


def flatten_paths(root: MenuEntry) -> list[tuple[str, ...]]:
    """All root-to-leaf label paths — the task pool for selection studies."""
    paths: list[tuple[str, ...]] = []

    def descend(entry: MenuEntry, prefix: tuple[str, ...]) -> None:
        if entry.is_leaf:
            paths.append(prefix + (entry.label,))
            return
        for child in entry.children:
            descend(child, prefix + (entry.label,))

    for child in root.children:
        descend(child, ())
    return paths


@dataclass
class MenuCursor:
    """Mutable navigation state over a menu tree.

    The cursor tracks the path of entered submenus and the highlighted
    index within the current level.  The firmware moves the highlight from
    the distance sensor and calls :meth:`select` / :meth:`back` from the
    buttons.

    Attributes
    ----------
    root:
        The tree being navigated.
    on_activate:
        Callback invoked with the activated leaf when select is pressed on
        a leaf entry.
    """

    root: MenuEntry
    on_activate: Optional[Callable[[MenuEntry], None]] = None
    _path: list[MenuEntry] = field(default_factory=list, init=False)
    _highlight: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.root.is_leaf:
            raise ValueError("menu root must have at least one child")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def current_level(self) -> MenuEntry:
        """The entry whose children are currently listed."""
        return self._path[-1] if self._path else self.root

    @property
    def entries(self) -> tuple[MenuEntry, ...]:
        """Entries of the current level."""
        return self.current_level.children

    @property
    def highlight(self) -> int:
        """Index of the highlighted entry within the current level."""
        return self._highlight

    @property
    def highlighted_entry(self) -> MenuEntry:
        """The highlighted entry object."""
        return self.entries[self._highlight]

    @property
    def depth(self) -> int:
        """How many submenus have been entered (0 at the root level)."""
        return len(self._path)

    @property
    def breadcrumb(self) -> tuple[str, ...]:
        """Labels of the entered submenus."""
        return tuple(entry.label for entry in self._path)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_highlight(self, index: int) -> bool:
        """Move the highlight; out-of-range values clamp.

        Returns ``True`` if the highlight actually changed.
        """
        clamped = max(0, min(int(index), len(self.entries) - 1))
        changed = clamped != self._highlight
        self._highlight = clamped
        return changed

    def select(self) -> Optional[MenuEntry]:
        """Activate the highlighted entry.

        Entering a submenu returns ``None``; activating a leaf returns the
        leaf (and fires ``on_activate``).
        """
        entry = self.highlighted_entry
        if entry.is_leaf:
            if self.on_activate is not None:
                self.on_activate(entry)
            return entry
        self._path.append(entry)
        self._highlight = 0
        return None

    def back(self) -> bool:
        """Leave the current submenu; returns ``False`` at the root."""
        if not self._path:
            return False
        left = self._path.pop()
        # Restore the highlight onto the submenu we just left.
        for i, entry in enumerate(self.entries):
            if entry is left:
                self._highlight = i
                break
        else:
            self._highlight = 0
        return True

    def reset(self) -> None:
        """Return to the root level with the first entry highlighted."""
        self._path.clear()
        self._highlight = 0

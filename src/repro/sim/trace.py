"""Trace recording for simulation runs.

A :class:`Tracer` collects timestamped records from any component that wants
to publish what it is doing — sensor samples, firmware selections, button
presses, display updates.  Experiments replay these traces into the series
the paper plots; tests assert on them.

Records are plain tuples ``(time, channel, value)`` so traces stay cheap to
collect even in long runs, and can be converted to numpy arrays per channel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterator, Optional

import numpy as np

__all__ = ["Tracer", "TraceChannel"]


class TraceChannel:
    """A single named stream of ``(time, value)`` records."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[Any] = []

    def append(self, time: float, value: Any) -> None:
        """Record one sample."""
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, Any]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array (object dtype if heterogeneous)."""
        try:
            return np.asarray(self._values, dtype=float)
        except (TypeError, ValueError):
            return np.asarray(self._values, dtype=object)

    def last(self) -> tuple[float, Any]:
        """The most recent ``(time, value)`` record."""
        if not self._times:
            raise LookupError(f"channel {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def between(self, t0: float, t1: float) -> list[tuple[float, Any]]:
        """Records with ``t0 <= time <= t1``."""
        return [
            (t, v)
            for t, v in zip(self._times, self._values)
            if t0 <= t <= t1
        ]

    def count_changes(self) -> int:
        """Number of times the recorded value changed between samples."""
        changes = 0
        previous: Any = _SENTINEL
        for value in self._values:
            if previous is not _SENTINEL and value != previous:
                changes += 1
            previous = value
        return changes


_SENTINEL = object()


class Tracer:
    """A set of named trace channels plus optional live subscribers.

    Components call :meth:`record`; anything interested in live updates (for
    example a simulated user watching the display) can :meth:`subscribe` to a
    channel and receives ``(time, value)`` callbacks synchronously.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._channels: dict[str, TraceChannel] = {}
        self._subscribers: dict[str, list[Callable[[float, Any], None]]] = (
            defaultdict(list)
        )

    def channel(self, name: str) -> TraceChannel:
        """Get (creating if needed) the channel with this name."""
        if name not in self._channels:
            self._channels[name] = TraceChannel(name)
        return self._channels[name]

    def record(self, name: str, time: float, value: Any) -> None:
        """Append a record and notify subscribers.

        Subscribers are notified even when recording is disabled, because
        they model *in-simulation* observers rather than offline analysis.
        """
        if self.enabled:
            self.channel(name).append(time, value)
        for callback in self._subscribers.get(name, ()):
            callback(time, value)

    def subscribe(self, name: str, callback: Callable[[float, Any], None]) -> None:
        """Register a live callback for a channel."""
        self._subscribers[name].append(callback)

    def unsubscribe(self, name: str, callback: Callable[[float, Any], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._subscribers[name].remove(callback)
        except ValueError:
            pass

    def channels(self) -> list[str]:
        """Names of all channels that have been touched."""
        return sorted(self._channels)

    def get(self, name: str) -> Optional[TraceChannel]:
        """The channel if it exists, else ``None`` (does not create)."""
        return self._channels.get(name)

    def clear(self) -> None:
        """Drop all recorded data (subscribers stay registered)."""
        self._channels.clear()

    def serialize(self) -> bytes:
        """Stable byte serialization of every channel.

        Channels are emitted in sorted name order, records in insertion
        order, each as ``repr(time)|repr(value)``.  Two runs of the same
        seeded simulation must produce byte-identical serializations —
        the determinism regression tests compare exactly these bytes.

        Framing is unambiguous: every chunk (channel name, record) is
        length-prefixed with a 4-byte big-endian count, and each channel
        header carries its record count.  A separator-joined encoding
        cannot distinguish a channel name containing the separator (or an
        empty channel followed by another) from adjacent records; the
        length-prefixed form can, so distinct trace contents always yield
        distinct bytes.
        """
        out = bytearray()
        channel_names = self.channels()
        out += len(channel_names).to_bytes(4, "big")
        for name in channel_names:
            name_bytes = name.encode("utf-8")
            channel = self._channels[name]
            out += len(name_bytes).to_bytes(4, "big")
            out += name_bytes
            out += len(channel).to_bytes(4, "big")
            for time, value in channel:
                record = f"{time!r}|{value!r}".encode("utf-8")
                out += len(record).to_bytes(4, "big")
                out += record
        return bytes(out)

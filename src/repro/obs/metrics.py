"""Typed metric instruments with deterministic, mergeable snapshots.

Three instrument kinds cover everything the simulation wants to count:

``Counter``
    A monotonically increasing integer (events dispatched, ADC
    conversions, plausibility rejections).
``Gauge``
    A last-value-wins sample tagged with the sim time it was taken at
    (battery voltage, queue depth).  Merging keeps the latest sample.
``Histogram``
    A fixed set of log-spaced bins (no dynamic resizing, so two shards
    that never exchanged data still agree on bin edges) plus exact
    count/sum/min/max.

Determinism rules baked into this module:

* No instrument ever reads a wall clock — times are always passed in by
  the caller and are sim times (reprolint REP001 applies here like
  everywhere else).
* Histogram sums are exact rationals.  Python floats are dyadic
  rationals, so each observation is an integer over a power of two and
  the sum accumulates as scaled integers (exposed as a
  :class:`fractions.Fraction`) — which makes :func:`merge_snapshots`
  genuinely associative **and** commutative, not just approximately
  so.  The hypothesis property tests in
  ``tests/test_obs_properties.py`` exercise exactly this.
* Snapshots are plain JSON-safe dicts with sorted keys, so serializing
  a merged snapshot is byte-identical regardless of shard arrival
  order.
"""

from __future__ import annotations

import bisect
import math
from fractions import Fraction
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_snapshots",
    "SNAPSHOT_VERSION",
]

#: Version stamp embedded in observability payloads.
SNAPSHOT_VERSION = 1

#: Default histogram range: 1e-7 .. 1e3 covers everything the sim
#: observes (microsecond I2C transfers up to thousands of MCU cycles
#: is handled by per-call ranges).
_DEFAULT_LOW = 1e-7
_DEFAULT_HIGH = 1e3
_DEFAULT_BINS_PER_DECADE = 3


def _log_edges(low: float, high: float, bins_per_decade: int) -> list[float]:
    """Bin edges ``low * 10**(i / bins_per_decade)`` spanning [low, high]."""
    decades = math.log10(high / low)
    n = max(1, round(decades * bins_per_decade))
    return [low * 10.0 ** (i / bins_per_decade) for i in range(n + 1)]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be positive — counters never go down)."""
        if n <= 0:
            raise ValueError(f"counter increment must be positive, got {n}")
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state for serialization and merging."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins sample tagged with the sim time it was taken."""

    __slots__ = ("name", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last: Optional[tuple[float, float]] = None

    def set(self, value: float, time: float) -> None:
        """Record ``value`` observed at sim ``time``."""
        self.last = (float(time), float(value))

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state for serialization and merging."""
        last = None if self.last is None else [self.last[0], self.last[1]]
        return {"type": "gauge", "last": last}


class Histogram:
    """Fixed log-spaced bins plus exact count/sum/min/max.

    The bin layout is fully determined by ``(low, high,
    bins_per_decade)``: an underflow bin, ``round(log10(high / low) *
    bins_per_decade)`` interior bins, and an overflow bin.  Because the
    layout never adapts to the data, any two histograms with the same
    spec merge by elementwise addition.
    """

    __slots__ = (
        "name",
        "low",
        "high",
        "bins_per_decade",
        "_edges",
        "counts",
        "count",
        "_sum_num",
        "_sum_shift",
        "min",
        "max",
        "_memo_value",
        "_memo_bin",
        "_memo_num",
        "_memo_k",
    )

    def __init__(
        self,
        name: str,
        low: float = _DEFAULT_LOW,
        high: float = _DEFAULT_HIGH,
        bins_per_decade: int = _DEFAULT_BINS_PER_DECADE,
    ) -> None:
        if not (0.0 < low < high):
            raise ValueError(f"need 0 < low < high, got {low}..{high}")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.bins_per_decade = int(bins_per_decade)
        self._edges = _log_edges(self.low, self.high, self.bins_per_decade)
        # counts[0] is underflow, counts[-1] is overflow.
        self.counts = [0] * (len(self._edges) + 1)
        self.count = 0
        # Exact sum kept as _sum_num / 2**_sum_shift.  Every finite float
        # is a dyadic rational, so accumulating the integer numerator at a
        # common power-of-two scale is exactly the Fraction sum — without
        # paying Fraction's per-observe gcd normalization on the hot path.
        self._sum_num = 0
        self._sum_shift = 0
        # Single-entry memo of the last observed value's (bin index,
        # numerator, denominator shift).  Instrumented loops often feed a
        # histogram the same value every tick (modeled stage costs are
        # constants), and a repeat cannot change min/max — so the repeat
        # path skips the NaN check, the bisect and as_integer_ratio.
        self._memo_value: Optional[float] = None
        self._memo_bin = 0
        self._memo_num = 0
        self._memo_k = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @property
    def edges(self) -> list[float]:
        """Interior bin edges (underflow is below ``edges[0]``)."""
        return list(self._edges)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if value == self._memo_value:
            self.counts[self._memo_bin] += 1
            self.count += 1
            num, shift = self._memo_num, self._memo_k
        else:
            if math.isnan(value):
                raise ValueError(
                    f"histogram {self.name!r}: NaN observation"
                )
            num, den = value.as_integer_ratio()
            shift = den.bit_length() - 1
            index = bisect.bisect_right(self._edges, value)
            self.counts[index] += 1
            self.count += 1
            self._memo_value = value
            self._memo_bin = index
            self._memo_num = num
            self._memo_k = shift
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
        if shift > self._sum_shift:
            self._sum_num = (
                self._sum_num << (shift - self._sum_shift)
            ) + num
            self._sum_shift = shift
        else:
            self._sum_num += num << (self._sum_shift - shift)

    @property
    def sum(self) -> Fraction:
        """Exact sum of all observations as a normalized rational."""
        return Fraction(self._sum_num, 1 << self._sum_shift)

    @property
    def mean(self) -> Optional[float]:
        """Exact mean of all observations (``None`` when empty)."""
        if self.count == 0:
            return None
        return float(self.sum / self.count)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state for serialization and merging.

        The exact sum is carried as an ``[numerator, denominator]``
        integer pair so merged snapshots stay exact through JSON.
        """
        total = self.sum
        return {
            "type": "histogram",
            "low": self.low,
            "high": self.high,
            "bins_per_decade": self.bins_per_decade,
            "counts": list(self.counts),
            "count": self.count,
            "sum": [total.numerator, total.denominator],
            "min": self.min,
            "max": self.max,
        }


class MetricRegistry:
    """Name-keyed home for all instruments of one observed run.

    Mirrors the trace-channel registry philosophy: an instrument is
    created on first use and is unique per name; asking for an existing
    name with a different instrument kind is an error (a typo'd name
    silently splitting a metric in two is the failure mode this
    prevents).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter: Counter = self._get(name, Counter, lambda: Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge: Gauge = self._get(name, Gauge, lambda: Gauge(name))
        return gauge

    def histogram(
        self,
        name: str,
        low: float = _DEFAULT_LOW,
        high: float = _DEFAULT_HIGH,
        bins_per_decade: int = _DEFAULT_BINS_PER_DECADE,
    ) -> Histogram:
        """Get or create the histogram ``name``.

        The spec ``(low, high, bins_per_decade)`` applies on first use
        only; later calls get the existing instrument regardless.
        """
        histogram: Histogram = self._get(
            name,
            Histogram,
            lambda: Histogram(
                name, low=low, high=high, bins_per_decade=bins_per_decade
            ),
        )
        return histogram

    def names(self) -> list[str]:
        """Sorted names of all registered instruments."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        """The instrument if registered, else ``None``."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """All instruments serialized, keys sorted for stable bytes."""
        return {
            name: self._metrics[name].snapshot() for name in self.names()
        }


def _merge_entry(
    name: str, a: dict[str, Any], b: dict[str, Any]
) -> dict[str, Any]:
    if a["type"] != b["type"]:
        raise ValueError(
            f"metric {name!r}: cannot merge {a['type']} with {b['type']}"
        )
    if a["type"] == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if a["type"] == "gauge":
        pairs = [
            tuple(entry["last"])
            for entry in (a, b)
            if entry["last"] is not None
        ]
        last = list(max(pairs)) if pairs else None
        return {"type": "gauge", "last": last}
    # Histogram.
    spec_a = (a["low"], a["high"], a["bins_per_decade"])
    spec_b = (b["low"], b["high"], b["bins_per_decade"])
    if spec_a != spec_b:
        raise ValueError(
            f"histogram {name!r}: incompatible bin specs "
            f"{spec_a} vs {spec_b}"
        )
    total = Fraction(a["sum"][0], a["sum"][1]) + Fraction(
        b["sum"][0], b["sum"][1]
    )
    mins = [entry["min"] for entry in (a, b) if entry["min"] is not None]
    maxes = [entry["max"] for entry in (a, b) if entry["max"] is not None]
    return {
        "type": "histogram",
        "low": a["low"],
        "high": a["high"],
        "bins_per_decade": a["bins_per_decade"],
        "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
        "count": a["count"] + b["count"],
        "sum": [total.numerator, total.denominator],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def merge_snapshots(
    a: dict[str, Any], b: dict[str, Any]
) -> dict[str, Any]:
    """Merge two registry snapshots into one.

    The merge is associative and commutative with ``{}`` as identity:
    counters add, gauges keep the sample with the greatest
    ``(time, value)``, histogram bins/counts add and exact sums add as
    rationals.  Shard order therefore cannot leak into merged results,
    which is what keeps ``--jobs 1 == --jobs N`` byte-identical.
    """
    out: dict[str, Any] = {}
    for name in sorted(set(a) | set(b)):
        entry_a, entry_b = a.get(name), b.get(name)
        if entry_a is None:
            assert entry_b is not None
            out[name] = dict(entry_b)
        elif entry_b is None:
            out[name] = dict(entry_a)
        else:
            out[name] = _merge_entry(name, entry_a, entry_b)
    return out

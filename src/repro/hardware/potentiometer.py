"""Trimmer potentiometer adjusting display contrast/brightness.

"Display brightness can be adjusted with a potentiometer" (Section 4.1).
A trivially small component, but part of the faithful board inventory: the
pot divides the supply rail and its wiper voltage drives the display
contrast input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Potentiometer"]


class Potentiometer:
    """A linear-taper trimmer pot used as a voltage divider.

    Parameters
    ----------
    total_resistance_ohm:
        End-to-end resistance.
    position:
        Initial wiper position in [0, 1].
    """

    def __init__(self, total_resistance_ohm: float = 10_000.0, position: float = 0.5) -> None:
        if total_resistance_ohm <= 0:
            raise ValueError("resistance must be positive")
        self.total_resistance_ohm = float(total_resistance_ohm)
        self._position = float(np.clip(position, 0.0, 1.0))

    @property
    def position(self) -> float:
        """Wiper position in [0, 1]."""
        return self._position

    def set_position(self, position: float) -> None:
        """Turn the trimmer; values are clamped to the physical travel."""
        self._position = float(np.clip(position, 0.0, 1.0))

    def wiper_voltage(self, supply_voltage: float) -> float:
        """Divided voltage at the wiper for the given supply rail."""
        return supply_voltage * self._position

    def resistance_to_ground(self) -> float:
        """Resistance between wiper and the grounded end."""
        return self.total_resistance_ohm * self._position

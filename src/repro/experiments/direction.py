"""EXT-DIR — §7 Q5: scroll down towards oneself, or away?

"We are currently analyzing whether it is more intuitive to move the
DistScroll towards oneself to scroll down or to scroll up through the
hierarchical data structure."

The reproduction models the *mental-model mismatch* cost: each simulated
participant arrives with a prior polarity expectation (a population-level
bias toward "pulling towards me moves me down the list", as in pulling a
document closer).  When the device's configured polarity contradicts the
prior, the participant's first reach goes the wrong way (mirrored around
the range center) until the display feedback corrects them; with
practice the mismatch washes out.

Reported per polarity: first-block and last-block selection times and
wrong-way first reaches — the shape the authors' planned study would see.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig, ScrollDirection
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_direction", "MirrorPronedUser"]

#: Fraction of the population expecting "towards me = down" (pulling a
#: page closer reveals lower content; also the dominant reading in small
#: pilots of tangible pull interfaces).
TOWARDS_DOWN_PRIOR = 0.7


class MirrorPronedUser(SimulatedUser):
    """A user whose first reaches follow their *prior* polarity.

    While unadapted, a reach toward entry ``i`` under a mismatching
    device polarity aims at the mirror position; seeing the highlight go
    the wrong way adapts the user (probabilistically per exposure).
    """

    def __init__(self, *args, prior_matches_device: bool, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.adapted = prior_matches_device
        self._exposures = 0

    def _reach(self, aim_cm: float, width_cm: float, first: bool) -> None:
        if not self.adapted and first:
            near, far = self.device.config.range_cm
            aim_cm = near + far - aim_cm  # mirrored mental model
            self._exposures += 1
            # Feedback teaches quickly: ~80% adapt per wrong-way exposure.
            if self.rng.random() < 0.8:
                self.adapted = True
        super()._reach(aim_cm, width_cm, first)


def run_direction(
    seed: int = 0,
    n_users: int = 10,
    n_trials: int = 10,
    n_entries: int = 10,
) -> ExperimentResult:
    """Compare both polarities over a mixed-prior population."""
    result = ExperimentResult(
        experiment_id="EXT-DIR",
        title="Scroll polarity vs population priors",
        columns=(
            "polarity",
            "matching_users",
            "first3_mean_s",
            "last3_mean_s",
            "wrong_way_reaches",
        ),
    )
    master = np.random.default_rng(seed)
    labels = [f"Item {i}" for i in range(n_entries)]

    for polarity in (
        ScrollDirection.TOWARDS_SCROLLS_DOWN,
        ScrollDirection.TOWARDS_SCROLLS_UP,
    ):
        config = DeviceConfig(direction=polarity)
        first_times, last_times = [], []
        wrong_way = 0
        matching = 0
        for _ in range(n_users):
            user_seed = int(master.integers(2**31))
            rng = np.random.default_rng(user_seed)
            prior_towards_down = rng.random() < TOWARDS_DOWN_PRIOR
            matches = prior_towards_down == (
                polarity is ScrollDirection.TOWARDS_SCROLLS_DOWN
            )
            matching += int(matches)
            device = DistScroll(build_menu(labels), config=config, seed=user_seed)
            user = MirrorPronedUser(
                device=device, rng=rng, prior_matches_device=matches
            )
            user.practice_trials = 10  # knows the *mechanic*, maybe not polarity
            device.run_for(0.5)
            targets = random_targets(n_entries, n_trials, rng, min_separation=3)
            for i, target in enumerate(targets):
                adapted_before = user.adapted
                trial = user.select_entry(target)
                if not adapted_before:
                    wrong_way += 1
                if i < 3:
                    first_times.append(trial.duration_s)
                elif i >= n_trials - 3:
                    last_times.append(trial.duration_s)
                while device.depth > 0:
                    device.click("back")
        result.add_row(
            polarity.value,
            matching,
            float(np.mean(first_times)),
            float(np.mean(last_times)),
            wrong_way,
        )
    result.note(
        "expected: the polarity matching the population prior "
        "(towards-down, ~70%) costs fewer wrong-way first reaches; the "
        "difference washes out by the last trials — polarity is learnable"
    )
    return result

"""Rule base class and per-file lint context.

A rule is an :class:`ast.NodeVisitor` instantiated fresh for every file.
The base class maintains an ancestor stack during traversal (several
rules need to ask "is this call guarded by an enclosing ``if``?") and
provides :meth:`Rule.report` to emit findings with the offending source
line attached.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Optional, Sequence

from repro.devtools.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.devtools.graph import FileFacts, ProjectGraph

__all__ = [
    "LintContext",
    "ProjectRule",
    "Rule",
    "attribute_chain",
    "waiver_reason",
]

#: Inline escape hatch for the flow rules (REP006–REP008): a trailing
#: comment ``# reprolint: allow REP00X (reason)`` on the flagged line or
#: the line directly above.  The reason is mandatory — a bare allow is
#: ignored, mirroring the baseline's mandatory justifications.
_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*allow\s+(REP\d{3})\b\s*[-—–:(]?\s*(.*?)\)?\s*$"
)


def waiver_reason(line: str, rule_id: str) -> Optional[str]:
    """The waiver reason on ``line`` for ``rule_id``, if present+justified."""
    match = _WAIVER_RE.search(line)
    if match is None or match.group(1) != rule_id:
        return None
    reason = match.group(2).strip()
    return reason or None


@dataclass
class LintContext:
    """Everything a rule may inspect about the file being linted."""

    #: Posix-style path relative to the linted tree root.
    path: str
    #: Full source text.
    source: str
    #: Source split into lines (for snippets); computed lazily.
    lines: list[str] = field(default_factory=list)
    #: Phase-1 project graph (``None`` outside ``lint_project`` runs).
    project: Optional["ProjectGraph"] = None
    #: This file's own phase-1 facts (``None`` when ``project`` is).
    facts: Optional["FileFacts"] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, lineno: int) -> str:
        """The stripped source line at a 1-based line number."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule(ast.NodeVisitor):
    """One invariant checker.

    Subclasses set the class attributes and implement ``visit_*``
    methods as usual for :class:`ast.NodeVisitor`.  The engine calls
    :meth:`run` once per file; ``self.ancestors`` holds the chain of
    enclosing AST nodes (outermost first, **excluding** the node
    currently being visited) for flow-shape checks.
    """

    #: Unique id, ``REP###``.
    rule_id: ClassVar[str] = "REP000"
    #: One-line statement of the protected invariant.
    title: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: Exact relative paths the rule never applies to.
    exempt_paths: ClassVar[tuple[str, ...]] = ()
    #: Path prefixes (top-level directories) the rule never applies to.
    exempt_prefixes: ClassVar[tuple[str, ...]] = ()
    #: Why the invariant matters (rendered into docs/LINTING.md).
    rationale: ClassVar[str] = ""
    #: A minimal violating snippet (rendered into docs/LINTING.md).
    example: ClassVar[str] = ""
    #: The approved escape hatch (rendered into docs/LINTING.md).
    escape_hatch: ClassVar[str] = (
        "Baseline the finding in reprolint-baseline.json with a written"
        " justification."
    )
    #: Whether the inline ``# reprolint: allow`` comment is honoured.
    supports_waiver: ClassVar[bool] = False

    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.findings: list[Finding] = []
        self.ancestors: list[ast.AST] = []

    # ------------------------------------------------------------------
    # engine interface
    # ------------------------------------------------------------------
    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the rule runs on this relative path at all."""
        if path in cls.exempt_paths:
            return False
        return not any(
            path == prefix or path.startswith(prefix + "/")
            for prefix in cls.exempt_prefixes
        )

    def run(self, tree: ast.Module) -> list[Finding]:
        """Visit the whole module and return the findings."""
        self.visit(tree)
        return self.findings

    # ------------------------------------------------------------------
    # traversal with ancestor tracking
    # ------------------------------------------------------------------
    def generic_visit(self, node: ast.AST) -> None:
        self.ancestors.append(node)
        try:
            super().generic_visit(node)
        finally:
            self.ancestors.pop()

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The direct parent, valid while ``node`` is being visited."""
        return self.ancestors[-1] if self.ancestors else None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def waived(self, node: ast.AST) -> bool:
        """Whether an inline waiver covers the node (waiver rules only)."""
        if not self.supports_waiver:
            return False
        lineno = getattr(node, "lineno", 0)
        for candidate in (lineno, lineno - 1):
            if 1 <= candidate <= len(self.context.lines):
                reason = waiver_reason(
                    self.context.lines[candidate - 1], self.rule_id
                )
                if reason is not None:
                    return True
        return False

    def report(self, node: ast.AST, message: str) -> None:
        """Emit one finding anchored at ``node`` (unless waived inline)."""
        if self.waived(node):
            return
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.context.path,
                line=lineno,
                col=col,
                message=message,
                severity=self.severity,
                snippet=self.context.snippet(lineno),
            )
        )


class ProjectRule:
    """A whole-project invariant checker (phase-2, runs once per lint).

    Unlike :class:`Rule`, which is instantiated per file, a project rule
    sees the complete phase-1 view — the import graph, every file's
    facts and source — via the engine's
    :class:`~repro.devtools.engine.ProjectView`.  REP009 (dual-path
    parity) is the canonical example: it cross-references a registry of
    scalar↔vectorized pairs against module exports *and* the test tree.
    """

    rule_id: ClassVar[str] = "REP000"
    title: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    rationale: ClassVar[str] = ""
    example: ClassVar[str] = ""
    escape_hatch: ClassVar[str] = (
        "Baseline the finding in reprolint-baseline.json with a written"
        " justification."
    )

    def run_project(self, view: "ProjectView") -> list[Finding]:
        raise NotImplementedError


if TYPE_CHECKING:
    from repro.devtools.engine import ProjectView


def attribute_chain(node: ast.AST) -> Sequence[str]:
    """Dotted-name parts of a ``Name``/``Attribute`` chain, outermost first.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``.
    Chains whose base is not a plain name (e.g. a call result) keep the
    attribute parts only: ``spawn(1)[0].generate_state`` ->
    ``("generate_state",)``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))

"""Fitts's law utilities.

The paper's first open question (§7) is whether distance-based scrolling
is faster than other techniques, noting "so far, we only know that Fitt's
Law holds for scrolling" (citing Hinckley et al.'s quantitative analysis
of scrolling techniques).  These helpers compute the index of difficulty,
predict movement times, and regress measured (ID, MT) pairs — used both
*inside* the simulated user (to generate plausible movement times) and
*outside* (to verify that the closed-loop system still obeys the law).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.signal.fitting import r_squared

__all__ = [
    "index_of_difficulty",
    "movement_time",
    "FittsFit",
    "fit_fitts",
    "throughput",
]


def index_of_difficulty(distance: float, width: float) -> float:
    """Shannon-formulation ID in bits: ``log2(D/W + 1)``.

    ``distance`` and ``width`` share any unit (we use cm); ``width`` is
    the full target tolerance (twice the island half-width).
    """
    if width <= 0:
        raise ValueError(f"target width must be positive, got {width}")
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    return math.log2(distance / width + 1.0)


def movement_time(a: float, b: float, distance: float, width: float) -> float:
    """Predicted movement time ``MT = a + b * ID`` in seconds."""
    return a + b * index_of_difficulty(distance, width)


@dataclass(frozen=True)
class FittsFit:
    """Regression of movement time on index of difficulty.

    Attributes
    ----------
    a:
        Intercept, seconds — non-informational motor overhead.
    b:
        Slope, seconds per bit.
    r2:
        Goodness of fit.
    n:
        Number of (ID, MT) pairs.
    """

    a: float
    b: float
    r2: float
    n: int

    def predict(self, id_bits: float) -> float:
        """Movement time predicted at an ID."""
        return self.a + self.b * id_bits

    @property
    def bandwidth_bits_per_s(self) -> float:
        """Information throughput 1/b (Fitts's original index of performance)."""
        return math.inf if self.b == 0 else 1.0 / self.b


def fit_fitts(ids_bits: np.ndarray, times_s: np.ndarray) -> FittsFit:
    """Least-squares fit of ``MT = a + b * ID``.

    Raises
    ------
    ValueError
        With fewer than 3 points or a degenerate ID spread.
    """
    ids = np.asarray(ids_bits, dtype=float)
    times = np.asarray(times_s, dtype=float)
    if ids.shape != times.shape:
        raise ValueError("ids and times must have the same shape")
    if ids.size < 3:
        raise ValueError("need at least 3 points for a Fitts regression")
    if float(np.ptp(ids)) < 1e-9:
        raise ValueError("IDs are all equal; regression is degenerate")
    design = np.column_stack([np.ones_like(ids), ids])
    coeffs, _, _, _ = np.linalg.lstsq(design, times, rcond=None)
    a, b = float(coeffs[0]), float(coeffs[1])
    return FittsFit(a=a, b=b, r2=r_squared(times, design @ coeffs), n=ids.size)


def throughput(ids_bits: np.ndarray, times_s: np.ndarray) -> float:
    """Mean-of-means throughput in bits/s (ISO 9241-9 style)."""
    ids = np.asarray(ids_bits, dtype=float)
    times = np.asarray(times_s, dtype=float)
    if np.any(times <= 0):
        raise ValueError("movement times must be positive")
    return float(np.mean(ids / times))

"""Tests for the calibration flag, power bookkeeping and breadth study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu, flatten_paths
from repro.experiments import (
    build_uniform_tree,
    run_breadth,
    run_calibration_ablation,
    run_power,
)
from repro.interaction.user import SimulatedUser


class TestFactoryCalibration:
    def test_uncalibrated_device_still_works(self):
        config = DeviceConfig(chunk_size=0, factory_calibrated=False)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(8)]), config=config, seed=7
        )
        user = SimulatedUser(device=device, rng=np.random.default_rng(7))
        user.practice_trials = 30
        device.run_for(0.5)
        for target in (1, 6, 3):
            assert user.select_entry(target).success

    def test_calibrated_mapping_matches_specimen(self):
        calibrated = DistScroll(
            build_menu(["A", "B", "C"]),
            config=DeviceConfig(factory_calibrated=True),
            seed=7,
        )
        generic = DistScroll(
            build_menu(["A", "B", "C"]),
            config=DeviceConfig(factory_calibrated=False),
            seed=7,
        )
        # Same specimen; only the mapping differs, so the island code
        # tables differ (specimen deviates from the datasheet part).
        own = [i.center_code for i in calibrated.firmware.island_map.islands]
        generic_codes = [
            i.center_code for i in generic.firmware.island_map.islands
        ]
        assert own != generic_codes

    def test_directional_correction_recovers_bias(self):
        """Even a badly biased mapping converges via display feedback."""
        config = DeviceConfig(chunk_size=0, factory_calibrated=False)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(12)]), config=config, seed=11
        )
        user = SimulatedUser(device=device, rng=np.random.default_rng(11))
        user.practice_trials = 30
        device.run_for(0.5)
        result = user.select_entry(9)
        assert result.success

    def test_ablation_table_shape(self):
        result = run_calibration_ablation(
            seed=1, menu_sizes=(8,), n_specimens=2, n_trials=3
        )
        assert len(result.rows) == 2
        mappings = set(result.column("mapping"))
        assert mappings == {"calibrated", "datasheet"}


class TestPower:
    def test_all_workloads_reported(self):
        result = run_power(seed=1, window_s=20.0)
        assert set(result.column("workload")) == {"idle", "browsing", "gaming"}

    def test_currents_physically_plausible(self):
        result = run_power(seed=1, window_s=20.0)
        for current in result.column("mean_current_ma"):
            assert 5.0 < current < 100.0

    def test_browsing_sends_rf(self):
        result = run_power(seed=1, window_s=20.0)
        packets = dict(
            zip(result.column("workload"), result.column("rf_packets_per_min"))
        )
        assert packets["browsing"] > 10.0


class TestBreadth:
    def test_uniform_tree_shape(self):
        tree = build_uniform_tree(branching=4, depth=3)
        assert len(flatten_paths(tree)) == 64
        assert tree.max_depth() == 4  # root + 3 levels
        assert tree.max_fanout() == 4

    def test_flat_tree(self):
        tree = build_uniform_tree(branching=27, depth=1)
        assert len(tree.children) == 27
        assert all(c.is_leaf for c in tree.children)

    def test_depth_costs_time(self):
        result = run_breadth(
            seed=1,
            shapes=(("flat", 9, 1), ("deep", 3, 2)),
            n_tasks=3,
            n_users=1,
        )
        rows = {r[0]: r for r in result.rows}
        # Two levels need two full select cycles: slower than one.
        assert rows["deep"][2] > rows["flat"][2]

"""FIG5 — regenerate the log-axis sensor plot of Figure 5."""

from __future__ import annotations

from repro.experiments import run_fig5


def test_bench_fig5(benchmark, report):
    result = benchmark.pedantic(
        run_fig5, kwargs={"seed": 0, "readings_per_point": 16},
        rounds=3, iterations=1,
    )
    report(result)
    r2 = float(result.notes[0].split("R^2 = ")[1].rstrip(")"))
    assert r2 > 0.99

"""Closed-loop simulated users operating the DistScroll.

The paper's evaluation is an observational study (Section 6): people were
handed the device, discovered the operation "promptly", and after learning
the distance↔entry relation used it "nearly errorless".  To reproduce that
— and to run the quantitative studies the authors list as future work — we
need a human in the loop.  :class:`SimulatedUser` is a standard
perception–decision–action model:

* **perception** — the user reads the top display with a visual latency;
  they only know the highlight from what the display showed then;
* **decision** — reaction times and verification dwells (lognormal-ish);
* **action** — minimum-jerk reaches whose durations follow Fitts's law on
  the island's distance tolerance, with noisy endpoints and corrective
  submovements when the wrong entry ends up highlighted;
* **learning** — aim-point knowledge sharpens with practice (power law),
  reproducing the study's "promptly discovered / nearly errorless after
  learning" arc;
* **gloves** — a :class:`~repro.interaction.gloves.Glove` scales tremor,
  movement time, dexterity and button reliability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.device import DistScroll
from repro.interaction.fitts import movement_time
from repro.interaction.gloves import GLOVES, Glove
from repro.interaction.hand import Hand

__all__ = ["MotorProfile", "TrialResult", "DiscoveryResult", "SimulatedUser"]


@dataclass(frozen=True)
class MotorProfile:
    """Population parameters of one simulated participant.

    Defaults are standard HCI magnitudes (KLM / Fitts literature) for an
    adult moving a handheld device with the forearm.

    Attributes
    ----------
    reaction_time_s:
        Simple reaction time before a planned movement starts.
    fitts_a, fitts_b:
        Fitts intercept (s) and slope (s/bit) for forearm translation.
    perception_latency_s:
        Display-to-percept latency when checking the highlight.
    verify_dwell_s:
        Time spent confirming the highlight before committing.
    button_press_s:
        Motor time for a thumb press on the select button.
    endpoint_sigma_frac:
        Endpoint standard deviation as a fraction of the target's
        distance tolerance (≈0.27 yields the classic ~4% miss rate).
    impulsivity:
        Probability of committing without verifying (source of the rare
        wrong activations).
    learning_rate:
        Exponent of the power law of practice on aim uncertainty.
    """

    reaction_time_s: float = 0.26
    fitts_a: float = 0.10
    fitts_b: float = 0.145
    perception_latency_s: float = 0.20
    verify_dwell_s: float = 0.22
    button_press_s: float = 0.16
    endpoint_sigma_frac: float = 0.27
    impulsivity: float = 0.03
    learning_rate: float = 0.35

    @classmethod
    def sample(cls, rng: np.random.Generator) -> "MotorProfile":
        """Draw an individual from the population distribution."""
        jitter = lambda mean, rel: float(mean * rng.lognormal(0.0, rel))  # noqa: E731
        return cls(
            reaction_time_s=jitter(0.26, 0.15),
            fitts_a=jitter(0.10, 0.2),
            fitts_b=jitter(0.145, 0.15),
            perception_latency_s=jitter(0.20, 0.1),
            verify_dwell_s=jitter(0.22, 0.2),
            button_press_s=jitter(0.16, 0.15),
            endpoint_sigma_frac=jitter(0.27, 0.15),
            impulsivity=float(np.clip(rng.normal(0.03, 0.02), 0.0, 0.15)),
            learning_rate=float(np.clip(rng.normal(0.35, 0.08), 0.15, 0.6)),
        )


@dataclass
class TrialResult:
    """Outcome of one selection trial.

    Attributes
    ----------
    target_index:
        The entry the user was asked to select.
    duration_s:
        Simulated time from go-signal to successful activation.
    submovements:
        Voluntary reaches performed (1 = perfect first hit).
    wrong_activations:
        Times select was pressed while the wrong entry was highlighted.
    button_misses:
        Presses that failed to register (glove fumbles).
    movement_distance_cm:
        Distance between start position and the target aim point.
    target_width_cm:
        Effective target tolerance (island width in distance terms).
    success:
        Whether the correct entry was eventually activated.
    """

    target_index: int
    duration_s: float
    submovements: int = 0
    wrong_activations: int = 0
    button_misses: int = 0
    movement_distance_cm: float = 0.0
    target_width_cm: float = 0.0
    success: bool = False

    @property
    def error_free(self) -> bool:
        """The paper's "errorless" criterion: no wrong activation."""
        return self.success and self.wrong_activations == 0


@dataclass
class DiscoveryResult:
    """Outcome of the unguided discovery phase (initial study, §6)."""

    discovered: bool
    time_to_discovery_s: float
    exploratory_movements: int


@dataclass
class SimulatedUser:
    """One participant operating a :class:`~repro.core.device.DistScroll`.

    Parameters
    ----------
    device:
        The device under test (user and device must share the simulator).
    profile:
        Motor parameters; default draws vary per user via ``rng``.
    glove:
        Worn glove (``GLOVES['none']`` by default).
    rng:
        The participant's private noise stream.
    """

    device: DistScroll
    rng: np.random.Generator
    profile: Optional[MotorProfile] = None
    glove: Glove = field(default_factory=lambda: GLOVES["none"])
    handedness: str = "right"
    #: Extra hand-tremor RMS multiplier on top of the glove's factor —
    #: the persona engine's motor-ability hook (1.0 = nominal).
    tremor_scale: float = 1.0
    max_attempts: int = 12
    practice_trials: int = field(default=0, init=False)

    @classmethod
    def for_persona(
        cls,
        device: DistScroll,
        rng: np.random.Generator,
        persona: "object",
    ) -> "SimulatedUser":
        """Build a user parameterized by a
        :class:`~repro.interaction.personas.Persona`.

        The persona supplies the scaled motor profile, worn glove,
        handedness and tremor multiplier; ``rng`` stays the
        participant's private stream.  (Typed loosely to avoid a
        circular import — personas imports :class:`MotorProfile`.)
        """
        return cls(
            device=device,
            rng=rng,
            profile=persona.motor_profile(rng),  # type: ignore[attr-defined]
            glove=persona.glove_model(),  # type: ignore[attr-defined]
            handedness=persona.handedness,  # type: ignore[attr-defined]
            tremor_scale=persona.tremor_scale,  # type: ignore[attr-defined]
        )

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = MotorProfile.sample(self.rng)
        tremor = 0.08 * self.glove.tremor_factor * self.tremor_scale
        board = self.device.board
        self.hand = Hand(
            self.device.sim,
            lambda d: board.set_pose(distance_cm=d),
            start_cm=board.distance_cm,
            tremor_rms_cm=tremor,
            rng=self.rng,
        )
        # Record which entry each select press actually lands on: the
        # firmware emits the ButtonEvent *before* acting on the cursor, so
        # the highlight at that instant is the activated index.
        self._last_press_index: Optional[int] = None
        self.device.on_event(self._observe_event)

    def _observe_event(self, event) -> None:
        if (
            event.kind == "ButtonEvent"
            and event.name == "select"
            and event.pressed
        ):
            self._last_press_index = self.device.firmware.cursor.highlight

    # ------------------------------------------------------------------
    # small time primitives
    # ------------------------------------------------------------------
    def _wait(self, duration_s: float) -> None:
        self.device.run_for(max(duration_s, 0.0))

    def _lognormal(self, mean_s: float, spread: float = 0.15) -> float:
        return float(mean_s * self.rng.lognormal(0.0, spread))

    def _react(self) -> None:
        self._wait(self._lognormal(self.profile.reaction_time_s))

    # ------------------------------------------------------------------
    # perception
    # ------------------------------------------------------------------
    def perceived_highlight(self) -> Optional[int]:
        """The highlight index as the user currently perceives it.

        Reads the *display*, not the firmware state: if the panel contrast
        is unreadable, the user perceives nothing.
        """
        self._wait(self._lognormal(self.profile.perception_latency_s, 0.1))
        lines = self.device.visible_menu()
        if not any(lines):
            return None
        return self.device.highlighted_index

    # ------------------------------------------------------------------
    # aiming knowledge
    # ------------------------------------------------------------------
    def _aim_uncertainty_factor(self) -> float:
        """Extra endpoint spread while the mapping is still being learned.

        Power law of practice: trial 0 is ~2.2x noisier than asymptote.
        """
        return 1.0 + 1.2 * (1.0 + self.practice_trials) ** (
            -self.profile.learning_rate * 3.0
        )

    # ------------------------------------------------------------------
    # the core trial
    # ------------------------------------------------------------------
    def select_entry(self, target_index: int) -> TrialResult:
        """Perform one full selection: scroll to the entry and activate it.

        The user pages chunks if needed, reaches for the island's center
        distance, verifies the highlight on the display, corrects until
        the right entry is highlighted, and presses select.
        """
        firmware = self.device.firmware
        if getattr(firmware, "zoom", None) is not None and (
            firmware._level_needs_zoom()
        ):
            return self._select_entry_sdaz(target_index)
        start_time = self.device.now
        self._trial_depth = self.device.depth
        result = TrialResult(target_index=target_index, duration_s=0.0)

        self._page_to_chunk(firmware.chunk_of_index(target_index))

        aim = firmware.aim_distance_for_index(target_index)
        tolerance = firmware.distance_tolerance_cm(target_index)
        width = max(2.0 * tolerance, 0.2)
        result.movement_distance_cm = abs(
            self.hand.position(include_tremor=False) - aim
        )
        result.target_width_cm = width

        self._react()
        target_chunk = firmware.chunk_of_index(target_index)
        for attempt in range(self.max_attempts):
            if firmware.chunk != target_chunk:
                # A wrong activation may have left us on another page.
                self._page_to_chunk(target_chunk)
                aim = firmware.aim_distance_for_index(target_index)
            result.submovements += 1
            self._reach(aim, width, first=attempt == 0)
            perceived = self.perceived_highlight()
            if perceived != target_index:
                # Wrong island (or gap): an impulsive user may still commit.
                if self.rng.random() < self.profile.impulsivity and (
                    perceived is not None
                ):
                    if self._press_select(result):
                        result.wrong_activations += 1
                        self._recover_from_wrong_activation()
                if perceived is not None:
                    # Directional correction: the display feedback tells
                    # the user which way (and roughly how far) they are
                    # off — essential when the device's nominal mapping
                    # is biased (e.g. an uncalibrated sensor, ABL-CAL).
                    aim += self._aim_correction(perceived, target_index)
                continue
            if self.rng.random() >= self.profile.impulsivity:
                self._wait(self._lognormal(self.profile.verify_dwell_s, 0.2))
                if self.device.highlighted_index != target_index:
                    continue  # tremor pushed it off during the dwell
            if self._press_select(result):
                if self._activation_matches(target_index):
                    result.success = True
                    break
                result.wrong_activations += 1
                self._recover_from_wrong_activation()
        result.duration_s = self.device.now - start_time
        self.practice_trials += 1
        return result

    def _activation_matches(self, target_index: int) -> bool:
        """Whether the select actually landed on the intended entry.

        Between the user's last percept and the debounced press the tremor
        can move the highlight; the firmware activates whatever is
        highlighted at press time, which :meth:`_observe_event` captured.
        """
        return self._last_press_index == target_index

    def _select_entry_sdaz(self, target_index: int) -> TrialResult:
        """Selection through the SDAZ long-menu mode (§7 Q4 extension).

        Strategy a user naturally adopts: coarse-reach the anchor nearest
        the target and hold (the firmware zooms in after its dwell), pan
        by holding the window edge if the target is just outside, then
        fine-reach and select as usual.
        """
        firmware = self.device.firmware
        start_time = self.device.now
        self._trial_depth = self.device.depth
        result = TrialResult(target_index=target_index, duration_s=0.0)
        result.target_width_cm = max(
            2.0 * firmware.distance_tolerance_cm(target_index), 0.2
        )
        self._react()

        for attempt in range(self.max_attempts * 2):
            if firmware.zoom == "coarse":
                aim = firmware.aim_distance_for_index(target_index)
                width = max(
                    2.0 * firmware.distance_tolerance_cm(target_index), 0.2
                )
                result.submovements += 1
                self._reach(aim, width, first=attempt == 0)
                # Hold steady: the firmware's dwell triggers the zoom.
                self._wait(0.65)
                continue
            start, end = firmware.window_range()
            if not start <= target_index <= end:
                distance_out = min(
                    abs(target_index - start), abs(target_index - end)
                )
                if distance_out > (end - start + 1):
                    # Way off: zoom back out (aux button) and re-anchor.
                    self._react()
                    self._click_button("aux")
                    continue
                # Close by: pan by holding the edge nearest the target.
                edge = end if target_index > end else start
                aim = firmware.aim_distance_for_index(edge)
                width = max(2.0 * firmware.distance_tolerance_cm(edge), 0.2)
                result.submovements += 1
                self._reach(aim, width, first=False)
                self._wait(0.55)
                continue
            aim = firmware.aim_distance_for_index(target_index)
            width = max(
                2.0 * firmware.distance_tolerance_cm(target_index), 0.2
            )
            result.submovements += 1
            self._reach(aim, width, first=False)
            perceived = self.perceived_highlight()
            if perceived != target_index:
                continue
            if self.rng.random() >= self.profile.impulsivity:
                self._wait(self._lognormal(self.profile.verify_dwell_s, 0.2))
                if self.device.highlighted_index != target_index:
                    continue
            if self._press_select(result):
                if self._activation_matches(target_index):
                    result.success = True
                    break
                result.wrong_activations += 1
                self._recover_from_wrong_activation()
        result.duration_s = self.device.now - start_time
        self.practice_trials += 1
        return result

    def _aim_correction(self, perceived: int, target: int) -> float:
        """Signed aim adjustment (cm) from observed index error.

        One entry of index error maps to roughly one inter-entry spacing
        of distance; polarity gives the sign.  Clamped to two entries so
        a misread cannot fling the hand across the range.
        """
        from repro.core.config import ScrollDirection

        firmware = self.device.firmware
        n_slots = max(firmware.island_map.n_slots, 1)
        step = self.device.config.span_cm / n_slots
        delta = perceived - target
        delta = max(-2, min(2, delta))
        if (
            self.device.config.direction
            is ScrollDirection.TOWARDS_SCROLLS_DOWN
        ):
            return delta * step
        return -delta * step

    def _recover_from_wrong_activation(self) -> None:
        """Back out of an accidental submenu entry / note a wrong action."""
        self._react()
        while self.device.depth > getattr(self, "_trial_depth", 0):
            self._click_button("back")

    # ------------------------------------------------------------------
    # motor actions
    # ------------------------------------------------------------------
    def _reach(self, aim_cm: float, width_cm: float, first: bool) -> None:
        """One voluntary submovement toward the aim point."""
        position = self.hand.position(include_tremor=False)
        distance = abs(position - aim_cm)
        if distance < 0.05:
            distance = 0.05
        effective_width = width_cm
        mt = movement_time(
            self.profile.fitts_a, self.profile.fitts_b, distance, effective_width
        )
        mt *= self.glove.movement_time_factor
        mt = max(mt * self.rng.lognormal(0.0, 0.08), 0.12)
        sigma = (
            self.profile.endpoint_sigma_frac
            * (width_cm / 2.0)
            * self._aim_uncertainty_factor()
        )
        endpoint = aim_cm + self.rng.normal(0.0, sigma)
        self.hand.move_to(endpoint, mt)
        self._wait(mt + 0.06)

    def _press_select(self, result: TrialResult) -> bool:
        """Thumb press on select; may fumble with gloves.

        Returns ``True`` once a press registers.
        """
        layout = self.device.board.layout
        spec = layout.spec("select")
        miss_p = self.glove.effective_miss_probability(spec.area_mm2)
        press_time = (
            self.profile.button_press_s * self.glove.dexterity_time_factor
        )
        # A handed layout operated with the other hand (§5.1: "the
        # restriction to the right hand is introduced by the layout of
        # the push buttons"): the thumb cannot reach the select button
        # naturally, so presses are slower and less reliable.
        if not layout.ambidextrous and layout.handedness != self.handedness:
            press_time *= 1.6
            miss_p = min(miss_p + 0.12, 0.9)
        for _ in range(4):
            self._wait(self._lognormal(press_time, 0.12))
            if self.rng.random() >= miss_p:
                self.device.click("select")
                return True
            result.button_misses += 1
        # Even a mitten gets there on the 4th deliberate attempt.
        self.device.click("select")
        return True

    def _click_button(self, name: str) -> None:
        press_time = (
            self.profile.button_press_s * self.glove.dexterity_time_factor
        )
        self._wait(self._lognormal(press_time, 0.12))
        self.device.click(name)

    def _page_to_chunk(self, target_chunk: int) -> None:
        firmware = self.device.firmware
        guard = 0
        while firmware.chunk != target_chunk and guard < 2 * firmware.n_chunks:
            self._react()
            self._click_button("aux")
            guard += 1

    # ------------------------------------------------------------------
    # discovery (initial user study, §6)
    # ------------------------------------------------------------------
    def discover(
        self, timeout_s: float = 60.0, hint_given: bool = False
    ) -> DiscoveryResult:
        """Unguided exploration until the distance↔menu relation is found.

        The participant waggles the device through exploratory movements;
        discovery happens once they have *observed* enough highlight
        changes correlated with their own motion (three causal
        observations, fewer if a hint was given).  This reproduces the
        study protocol: "even when no hints were given, the manner of
        operation was promptly discovered".
        """
        needed = 1 if hint_given else 3
        observed = 0
        movements = 0
        start = self.device.now
        near, far = self.device.config.range_cm
        last_seen = self.device.highlighted_index
        while self.device.now - start < timeout_s:
            movements += 1
            # Curious waggling: random reaches across a growing span.
            span = min(0.3 + 0.15 * movements, 1.0)
            center = (near + far) / 2.0
            target = center + (self.rng.random() - 0.5) * span * (far - near)
            mt = self._lognormal(0.5, 0.2)
            self.hand.move_to(target, mt)
            self._wait(mt + 0.15)
            perceived = self.perceived_highlight()
            if perceived is not None and perceived != last_seen:
                observed += 1
                last_seen = perceived
                # Noticing takes a beat.
                self._wait(self._lognormal(0.4, 0.2))
            if observed >= needed:
                return DiscoveryResult(
                    discovered=True,
                    time_to_discovery_s=self.device.now - start,
                    exploratory_movements=movements,
                )
        return DiscoveryResult(
            discovered=False,
            time_to_discovery_s=timeout_s,
            exploratory_movements=movements,
        )

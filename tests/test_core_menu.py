"""Tests for menu trees and the navigation cursor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.menu import MenuCursor, MenuEntry, build_menu, flatten_paths


@pytest.fixture
def tree() -> MenuEntry:
    return build_menu(
        {
            "Messages": ["Inbox", "Outbox"],
            "Settings": {"Sound": ["Volume", "Tone"], "Display": []},
            "Camera": [],
        }
    )


class TestMenuEntry:
    def test_build_from_dict(self, tree):
        assert [c.label for c in tree.children] == [
            "Messages",
            "Settings",
            "Camera",
        ]

    def test_leaves_have_actions(self, tree):
        inbox = tree.child("Messages").child("Inbox")
        assert inbox.is_leaf
        assert inbox.action == "inbox"

    def test_child_lookup_missing(self, tree):
        with pytest.raises(KeyError):
            tree.child("Nope")

    def test_walk_counts_every_node(self, tree):
        # root + 3 top + 2 msg + 2 settings + 2 sound = 10
        assert tree.count_entries() == 10

    def test_max_depth(self, tree):
        assert tree.max_depth() == 4  # root > Settings > Sound > Volume

    def test_max_fanout(self, tree):
        assert tree.max_fanout() == 3

    def test_flatten_paths(self, tree):
        paths = flatten_paths(tree)
        assert ("Messages", "Inbox") in paths
        assert ("Settings", "Sound", "Volume") in paths
        assert ("Camera",) in paths

    def test_build_rejects_garbage(self):
        with pytest.raises(TypeError):
            build_menu(42)

    def test_build_from_list_of_entries(self):
        custom = MenuEntry("Custom", action="x")
        menu = build_menu([custom, "Plain"])
        assert menu.children[0] is custom
        assert menu.children[1].label == "Plain"


class TestMenuCursor:
    def test_initial_state(self, tree):
        cursor = MenuCursor(root=tree)
        assert cursor.depth == 0
        assert cursor.highlight == 0
        assert cursor.highlighted_entry.label == "Messages"

    def test_leaf_root_rejected(self):
        with pytest.raises(ValueError):
            MenuCursor(root=MenuEntry("lonely"))

    def test_set_highlight_clamps(self, tree):
        cursor = MenuCursor(root=tree)
        cursor.set_highlight(99)
        assert cursor.highlight == 2
        cursor.set_highlight(-5)
        assert cursor.highlight == 0

    def test_set_highlight_reports_change(self, tree):
        cursor = MenuCursor(root=tree)
        assert cursor.set_highlight(1)
        assert not cursor.set_highlight(1)

    def test_select_descends_submenu(self, tree):
        cursor = MenuCursor(root=tree)
        result = cursor.select()
        assert result is None
        assert cursor.depth == 1
        assert cursor.breadcrumb == ("Messages",)
        assert cursor.highlight == 0

    def test_select_leaf_activates(self, tree):
        activated = []
        cursor = MenuCursor(root=tree, on_activate=activated.append)
        cursor.set_highlight(2)  # Camera, a leaf
        result = cursor.select()
        assert result is not None
        assert result.label == "Camera"
        assert activated[0].label == "Camera"
        assert cursor.depth == 0

    def test_back_restores_highlight_on_parent(self, tree):
        cursor = MenuCursor(root=tree)
        cursor.set_highlight(1)  # Settings
        cursor.select()
        assert cursor.breadcrumb == ("Settings",)
        assert cursor.back()
        assert cursor.depth == 0
        assert cursor.highlighted_entry.label == "Settings"

    def test_back_at_root_is_noop(self, tree):
        cursor = MenuCursor(root=tree)
        assert not cursor.back()

    def test_deep_navigation(self, tree):
        cursor = MenuCursor(root=tree)
        cursor.set_highlight(1)
        cursor.select()  # Settings
        cursor.select()  # Sound
        assert cursor.breadcrumb == ("Settings", "Sound")
        leaf = None
        cursor.set_highlight(0)
        leaf = cursor.select()
        assert leaf.label == "Volume"

    def test_reset(self, tree):
        cursor = MenuCursor(root=tree)
        cursor.set_highlight(1)
        cursor.select()
        cursor.reset()
        assert cursor.depth == 0
        assert cursor.highlight == 0


@st.composite
def _menu_specs(draw, depth=0):
    n = draw(st.integers(min_value=1, max_value=4))
    spec = {}
    for i in range(n):
        if depth < 2 and draw(st.booleans()):
            spec[f"m{depth}_{i}"] = draw(_menu_specs(depth=depth + 1))
        else:
            spec[f"leaf{depth}_{i}"] = []
    return spec


@given(spec=_menu_specs())
@settings(max_examples=40, deadline=None)
def test_property_select_then_back_is_identity(spec):
    """Entering any submenu and leaving restores level and highlight."""
    menu = build_menu(spec)
    cursor = MenuCursor(root=menu)
    for index, entry in enumerate(cursor.entries):
        cursor.set_highlight(index)
        before_crumb = cursor.breadcrumb
        if entry.is_leaf:
            continue
        cursor.select()
        cursor.back()
        assert cursor.breadcrumb == before_crumb
        assert cursor.highlighted_entry.label == entry.label


@given(spec=_menu_specs())
@settings(max_examples=40, deadline=None)
def test_property_flatten_paths_all_reachable(spec):
    """Every flattened path can be walked through the cursor."""
    menu = build_menu(spec)
    for path in flatten_paths(menu):
        cursor = MenuCursor(root=menu)
        for label in path:
            labels = [e.label for e in cursor.entries]
            cursor.set_highlight(labels.index(label))
            result = cursor.select()
        assert result is not None and result.label == path[-1]

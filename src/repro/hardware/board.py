"""Board-level assembly of the DistScroll hardware (Figures 2 and 3).

The prototype is "an add-on board to the Smart-Its platform": the base
board carries the PIC 18F452, the RF module and the serial/programmer
connector; the add-on board carries the two displays, the acceleration
sensor and the distance-sensor wiring, joined through elongated add-on
connectors so the case can be opened for battery changes and code
downloads (Section 4.1).

:func:`build_distscroll_board` wires the full inventory exactly as in
Figure 3: distance sensor on ADC channel 0 (a second, unused sensor slot
on channel 1 — "only one is used in our experiments so far"),
accelerometer X/Y on channels 2 and 3, the two BT96040 displays at I2C
addresses 0x3C/0x3D, three debounced buttons, the contrast potentiometer
and the 9 V battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults import FaultPlan

from repro.hardware.adc import ADC, ADCParams
from repro.hardware.battery import Battery
from repro.hardware.buttons import (
    Button,
    ButtonLayout,
    DebouncedButton,
    RIGHT_HANDED_LAYOUT,
)
from repro.hardware.display import BT96040
from repro.hardware.i2c import I2CBus
from repro.hardware.mcu import PIC18F452
from repro.hardware.potentiometer import Potentiometer
from repro.hardware.rf import RFEndpoint, RFLink
from repro.sensors.adxl311 import ADXL311
from repro.sensors.gp2d120 import GP2D120
from repro.sim.kernel import Simulator

__all__ = [
    "ADC_CHANNEL_DISTANCE",
    "ADC_CHANNEL_DISTANCE_SPARE",
    "ADC_CHANNEL_ACCEL_X",
    "ADC_CHANNEL_ACCEL_Y",
    "I2C_ADDR_DISPLAY_TOP",
    "I2C_ADDR_DISPLAY_BOTTOM",
    "DistScrollBoard",
    "build_distscroll_board",
]

#: ADC channel assignments on the Smart-Its base board.
ADC_CHANNEL_DISTANCE = 0
ADC_CHANNEL_DISTANCE_SPARE = 1
ADC_CHANNEL_ACCEL_X = 2
ADC_CHANNEL_ACCEL_Y = 3

#: I2C addresses of the two chip-on-glass displays.
I2C_ADDR_DISPLAY_TOP = 0x3C
I2C_ADDR_DISPLAY_BOTTOM = 0x3D


@dataclass
class DistScrollBoard:
    """The assembled hardware: everything inside the case of Figure 3.

    Attributes mirror the physical inventory; the firmware
    (:mod:`repro.core.firmware`) talks only to this object.
    """

    sim: Simulator
    mcu: PIC18F452
    adc: ADC
    i2c: I2CBus
    distance_sensor: GP2D120
    spare_distance_sensor: Optional[GP2D120]
    #: Longitudinal mounting recess of the spare sensor: it measures
    #: ``distance_cm + spare_offset_cm`` (0 when not fitted).
    spare_offset_cm: float
    accelerometer: ADXL311
    display_top: BT96040
    display_bottom: BT96040
    buttons: dict[str, DebouncedButton]
    raw_buttons: dict[str, Button]
    layout: ButtonLayout
    potentiometer: Potentiometer
    battery: Battery
    rf_device: RFEndpoint
    rf_host: RFEndpoint
    rf_link: RFLink

    # mutable physical state the environment (hand model) drives --------
    distance_cm: float = 25.0
    pitch_rad: float = 0.0
    roll_rad: float = 0.0
    #: Fault-injection plan threaded through this board's hardware, set by
    #: :meth:`repro.faults.FaultPlan.install`.  ``None`` = healthy hardware.
    fault_plan: Optional["FaultPlan"] = None

    def set_pose(
        self,
        distance_cm: Optional[float] = None,
        pitch_rad: Optional[float] = None,
        roll_rad: Optional[float] = None,
    ) -> None:
        """Update the device's physical pose (driven by the hand model)."""
        if distance_cm is not None:
            self.distance_cm = float(distance_cm)
        if pitch_rad is not None:
            self.pitch_rad = float(pitch_rad)
        if roll_rad is not None:
            self.roll_rad = float(roll_rad)

    def apply_contrast(self) -> None:
        """Propagate the potentiometer wiper to both displays."""
        contrast = self.potentiometer.position
        self.display_top.set_contrast(contrast)
        self.display_bottom.set_contrast(contrast)

    def press_button(self, name: str) -> None:
        """The environment presses a physical button."""
        self.raw_buttons[name].press()

    def release_button(self, name: str) -> None:
        """The environment releases a physical button."""
        self.raw_buttons[name].release()


def build_distscroll_board(
    sim: Simulator,
    layout: ButtonLayout = RIGHT_HANDED_LAYOUT,
    noisy: bool = True,
    i2c_error_rate: float = 0.0005,
    rf_loss_rate: float = 0.01,
    fit_spare_sensor: bool = True,
    spare_offset_cm: float = 3.0,
) -> DistScrollBoard:
    """Assemble a DistScroll board on the given simulator.

    Parameters
    ----------
    sim:
        The simulation the hardware lives in.
    layout:
        Button arrangement (defaults to the 3-button right-handed
        prototype).
    noisy:
        When ``False``, every noise source is disabled — ideal hardware
        for deterministic unit tests.
    i2c_error_rate, rf_loss_rate:
        Error injection rates for the buses (ignored when ``noisy`` is
        ``False``).
    fit_spare_sensor:
        Populate the second distance-sensor slot ("only one is used in
        our experiments so far", §4 — the spare enables the dual-sensor
        fold-back disambiguation mode).
    spare_offset_cm:
        Mounting recess of the spare sensor behind the primary.

    Returns
    -------
    DistScrollBoard
        Fully wired hardware with analog channels attached.
    """
    rng = sim.spawn_rng() if noisy else None

    battery = Battery()
    adc = ADC(params=ADCParams(), rng=sim.spawn_rng() if noisy else None)
    mcu = PIC18F452(adc=adc, battery=battery)

    sensor_rng = sim.spawn_rng() if noisy else None
    if sensor_rng is not None:
        distance_sensor = GP2D120.specimen(sensor_rng)
    else:
        distance_sensor = GP2D120(rng=None)
    spare: Optional[GP2D120] = None
    if fit_spare_sensor:
        spare_rng = sim.spawn_rng() if noisy else None
        spare = GP2D120.specimen(spare_rng) if spare_rng is not None else GP2D120(rng=None)

    accelerometer = ADXL311(rng=sim.spawn_rng() if noisy else None)

    i2c = I2CBus(
        error_rate=i2c_error_rate if noisy else 0.0,
        rng=sim.spawn_rng() if noisy else None,
    )
    display_top = BT96040("top")
    display_bottom = BT96040("bottom")
    i2c.attach(I2C_ADDR_DISPLAY_TOP, display_top)
    i2c.attach(I2C_ADDR_DISPLAY_BOTTOM, display_bottom)

    raw_buttons: dict[str, Button] = {}
    debounced: dict[str, DebouncedButton] = {}
    for spec in layout.buttons:
        raw = Button(
            sim,
            spec,
            rng=sim.spawn_rng() if noisy else None,
        )
        raw_buttons[spec.name] = raw
        debounced[spec.name] = DebouncedButton(button=raw)

    rf_device = RFEndpoint("distscroll")
    rf_host = RFEndpoint("host-pc")
    rf_link = RFLink(
        sim,
        rf_device,
        rf_host,
        loss_rate=rf_loss_rate if noisy else 0.0,
        rng=sim.spawn_rng() if noisy else None,
    )

    potentiometer = Potentiometer(position=0.5)

    board = DistScrollBoard(
        sim=sim,
        mcu=mcu,
        adc=adc,
        i2c=i2c,
        distance_sensor=distance_sensor,
        spare_distance_sensor=spare,
        spare_offset_cm=spare_offset_cm if spare is not None else 0.0,
        accelerometer=accelerometer,
        display_top=display_top,
        display_bottom=display_bottom,
        buttons=debounced,
        raw_buttons=raw_buttons,
        layout=layout,
        potentiometer=potentiometer,
        battery=battery,
        rf_device=rf_device,
        rf_host=rf_host,
        rf_link=rf_link,
    )

    # Analog wiring: sources close over the board's mutable pose.
    adc.attach(
        ADC_CHANNEL_DISTANCE,
        lambda t: board.distance_sensor.output_voltage(t, board.distance_cm),
    )
    if spare is not None:
        adc.attach(
            ADC_CHANNEL_DISTANCE_SPARE,
            lambda t: board.spare_distance_sensor.output_voltage(
                t, board.distance_cm + board.spare_offset_cm
            ),
        )
    adc.attach(
        ADC_CHANNEL_ACCEL_X,
        lambda t: board.accelerometer.output_voltages(board.pitch_rad, board.roll_rad)[0],
    )
    adc.attach(
        ADC_CHANNEL_ACCEL_Y,
        lambda t: board.accelerometer.output_voltages(board.pitch_rad, board.roll_rad)[1],
    )

    board.apply_contrast()

    # Static power consumers: displays and radio idle draw, booked per
    # simulated second by the firmware loop via mcu.consume_power.
    mcu.allocate("bootloader", flash_bytes=2048, ram_bytes=64)

    return board

"""Tests for the island mapping — the paper's core algorithm (§4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.islands import Island, IslandMap, Placement, build_island_map
from repro.hardware.adc import ADC
from repro.sensors.gp2d120 import GP2D120


class TestIsland:
    def test_width(self):
        island = Island(0, 10, 20, 15, 10.0)
        assert island.width_codes == 11

    def test_contains(self):
        island = Island(0, 10, 20, 15, 10.0)
        assert island.contains(10)
        assert island.contains(20)
        assert not island.contains(21)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Island(0, 20, 10, 15, 10.0)


class TestBuildPaperPlacement:
    def test_equal_distance_spacing(self, ideal_sensor, ideal_adc):
        """'the perception that the entries are equally spaced'."""
        island_map = build_island_map(ideal_sensor, ideal_adc, 10)
        spacings = island_map.distance_spacings()
        assert spacings.std() < 1e-9
        assert spacings[0] == pytest.approx(23.0 / 10)

    def test_gaps_exist(self, ideal_sensor, ideal_adc):
        """'These islands do not cover the complete spectrum'."""
        island_map = build_island_map(ideal_sensor, ideal_adc, 8)
        assert island_map.coverage_fraction() < 0.9

    def test_full_coverage_has_no_gaps(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(
            ideal_sensor, ideal_adc, 8, placement=Placement.FULL_COVERAGE
        )
        assert island_map.coverage_fraction() > 0.95

    def test_gap_lookup_returns_none(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 6)
        a = island_map.island_for_slot(2)
        b = island_map.island_for_slot(3)
        lo, hi = sorted([a.code_high, b.code_low])
        gap_code = (lo + hi) // 2
        if island_map.lookup(gap_code) is not None:
            pytest.skip("no gap between these islands at this size")
        assert island_map.lookup(gap_code) is None

    def test_center_codes_inside_their_islands(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 12)
        for island in island_map.islands:
            assert island.contains(island.center_code)
            assert island_map.lookup(island.center_code) == island.slot

    def test_slot_zero_is_nearest(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 5)
        assert island_map.center_distance(0) < island_map.center_distance(4)
        # Nearest slot owns the highest codes.
        assert (
            island_map.island_for_slot(0).code_low
            > island_map.island_for_slot(4).code_high
        )

    def test_near_bound_in_foldback_rejected(self, ideal_sensor, ideal_adc):
        with pytest.raises(ValueError):
            build_island_map(ideal_sensor, ideal_adc, 5, range_cm=(3.0, 28.0))

    def test_too_many_entries_rejected(self, ideal_sensor, ideal_adc):
        with pytest.raises(ValueError):
            build_island_map(ideal_sensor, ideal_adc, 500)

    def test_single_entry(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 1)
        assert island_map.n_slots == 1

    def test_invalid_parameters(self, ideal_sensor, ideal_adc):
        with pytest.raises(ValueError):
            build_island_map(ideal_sensor, ideal_adc, 0)
        with pytest.raises(ValueError):
            build_island_map(ideal_sensor, ideal_adc, 5, island_fill=0.0)
        with pytest.raises(ValueError):
            build_island_map(ideal_sensor, ideal_adc, 5, range_cm=(20.0, 10.0))


class TestEqualCodeAblation:
    def test_equal_code_spacing_is_nonuniform_in_distance(
        self, ideal_sensor, ideal_adc
    ):
        """The naive mapping the paper rejects: 'many entities would be
        scrolled with only a small amount of movement' near the body."""
        island_map = build_island_map(
            ideal_sensor, ideal_adc, 10, placement=Placement.EQUAL_CODE
        )
        spacings = island_map.distance_spacings()
        assert spacings.std() / spacings.mean() > 0.3

    def test_equal_code_near_slots_are_cramped(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(
            ideal_sensor, ideal_adc, 10, placement=Placement.EQUAL_CODE
        )
        near_span = abs(
            island_map.center_distance(1) - island_map.center_distance(0)
        )
        far_span = abs(
            island_map.center_distance(9) - island_map.center_distance(8)
        )
        assert far_span > 3 * near_span


class TestIslandMapInvariants:
    def test_overlap_rejected(self):
        islands = [
            Island(0, 10, 30, 20, 5.0),
            Island(1, 25, 50, 40, 10.0),
        ]
        with pytest.raises(ValueError):
            IslandMap(islands, Placement.EQUAL_DISTANCE)

    def test_duplicate_slots_rejected(self):
        islands = [
            Island(0, 10, 20, 15, 5.0),
            Island(0, 30, 40, 35, 10.0),
        ]
        with pytest.raises(ValueError):
            IslandMap(islands, Placement.EQUAL_DISTANCE)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IslandMap([], Placement.EQUAL_DISTANCE)

    def test_missing_slot_lookup(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 3)
        with pytest.raises(KeyError):
            island_map.island_for_slot(7)

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_property_every_code_maps_to_at_most_one_slot(self, n):
        sensor = GP2D120(rng=None)
        adc = ADC(rng=None)
        island_map = build_island_map(sensor, adc, n)
        for code in range(0, adc.params.max_code + 1, 3):
            slot = island_map.lookup(code)
            if slot is not None:
                assert island_map.island_for_slot(slot).contains(code)

    @given(
        n=st.integers(min_value=2, max_value=30),
        fill=st.floats(min_value=0.3, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_islands_ordered_and_disjoint(self, n, fill):
        sensor = GP2D120(rng=None)
        adc = ADC(rng=None)
        island_map = build_island_map(sensor, adc, n, island_fill=fill)
        ordered = island_map.islands
        for a, b in zip(ordered, ordered[1:]):
            assert a.code_high < b.code_low

    @given(n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_property_center_distance_monotone_in_slot(self, n):
        sensor = GP2D120(rng=None)
        adc = ADC(rng=None)
        island_map = build_island_map(sensor, adc, n)
        centers = [island_map.center_distance(s) for s in range(n)]
        assert centers == sorted(centers)

    def test_distance_tolerance_positive(self, ideal_sensor, ideal_adc):
        island_map = build_island_map(ideal_sensor, ideal_adc, 10)
        for slot in range(10):
            assert island_map.distance_tolerance(slot, ideal_sensor) > 0.0

"""Tests for the SDAZ long-menu mode (§7 Q4 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.core.sdaz import SDAZFirmware
from repro.interaction.user import SimulatedUser


def make_sdaz_device(n=60, seed=6, **extra):
    config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10, **extra)
    return DistScroll(
        build_menu([f"Item {i:03d}" for i in range(n)]), config=config,
        seed=seed,
    )


class TestGeometry:
    def test_device_picks_sdaz_firmware(self):
        device = make_sdaz_device()
        assert isinstance(device.firmware, SDAZFirmware)

    def test_plain_config_keeps_base_firmware(self):
        device = DistScroll(build_menu(["A", "B"]), seed=0)
        assert not isinstance(device.firmware, SDAZFirmware)

    def test_anchor_indices_span_the_level(self):
        device = make_sdaz_device(n=60)
        anchors = device.firmware.anchor_indices()
        assert anchors[0] == 0
        assert anchors[-1] == 59
        assert len(anchors) == 10
        assert anchors == sorted(anchors)

    def test_nearest_anchor(self):
        device = make_sdaz_device(n=60)
        firmware = device.firmware
        for target in (0, 17, 31, 59):
            anchor = firmware.nearest_anchor(target)
            assert anchor in firmware.anchor_indices()
            stride = 59 / 9
            assert abs(anchor - target) <= stride / 2 + 1

    def test_short_level_behaves_flat(self):
        device = make_sdaz_device(n=6)
        assert device.firmware.zoom == "fine"
        device.hold_at(26.0)
        device.run_for(0.4)
        assert device.highlighted_index == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(long_menu_mode="mystery")


class TestZoomTransitions:
    def test_dwell_zooms_in(self):
        device = make_sdaz_device()
        firmware = device.firmware
        assert firmware.zoom == "coarse"
        aim = firmware.aim_distance_for_index(33)
        device.hold_at(aim)
        device.run_for(1.5)  # dwell past the zoom threshold
        assert firmware.zoom == "fine"
        start, end = firmware.window_range()
        assert start <= 33 <= end
        zooms = [e for _, e in device.events() if e.kind == "ZoomChanged"]
        assert zooms and zooms[-1].zoom == "fine"

    def test_aux_zooms_out(self):
        device = make_sdaz_device()
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(33))
        device.run_for(1.5)
        assert firmware.zoom == "fine"
        device.click("aux")
        assert firmware.zoom == "coarse"

    def test_fast_region_zooms_out(self):
        device = make_sdaz_device()
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(33))
        device.run_for(1.5)
        assert firmware.zoom == "fine"
        device.hold_at(4.0)  # the near-peak gesture region
        device.run_for(0.5)
        assert firmware.zoom == "coarse"

    def test_edge_hold_pans(self):
        device = make_sdaz_device()
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(33))
        device.run_for(1.5)
        start_before, end_before = firmware.window_range()
        # Hold the far-window edge (higher index end).
        device.hold_at(firmware.aim_distance_for_index(end_before))
        device.run_for(2.0)
        start_after, end_after = firmware.window_range()
        assert end_after > end_before

    def test_entering_submenu_resets_zoom(self):
        menu = build_menu(
            {f"Sub {i}": [f"leaf {j}" for j in range(3)] for i in range(30)}
        )
        config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10)
        device = DistScroll(menu, config=config, seed=3)
        firmware = device.firmware
        device.hold_at(firmware.aim_distance_for_index(0))
        device.run_for(1.5)
        assert firmware.zoom == "fine"
        device.click("select")  # descend into a 3-entry submenu
        assert device.depth == 1
        # Short level: fine/flat behaviour.
        assert not firmware._level_needs_zoom()


class TestClosedLoopSDAZ:
    def test_user_selects_across_long_menu(self):
        device = make_sdaz_device(n=60)
        user = SimulatedUser(device=device, rng=np.random.default_rng(6))
        user.practice_trials = 30
        device.run_for(0.5)
        for target in (5, 33, 58):
            result = user.select_entry(target)
            assert result.success, f"failed on {target}"

    def test_user_selects_on_200_entry_menu(self):
        """Far beyond the flat limit and painful with chunk paging."""
        device = make_sdaz_device(n=200)
        user = SimulatedUser(device=device, rng=np.random.default_rng(6))
        user.practice_trials = 30
        device.run_for(0.5)
        result = user.select_entry(103)
        assert result.success
        assert result.duration_s < 30.0

    def test_buttonless_traversal(self):
        """No aux presses needed when the anchor lands near the target."""
        device = make_sdaz_device(n=60)
        user = SimulatedUser(device=device, rng=np.random.default_rng(7))
        user.practice_trials = 30
        device.run_for(0.5)
        result = user.select_entry(33)  # exactly on an anchor
        assert result.success
        aux_presses = [
            e
            for _, e in device.events()
            if e.kind == "ButtonEvent" and e.name == "aux"
        ]
        assert not aux_presses

"""Rendering a lint run: terminal text and machine-readable JSON.

The JSON schema is part of the tool's contract (CI and editor tooling
parse it) and is pinned by ``tests/test_reprolint.py``.  Version 2
added the ``occurrence`` field to findings (the baseline
disambiguation index)::

    {
      "version": 2,
      "tool": "reprolint",
      "root": "<linted root>",
      "rules": ["REP001", ...],
      "counts": {"total": N, "suppressed": M, "reported": K},
      "findings": [ Finding.to_dict(), ... ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.devtools.findings import Finding

__all__ = ["format_text", "format_json", "REPORT_VERSION"]

REPORT_VERSION = 2


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    suppressed = sum(1 for f in findings if f.suppressed)
    return {
        "total": len(findings),
        "suppressed": suppressed,
        "reported": len(findings) - suppressed,
    }


def format_text(
    findings: Sequence[Finding],
    rules: Sequence[str],
    root: str,
    verbose: bool = False,
) -> str:
    """One line per reported finding plus a summary."""
    counts = _counts(findings)
    lines = []
    for finding in findings:
        if finding.suppressed and not verbose:
            continue
        marker = " [baselined]" if finding.suppressed else ""
        lines.append(
            f"{finding.location()}: {finding.rule}"
            f" [{finding.severity.value}]{marker} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    lines.append(
        f"reprolint: {counts['reported']} finding(s)"
        f" ({counts['suppressed']} baselined) over {root}"
        f" [{', '.join(rules)}]"
    )
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding], rules: Sequence[str], root: str
) -> str:
    """The pinned JSON report."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "reprolint",
        "root": root,
        "rules": list(rules),
        "counts": _counts(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2) + "\n"

"""Common interface for scrolling techniques under comparison.

Open question 1 of the paper (§7): "Is distance-based scrolling faster,
equal or slower than other scrolling techniques[?]".  To answer it we put
every technique from the Related Work section behind one interface and
run identical selection workloads through all of them.

The baselines are modeled at the **operator level** (Keystroke-Level-
Model style): each technique decomposes a selection into primitive
operators — key presses, rate-control ramps, wheel detents, flicks —
with durations and error probabilities from the HCI literature, scaled
by the same :class:`~repro.interaction.gloves.Glove` modifiers the
DistScroll user experiences.  DistScroll itself runs its *full* sensor-
to-firmware closed loop (see :mod:`repro.baselines.distscroll`), so the
comparison is conservative: the baselines get idealized models, the
paper's technique has to fight its own noise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, Optional

import numpy as np

from repro.interaction.gloves import GLOVES, Glove

__all__ = [
    "OperatorTimes",
    "TechniqueTrial",
    "TechniqueInfo",
    "TechniqueFault",
    "ScrollingTechnique",
]


@dataclass(frozen=True)
class TechniqueInfo:
    """Docs metadata of one technique — the TECHNIQUES.md source of truth.

    Every registered technique carries one of these as a class attribute;
    ``scripts/generate_techniques_md.py`` renders the per-technique pages
    from it, and a registry completeness test asserts no technique ships
    without docs metadata.

    Attributes
    ----------
    key:
        Registry key in :data:`repro.baselines.ALL_TECHNIQUES`.
    title:
        Human-readable technique name for headings.
    citation:
        The paper the model reproduces (PAPERS.md entry or the source
        paper's Related Work reference).
    input_model:
        What is physically sensed, and through which substrate (ADC
        channels, accelerometer, optical tracking, ...).
    transfer_function:
        How the sensed quantity becomes list motion (position control,
        rate control, detents, flicks, ...).
    control_order:
        ``"position"`` (zero-order: input maps to a list position) or
        ``"rate"`` (first-order: input maps to a scroll velocity).
    fault_surfaces:
        The named degradation modes the model exposes through
        :class:`TechniqueFault` windows (empty for idealized models
        without a fault seam).
    """

    key: str
    title: str
    citation: str
    input_model: str
    transfer_function: str
    control_order: str
    fault_surfaces: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.control_order not in ("position", "rate"):
            raise ValueError(
                f"control_order must be 'position' or 'rate', "
                f"got {self.control_order!r}"
            )


@dataclass(frozen=True)
class TechniqueFault:
    """One degradation window, indexed in *trials* of a session.

    Operator-level techniques have no simulated clock of their own, so
    their fault windows are scheduled over the session's trial sequence:
    the fault is active for every ``select`` call whose zero-based trial
    index falls in ``[start_trial, end_trial)``.  Techniques degrade
    *gracefully* inside a window — extra time, re-acquisitions, perhaps
    errors — and never raise.

    ``kind`` must name one of the technique's declared
    :attr:`TechniqueInfo.fault_surfaces`; :class:`ScrollingTechnique`
    validates this at construction so a typo cannot silently disable an
    injection.
    """

    kind: str
    start_trial: int
    end_trial: int

    def __post_init__(self) -> None:
        if self.start_trial < 0:
            raise ValueError(
                f"start_trial must be >= 0, got {self.start_trial}"
            )
        if self.end_trial <= self.start_trial:
            raise ValueError(
                f"end_trial must be > start_trial, got "
                f"[{self.start_trial}, {self.end_trial})"
            )

    def active(self, trial_index: int) -> bool:
        """Whether the window covers ``trial_index`` (half-open)."""
        return self.start_trial <= trial_index < self.end_trial


@dataclass(frozen=True)
class OperatorTimes:
    """Shared primitive-operator durations (seconds), KLM-calibrated.

    All techniques draw from the same constants so differences between
    techniques come from their *structure*, not from inconsistent motor
    assumptions.
    """

    reaction_s: float = 0.26
    keypress_s: float = 0.20
    auto_repeat_delay_s: float = 0.50
    auto_repeat_rate_hz: float = 10.0
    verify_dwell_s: float = 0.22
    homing_s: float = 0.40

    def scaled(self, glove: Glove) -> "OperatorTimes":
        """Operator times with a glove's dexterity penalty applied."""
        factor = glove.dexterity_time_factor
        return OperatorTimes(
            reaction_s=self.reaction_s,
            keypress_s=self.keypress_s * factor,
            auto_repeat_delay_s=self.auto_repeat_delay_s,
            auto_repeat_rate_hz=self.auto_repeat_rate_hz,
            verify_dwell_s=self.verify_dwell_s,
            homing_s=self.homing_s * factor,
        )


@dataclass
class TechniqueTrial:
    """Outcome of one selection through a technique.

    Attributes
    ----------
    duration_s:
        Total task time from go-signal to correct activation.
    errors:
        Wrong activations / overshoot selections along the way.
    operations:
        Count of primitive operator invocations (presses, flicks, ...).
    index_of_difficulty:
        The task's Fitts ID in the technique's own control space, for
        the EXT-SPEED regression (0 when not meaningful).
    """

    duration_s: float
    errors: int = 0
    operations: int = 0
    index_of_difficulty: float = 0.0


@dataclass
class ScrollingTechnique(abc.ABC):
    """Abstract base: one way of scrolling a list and selecting an entry.

    Subclasses implement :meth:`select`; class attributes describe the
    qualitative properties the paper's comparison table discusses.
    """

    rng: np.random.Generator
    glove: Glove = field(default_factory=lambda: GLOVES["none"])
    times: OperatorTimes = field(default_factory=OperatorTimes)
    #: Scheduled degradation windows over this session's trial sequence.
    faults: tuple[TechniqueFault, ...] = ()

    #: Human-readable technique name.
    name: str = "abstract"
    #: Whether one hand suffices (the paper's core requirement).
    one_handed: bool = True
    #: Whether the technique stays usable with thick gloves.
    glove_compatible: bool = True
    #: Whether the technique needs mechanical moving parts (a liability in
    #: hazardous-fluid environments, per the paper's critique of the YoYo).
    mechanical_parts: bool = False
    #: Whether the technique is attached to garment/body.
    body_attached: bool = False
    #: Docs metadata (set by every registered technique; ``None`` only on
    #: the abstract base).
    info: ClassVar[Optional[TechniqueInfo]] = None

    def __post_init__(self) -> None:
        self._scaled_times = self.times.scaled(self.glove)
        self._trials_run = 0
        info = type(self).info
        if self.faults and info is None:
            raise ValueError(
                f"{type(self).__name__} declares no fault surfaces"
            )
        for window in self.faults:
            if info is not None and window.kind not in info.fault_surfaces:
                raise ValueError(
                    f"{type(self).__name__}: unknown fault surface "
                    f"{window.kind!r}; declared: "
                    f"{', '.join(info.fault_surfaces) or '(none)'}"
                )

    @property
    def t(self) -> OperatorTimes:
        """Glove-scaled operator times."""
        return self._scaled_times

    @property
    def trials_run(self) -> int:
        """Trials started so far (the fault-window clock)."""
        return self._trials_run

    def _begin_trial(self) -> int:
        """Advance the session trial counter; returns this trial's index.

        Techniques with a fault seam (or session-scale effects such as
        fatigue) call this at the top of :meth:`select`; the returned
        index is what :meth:`fault_active` windows are matched against.
        """
        index = self._trials_run
        self._trials_run += 1
        return index

    def fault_active(self, kind: str, trial_index: int) -> bool:
        """Whether a ``kind`` window covers ``trial_index``."""
        return any(
            window.kind == kind and window.active(trial_index)
            for window in self.faults
        )

    @abc.abstractmethod
    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Scroll from ``start_index`` to ``target_index`` and activate it."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _lognormal(self, mean_s: float, spread: float = 0.12) -> float:
        return float(mean_s * self.rng.lognormal(0.0, spread))

    def _press(self, trial: TechniqueTrial, miss_area_mm2: float = 40.0) -> float:
        """One button press; returns its duration, retrying glove misses."""
        duration = self._lognormal(self.t.keypress_s)
        trial.operations += 1
        miss_p = self.glove.effective_miss_probability(miss_area_mm2)
        while self.rng.random() < miss_p:
            duration += self._lognormal(self.t.keypress_s)
            trial.operations += 1
        return duration

    def _confirm_selection(self, trial: TechniqueTrial) -> float:
        """Verify dwell plus the activating press."""
        return self._lognormal(self.t.verify_dwell_s, 0.2) + self._press(trial)

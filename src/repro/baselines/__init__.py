"""Competing scrolling techniques behind one comparison interface."""

from repro.baselines.base import (
    OperatorTimes,
    ScrollingTechnique,
    TechniqueFault,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.baselines.buttons import ButtonScroller
from repro.baselines.distscroll import DistScrollTechnique
from repro.baselines.headmouse import HeadMouseScroller
from repro.baselines.pointnmove import PointNMoveScroller
from repro.baselines.pressurepad import PressurePadScroller
from repro.baselines.tilt import TiltScroller
from repro.baselines.touch import TouchScroller
from repro.baselines.wheel import WheelScroller
from repro.baselines.yoyo import YoYoScroller

__all__ = [
    "OperatorTimes",
    "ScrollingTechnique",
    "TechniqueFault",
    "TechniqueInfo",
    "TechniqueTrial",
    "ButtonScroller",
    "DistScrollTechnique",
    "HeadMouseScroller",
    "PointNMoveScroller",
    "PressurePadScroller",
    "TiltScroller",
    "TouchScroller",
    "WheelScroller",
    "YoYoScroller",
    "ALL_TECHNIQUES",
]

#: Factory registry used by the comparison experiments.
ALL_TECHNIQUES = {
    "distscroll": DistScrollTechnique,
    "buttons": ButtonScroller,
    "tilt": TiltScroller,
    "wheel": WheelScroller,
    "yoyo": YoYoScroller,
    "touch": TouchScroller,
    "pointnmove": PointNMoveScroller,
    "headmouse": HeadMouseScroller,
    "pressurepad": PressurePadScroller,
}

"""Simulated humans: hand motor model, gloves, Fitts's law, users, tasks."""

from repro.interaction.fitts import (
    FittsFit,
    fit_fitts,
    index_of_difficulty,
    movement_time,
    throughput,
)
from repro.interaction.gloves import GLOVES, Glove
from repro.interaction.hand import Hand, minimum_jerk
from repro.interaction.tasks import fitts_ladder, hierarchical_tasks, random_targets
from repro.interaction.user import (
    DiscoveryResult,
    MotorProfile,
    SimulatedUser,
    TrialResult,
)

__all__ = [
    "FittsFit",
    "fit_fitts",
    "index_of_difficulty",
    "movement_time",
    "throughput",
    "GLOVES",
    "Glove",
    "Hand",
    "minimum_jerk",
    "fitts_ladder",
    "hierarchical_tasks",
    "random_targets",
    "DiscoveryResult",
    "MotorProfile",
    "SimulatedUser",
    "TrialResult",
]

"""Tests for the GP2D120 sensor physics model (§4.2 behaviours)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensors.gp2d120 import GP2D120, GP2D120Params, SENSOR_MAX_CM, SENSOR_MIN_CM
from repro.sensors.surfaces import CLOTHING, Surface


class TestTransferFunction:
    def test_datasheet_anchor_points(self, ideal_sensor):
        """~2.75 V at 4 cm, ~0.4 V at 30 cm (datasheet typicals)."""
        assert ideal_sensor.ideal_voltage(4.0) == pytest.approx(2.75, abs=0.15)
        assert ideal_sensor.ideal_voltage(30.0) == pytest.approx(0.40, abs=0.1)

    def test_monotone_decreasing_in_range(self, ideal_sensor):
        d = np.linspace(SENSOR_MIN_CM, SENSOR_MAX_CM, 100)
        v = np.array([ideal_sensor.ideal_voltage(x) for x in d])
        assert (np.diff(v) < 0).all()

    def test_foldback_rises_below_peak(self, ideal_sensor):
        """If the device is moved too close, the values decline again."""
        d = np.linspace(0.2, SENSOR_MIN_CM, 50)
        v = np.array([ideal_sensor.ideal_voltage(x) for x in d])
        assert (np.diff(v) > 0).all()

    def test_foldback_steeper_than_in_range(self, ideal_sensor):
        """'much faster declining sensor values between 0 and 4 cms'."""
        foldback_slope = abs(
            ideal_sensor.ideal_voltage(3.0) - ideal_sensor.ideal_voltage(2.0)
        )
        in_range_slope = abs(
            ideal_sensor.ideal_voltage(10.0) - ideal_sensor.ideal_voltage(11.0)
        )
        assert foldback_slope > 3 * in_range_slope

    def test_beyond_range_returns_floor(self, ideal_sensor):
        assert ideal_sensor.ideal_voltage(35.0) == pytest.approx(
            ideal_sensor.params.floor_voltage, rel=0.2
        )

    def test_peak_is_global_maximum(self, ideal_sensor):
        peak = ideal_sensor.ideal_voltage(ideal_sensor.params.peak_distance_cm)
        d = np.linspace(0.1, 35.0, 300)
        v = np.array([ideal_sensor.ideal_voltage(x) for x in d])
        assert peak >= v.max()

    def test_in_range_predicate(self, ideal_sensor):
        assert ideal_sensor.in_range(10.0)
        assert not ideal_sensor.in_range(3.0)
        assert not ideal_sensor.in_range(31.0)

    @given(d=st.floats(min_value=0.1, max_value=40.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_property_output_bounded(self, d):
        sensor = GP2D120(rng=None)
        v = sensor.ideal_voltage(d)
        assert 0.0 <= v <= sensor.params.saturation_voltage


class TestInversion:
    def test_roundtrip_on_monotone_branch(self, ideal_sensor):
        for d in (4.5, 8.0, 15.0, 28.0):
            v = ideal_sensor.ideal_voltage(d)
            assert ideal_sensor.distance_for_voltage(v) == pytest.approx(
                d, rel=1e-6
            )

    def test_out_of_branch_voltage_rejected(self, ideal_sensor):
        with pytest.raises(ValueError):
            ideal_sensor.distance_for_voltage(4.0)
        with pytest.raises(ValueError):
            ideal_sensor.distance_for_voltage(0.05)

    def test_foldback_aliases_to_in_range(self, ideal_sensor):
        """Every fold-back voltage equals some in-range distance's voltage."""
        v = ideal_sensor.ideal_voltage(2.0)
        alias = ideal_sensor.distance_for_voltage(v)
        assert SENSOR_MIN_CM < alias < SENSOR_MAX_CM


class TestSampling:
    def test_zero_order_hold_within_cycle(self, rng):
        sensor = GP2D120(rng=rng)
        t = 1.0
        first = sensor.output_voltage(t, 10.0)
        within = sensor.output_voltage(t + sensor.params.cycle_time_s * 0.4, 10.0)
        assert first == within

    def test_fresh_measurement_next_cycle(self, rng):
        sensor = GP2D120(rng=rng)
        t = 1.0
        first = sensor.output_voltage(t, 10.0)
        later = sensor.output_voltage(t + sensor.params.cycle_time_s * 2.5, 10.0)
        assert first != later  # fresh noise draw

    def test_noise_scale(self, rng):
        sensor = GP2D120(rng=rng)
        cycle = sensor.params.cycle_time_s
        samples = [
            sensor.output_voltage(i * cycle * 1.1, 15.0) for i in range(300)
        ]
        assert np.std(samples) == pytest.approx(
            sensor.params.noise_rms, rel=0.4
        )

    def test_noiseless_sensor_is_exact(self, ideal_sensor):
        assert ideal_sensor.output_voltage(0.1, 10.0) == pytest.approx(
            ideal_sensor.ideal_voltage(10.0)
        )


class TestSurfaces:
    def test_clothing_color_nearly_does_not_matter(self):
        """<8% output change between white shirt and black jacket."""
        white = GP2D120(rng=None, surface=CLOTHING["white_shirt"])
        black = GP2D120(rng=None, surface=CLOTHING["black_jacket"])
        for d in (5.0, 15.0, 25.0):
            ratio = black.ideal_voltage(d) / white.ideal_voltage(d)
            assert 0.92 < ratio < 1.08

    def test_specular_boundary_surface_corrupts_readings(self, rng):
        sensor = GP2D120(rng=rng, surface=CLOTHING["mirror_patchwork"])
        cycle = sensor.params.cycle_time_s
        readings = np.array(
            [sensor.output_voltage(i * cycle * 1.1, 20.0) for i in range(200)]
        )
        expected = sensor.ideal_voltage(20.0)
        outliers = np.abs(readings - expected) > 0.3
        assert outliers.mean() > 0.2  # a large fraction corrupted

    def test_benign_clothing_does_not_corrupt(self, rng):
        sensor = GP2D120(rng=rng, surface=CLOTHING["gray_fleece"])
        cycle = sensor.params.cycle_time_s
        readings = np.array(
            [sensor.output_voltage(i * cycle * 1.1, 20.0) for i in range(200)]
        )
        expected = sensor.ideal_voltage(20.0)
        assert (np.abs(readings - expected) < 0.2).all()

    def test_surface_validation(self):
        with pytest.raises(ValueError):
            Surface("bad", reflectivity=1.5)
        with pytest.raises(ValueError):
            Surface("bad", specularity=-0.1)


class TestSpecimens:
    def test_specimen_variation_is_bounded(self, rng):
        voltages = []
        for _ in range(20):
            specimen = GP2D120.specimen(rng)
            voltages.append(specimen.ideal_voltage(10.0))
        spread = (max(voltages) - min(voltages)) / np.mean(voltages)
        assert 0.0 < spread < 0.5

    def test_specimens_keep_datasheet_shape(self, rng):
        for _ in range(10):
            specimen = GP2D120.specimen(rng)
            assert specimen.ideal_voltage(5.0) > specimen.ideal_voltage(15.0)
            assert specimen.ideal_voltage(15.0) > specimen.ideal_voltage(29.0)

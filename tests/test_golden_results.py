"""Golden-file regression tests (ISSUE satellite 3).

The committed ``benchmarks/results/FIG4.csv`` / ``FIG5.csv`` are the
paper-figure artifacts; any drift in the sensor model, calibration fit or
RNG stream consumption silently changes the reproduction.  These tests
re-run the experiments in-process at the committed seed and require the
outputs to match the golden files within a tight tolerance.

If a change *intentionally* alters the curves, regenerate the goldens
with ``PYTHONPATH=src python -m pytest benchmarks/bench_fig4_sensor_curve.py
benchmarks/bench_fig5_log_fit.py`` and commit the new CSVs alongside the
change.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

import pytest

from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
TOLERANCE = 1e-6


def load_golden(name: str) -> tuple[list[str], list[list[float]]]:
    path = RESULTS_DIR / name
    if not path.exists():
        pytest.skip(f"golden file {name} not committed")
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [[float(cell) for cell in row] for row in reader if row]
    return header, rows


def assert_matches_golden(result, golden_name: str) -> None:
    header, golden_rows = load_golden(golden_name)
    assert list(result.columns) == header, (
        f"{golden_name}: column layout changed"
    )
    assert len(result.rows) == len(golden_rows), (
        f"{golden_name}: row count {len(result.rows)} != golden "
        f"{len(golden_rows)}"
    )
    for i, (row, golden) in enumerate(zip(result.rows, golden_rows)):
        for name, value, pinned in zip(header, row, golden):
            assert math.isfinite(float(value))
            assert float(value) == pytest.approx(pinned, abs=TOLERANCE), (
                f"{golden_name} row {i} column {name!r}: "
                f"{value!r} drifted from golden {pinned!r}"
            )


def test_fig4_matches_golden():
    result, _ = run_fig4(seed=0, readings_per_point=16)
    assert_matches_golden(result, "FIG4.csv")


def test_fig5_matches_golden():
    result = run_fig5(seed=0, readings_per_point=16)
    assert_matches_golden(result, "FIG5.csv")


def test_rob_fault_csv_schema_pinned():
    """The fault-sweep artifact keeps its schema and healthy-run anchor.

    Timings (and thus exact error counts at high intensity) are tied to
    the seed, so only the structural facts are pinned here: the header,
    the zero-intensity row being fault-free, and pairing holding in every
    committed row.
    """
    header, rows = load_golden("ROB-FAULT.csv")
    assert header == [
        "intensity",
        "trials",
        "errors",
        "error_rate",
        "fault_windows",
        "faults_injected",
        "recoveries",
        "unpaired_faults",
    ]
    baseline = rows[0]
    assert baseline[0] == 0.0  # intensity
    assert baseline[4] == 0.0  # fault_windows
    assert baseline[5] == 0.0  # faults_injected
    rates = [row[3] for row in rows]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert all(row[7] == 0.0 for row in rows)  # unpaired_faults

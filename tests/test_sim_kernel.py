"""Unit and property tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import PeriodicTask, Process, SimulationError, Simulator


class TestScheduling:
    def test_schedule_runs_at_time(self, sim):
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run_until(1.0)
        assert fired == [0.5]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run_until(2.5)
        assert sim.now == 2.5

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, lambda: order.append("b"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.7, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self, sim):
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_time_ties(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=1)
        sim.schedule(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_schedule_at_past_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_run_until_past_rejected(self, sim):
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(0.5, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_event_scheduled_during_event_runs(self, sim):
        fired = []

        def outer():
            sim.schedule(0.5, lambda: fired.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [1.5]

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_run_max_events_stops_early(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_boundary_event_at_run_until_time_runs(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run_until(1.0)
        assert fired == [1]


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=7).rng.random(5)
        b = Simulator(seed=7).rng.random(5)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = Simulator(seed=7).rng.random(5)
        b = Simulator(seed=8).rng.random(5)
        assert not (a == b).all()

    def test_spawn_rng_streams_are_decorrelated(self, sim):
        a = sim.spawn_rng().random(100)
        b = sim.spawn_rng().random(100)
        assert not (a == b).all()

    def test_spawn_rng_reproducible_across_simulators(self):
        s1, s2 = Simulator(seed=3), Simulator(seed=3)
        assert (s1.spawn_rng().random(10) == s2.spawn_rng().random(10)).all()


class TestProcess:
    def test_generator_process_ticks(self, sim):
        ticks = []

        def body():
            for _ in range(3):
                ticks.append(sim.now)
                yield 1.0

        Process(sim, body())
        sim.run()
        assert ticks == [0.0, 1.0, 2.0]

    def test_process_start_delay(self, sim):
        ticks = []

        def body():
            ticks.append(sim.now)
            yield 0.5
            ticks.append(sim.now)

        Process(sim, body(), start_delay=2.0)
        sim.run()
        assert ticks == [2.0, 2.5]

    def test_kill_stops_process(self, sim):
        ticks = []

        def body():
            while True:
                ticks.append(sim.now)
                yield 1.0

        process = Process(sim, body())
        sim.run_until(2.5)
        process.kill()
        sim.run_until(10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not process.alive

    def test_process_finishes_naturally(self, sim):
        def body():
            yield 1.0

        process = Process(sim, body())
        sim.run()
        assert not process.alive

    def test_invalid_yield_raises(self, sim):
        def body():
            yield -1.0

        Process(sim, body())
        with pytest.raises(SimulationError):
            sim.run()


class TestPeriodicTask:
    def test_fires_at_period(self, sim):
        ticks = []
        PeriodicTask(sim, 0.25, lambda: ticks.append(sim.now))
        sim.run_until(1.0)
        assert ticks == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_phase_controls_first_fire(self, sim):
        ticks = []
        PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now), phase=0.0)
        sim.run_until(2.0)
        assert ticks == pytest.approx([0.0, 1.0, 2.0])

    def test_stop_prevents_future_fires(self, sim):
        ticks = []
        task = PeriodicTask(sim, 0.5, lambda: ticks.append(sim.now))
        sim.run_until(1.0)
        task.stop()
        sim.run_until(5.0)
        assert len(ticks) == 2
        assert not task.running

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_jitter_keeps_firing(self, sim):
        ticks = []
        PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now), jitter=0.01)
        sim.run_until(2.0)
        # Roughly 20 fires expected; jitter must not stall or explode.
        assert 10 <= len(ticks) <= 30

    def test_stop_from_within_callback(self, sim):
        ticks = []
        task_holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                task_holder["t"].stop()

        task_holder["t"] = PeriodicTask(sim, 0.1, tick)
        sim.run_until(10.0)
        assert len(ticks) == 3


class TestMisuseErgonomics:
    """Kernel misuse raises SimulationError with actionable messages."""

    def test_rerunning_finished_simulator_rejected(self, sim):
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.finished
        with pytest.raises(SimulationError, match="already ran to completion"):
            sim.run()

    def test_rerun_error_message_is_actionable(self, sim):
        sim.run()
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "schedule new events" in message
        assert "fresh Simulator" in message

    def test_scheduling_after_finish_allows_another_run(self, sim):
        sim.schedule(0.1, lambda: None)
        sim.run()
        fired = []
        sim.schedule(0.2, lambda: fired.append(sim.now))
        assert not sim.finished
        sim.run()
        assert fired == [pytest.approx(0.3)]

    def test_cancelled_leftovers_grant_one_grace_run(self, sim):
        """Scheduling (then cancelling) after finish resets the guard for
        one no-op run; the run after that raises again."""
        sim.schedule(0.1, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None).cancel()
        sim.run()  # drains the cancelled event silently
        with pytest.raises(SimulationError, match="already ran"):
            sim.run()

    def test_max_events_early_return_is_not_finished(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run(max_events=2)
        assert not sim.finished
        sim.run()  # resumes without complaint
        assert sim.finished

    def test_past_delay_message_is_actionable(self, sim):
        with pytest.raises(SimulationError) as excinfo:
            sim.schedule(-0.5, lambda: None)
        message = str(excinfo.value)
        assert "only moves forward" in message
        assert "delay >= 0" in message

    def test_past_absolute_time_message_is_actionable(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError) as excinfo:
            sim.schedule_at(4.0, lambda: None)
        message = str(excinfo.value)
        assert "never rewinds" in message
        assert "fresh Simulator" in message


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_events_execute_in_nondecreasing_time_order(delays):
    """However events are scheduled, execution times never decrease."""
    sim = Simulator(seed=0)
    seen = []
    for delay in delays:
        sim.schedule(delay, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    periods=st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
    horizon=st.floats(min_value=0.5, max_value=10.0),
)
@settings(max_examples=30, deadline=None)
def test_property_periodic_task_fire_counts(periods, horizon):
    """Each task fires floor(horizon/period) times (no jitter)."""
    sim = Simulator(seed=0)
    counters = [0] * len(periods)

    def make_cb(i):
        def cb():
            counters[i] += 1
        return cb

    for i, period in enumerate(periods):
        PeriodicTask(sim, period, make_cb(i))
    sim.run_until(horizon)
    for period, count in zip(periods, counters):
        expected = int(horizon / period + 1e-9)
        assert abs(count - expected) <= 1


class TestRunWhileTimeBoundary:
    """Regression: run_while must never execute an event past max_time.

    The old implementation peeked ``self._queue[0]`` without skipping
    cancelled events; a cancelled head with ``time <= max_time`` let
    ``step()`` execute the next *live* event even when it lay past the
    deadline.
    """

    def test_cancelled_head_does_not_leak_late_event(self):
        sim = Simulator(seed=0)
        fired = []
        early = sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        early.cancel()
        sim.run_while(lambda: True, max_time=2.0)
        assert fired == []
        assert sim.now == 2.0

    def test_many_cancelled_heads_before_late_event(self):
        sim = Simulator(seed=0)
        fired = []
        for delay in (0.1, 0.2, 0.3):
            sim.schedule(delay, lambda: fired.append("cancelled")).cancel()
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run_while(lambda: True, max_time=1.0)
        assert fired == []
        assert sim.now == 1.0

    def test_live_events_within_deadline_still_run(self):
        sim = Simulator(seed=0)
        times = []
        sim.schedule(0.25, lambda: times.append(sim.now)).cancel()
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run_while(lambda: True, max_time=1.0)
        assert times == [0.5]
        assert sim.now == 1.0

    def test_condition_stop_leaves_clock_at_last_event(self):
        sim = Simulator(seed=0)
        count = {"n": 0}

        def bump():
            count["n"] += 1
            sim.schedule(0.1, bump)

        sim.schedule(0.1, bump)
        sim.run_while(lambda: count["n"] < 3, max_time=100.0)
        assert count["n"] == 3
        assert sim.now == pytest.approx(0.3)

    @given(
        live=st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        cancelled=st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            max_size=8,
        ),
        max_time=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_never_runs_past_max_time(self, live, cancelled, max_time):
        sim = Simulator(seed=0)
        executed = []
        for delay in live:
            sim.schedule(delay, lambda d=delay: executed.append(d))
        for delay in cancelled:
            sim.schedule(delay, lambda: executed.append("boom")).cancel()
        sim.run_while(lambda: True, max_time=max_time)
        assert all(t <= max_time for t in executed)
        assert sorted(d for d in live if d <= max_time) == sorted(executed)


class TestEventSlots:
    """The Event restructure (PR 4): __slots__, tuple heap keys."""

    def test_no_instance_dict(self):
        sim = Simulator(seed=0)
        event = sim.schedule(1.0, lambda: None)
        assert not hasattr(event, "__dict__")

    def test_ordering_key(self):
        sim = Simulator(seed=0)
        early = sim.schedule(1.0, lambda: None)
        late = sim.schedule(2.0, lambda: None)
        urgent = sim.schedule(2.0, lambda: None, priority=-1)
        assert early < late
        assert urgent < late  # same time, lower priority value wins
        assert late < sim.schedule(2.0, lambda: None)  # FIFO via seq

    def test_cancel_is_idempotent_in_the_corpse_count(self):
        sim = Simulator(seed=0)
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert sim._cancelled_in_queue == 1

    def test_repr_mentions_cancelled(self):
        sim = Simulator(seed=0)
        event = sim.schedule(1.0, lambda: None)
        assert "cancelled" not in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)

    def test_cancel_after_execution_does_not_corrupt_count(self):
        """The accounting hook detaches when an event leaves the queue, so
        a late cancel() cannot drive the corpse count negative."""
        sim = Simulator(seed=0)
        fired = sim.schedule(0.1, lambda: None)
        sim.run()
        fired.cancel()
        assert sim._cancelled_in_queue == 0


class TestQueueCompaction:
    def test_compaction_purges_corpses(self):
        sim = Simulator(seed=0)
        keep = [sim.schedule(1.0 + i, lambda: None) for i in range(40)]
        kill = [sim.schedule(2.0 + i, lambda: None) for i in range(200)]
        for event in kill:
            event.cancel()
        # The next push sees 200 corpses > max(64, half the queue) and
        # rebuilds the heap.
        keep.append(sim.schedule(500.0, lambda: None))
        assert sim._cancelled_in_queue == 0
        assert len(sim._queue) == len(keep)

    def test_small_queues_never_compact(self):
        sim = Simulator(seed=0)
        for i in range(30):
            sim.schedule(1.0 + i, lambda: None).cancel()
        sim.schedule(100.0, lambda: None)
        # 30 corpses is under the 64 floor: nothing purged yet.
        assert sim._cancelled_in_queue == 30
        assert len(sim._queue) == 31

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=150,
            max_size=300,
        ),
        cancel_stride=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_execution_order_survives_compaction(
        self, delays, cancel_stride
    ):
        """Compaction keeps the (time, priority, seq) keys, so the
        surviving events run in exactly the order they would have without
        the purge: sorted by time, FIFO among ties."""
        sim = Simulator(seed=0)
        executed = []
        events = [
            sim.schedule(delay, lambda i=i: executed.append(i))
            for i, delay in enumerate(delays)
        ]
        survivors = []
        for i, event in enumerate(events):
            if i % (cancel_stride + 1) != 0:
                event.cancel()
            else:
                survivors.append(i)
        sim.schedule(1e9, lambda: None)  # push that may trigger compaction
        sim.run()
        expected = [
            i for _, i in sorted((delays[i], i) for i in survivors)
        ]
        assert executed == expected

    def test_cancel_churn_scenario_matches_uncompacted_run(self, monkeypatch):
        """The same periodic-task churn with compaction disabled produces
        the identical event trace — the purge is invisible."""
        import repro.sim.kernel as kernel

        def run_churn():
            sim = Simulator(seed=3)
            ticks = []
            for generation in range(6):
                tasks = [
                    PeriodicTask(
                        sim,
                        0.01 + i * 1e-4,
                        lambda g=generation: ticks.append((g, sim.now)),
                    )
                    for i in range(40)
                ]
                sim.run_until(sim.now + 0.05)
                for task in tasks:
                    task.stop()
            sim.run()
            return ticks, sim.events_processed

        baseline = run_churn()  # compaction active (default constants)
        monkeypatch.setattr(kernel, "_COMPACT_MIN_CANCELLED", 10**9)
        assert run_churn() == baseline


class TestSpawnPooling:
    def test_spawned_streams_match_unpooled_seedsequence(self):
        """Pool refills use SeedSequence.spawn(n), which numpy guarantees
        yields the same children as n separate spawn(1) calls — so every
        generator the simulator hands out is bit-identical to the
        pre-pooling implementation."""
        import numpy as np

        sim = Simulator(seed=123)
        reference = np.random.SeedSequence(123).spawn(20)
        # Child 0 seeds sim.rng; spawn_rng() serves 1, 2, ...
        rngs = [sim.rng] + [sim.spawn_rng() for _ in range(19)]
        for child, rng in zip(reference, rngs):
            expected = np.random.default_rng(child)
            assert (
                rng.bit_generator.state == expected.bit_generator.state
            )

    def test_pool_refills_beyond_one_batch(self):
        import numpy as np

        sim = Simulator(seed=7)
        reference = np.random.SeedSequence(7).spawn(40)
        for child in reference[1:]:  # 0 went to sim.rng
            rng = sim.spawn_rng()
            expected = np.random.default_rng(child)
            assert rng.bit_generator.state == expected.bit_generator.state


class TestJitterBatching:
    def test_jitter_ticks_match_scalar_draws(self):
        """Pre-drawn normal(size=n) jitter must replay the exact tick
        times of per-tick scalar draws from the same spawned stream."""
        import numpy as np

        sim = Simulator(seed=11)
        times = []
        PeriodicTask(sim, 0.1, lambda: times.append(sim.now), jitter=0.01)
        sim.run(max_events=100)

        # Reference: the task's private generator is the simulator's
        # second spawned child (sim.rng took the first).
        rng = np.random.default_rng(np.random.SeedSequence(11).spawn(2)[1])
        expected = [0.1]  # first fire: phase defaults to one clean period
        clock = 0.1
        for _ in range(99):
            delay = max(0.1 + rng.normal(0.0, 0.01), 0.1 * 0.1)
            clock += delay
            expected.append(clock)
        assert times == expected

    def test_jitter_free_task_draws_nothing(self):
        sim = Simulator(seed=0)
        state_before = sim.rng.bit_generator.state
        count = [0]

        def bump():
            count[0] += 1

        task = PeriodicTask(sim, 0.1, bump)
        sim.run(max_events=50)
        task.stop()
        assert count[0] == 50
        assert sim.rng.bit_generator.state == state_before


class TestProcessPendingFix:
    def test_pending_assigned_exactly_once(self):
        """PR 4 satellite: Process.__init__ used to assign self._pending
        twice (a leftover None pre-assignment); the surviving single
        assignment must hold the start event so kill() can cancel it."""
        sim = Simulator(seed=0)

        def body():
            yield 1.0

        process = Process(sim, body(), start_delay=5.0)
        assert process._pending is not None
        assert process._pending.time == 5.0
        process.kill()
        assert process._pending.cancelled
        sim.run()
        assert not process.alive

"""Tests for the hand motor model, Fitts utilities, gloves and tasks."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interaction.fitts import (
    fit_fitts,
    index_of_difficulty,
    movement_time,
    throughput,
)
from repro.interaction.gloves import GLOVES, Glove
from repro.interaction.hand import Hand, minimum_jerk
from repro.interaction.tasks import fitts_ladder, hierarchical_tasks, random_targets
from repro.core.menu import build_menu
from repro.sim.kernel import Simulator


class TestMinimumJerk:
    def test_endpoints(self):
        assert minimum_jerk(0.0) == 0.0
        assert minimum_jerk(1.0) == 1.0

    def test_midpoint(self):
        assert minimum_jerk(0.5) == pytest.approx(0.5)

    def test_clamped_outside_unit(self):
        assert minimum_jerk(-1.0) == 0.0
        assert minimum_jerk(2.0) == 1.0

    def test_monotone(self):
        taus = np.linspace(0, 1, 100)
        values = [minimum_jerk(t) for t in taus]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_smooth_start_and_stop(self):
        """Velocity near zero at both ends (bell-shaped profile)."""
        eps = 1e-4
        v_start = (minimum_jerk(eps) - minimum_jerk(0.0)) / eps
        v_mid = (minimum_jerk(0.5 + eps) - minimum_jerk(0.5)) / eps
        v_end = (minimum_jerk(1.0) - minimum_jerk(1.0 - eps)) / eps
        assert v_start < 0.01
        assert v_end < 0.01
        assert v_mid > 1.0


class TestHand:
    def test_writes_pose(self):
        sim = Simulator(seed=0)
        positions = []
        hand = Hand(sim, positions.append, start_cm=20.0, rng=None)
        sim.run_until(0.1)
        assert positions
        assert positions[-1] == pytest.approx(20.0)

    def test_reach_arrives_at_target(self):
        sim = Simulator(seed=0)
        pose = {}
        hand = Hand(sim, lambda d: pose.update(d=d), start_cm=20.0, rng=None)
        hand.move_to(8.0, 0.5)
        sim.run_until(1.0)
        assert pose["d"] == pytest.approx(8.0, abs=0.01)
        assert not hand.is_moving

    def test_midflight_position_between_endpoints(self):
        sim = Simulator(seed=0)
        hand = Hand(sim, lambda d: None, start_cm=20.0, rng=None)
        hand.move_to(10.0, 1.0)
        sim.run_until(0.5)
        pos = hand.position()
        assert 10.0 < pos < 20.0

    def test_preemption_starts_from_current(self):
        sim = Simulator(seed=0)
        hand = Hand(sim, lambda d: None, start_cm=20.0, rng=None)
        hand.move_to(10.0, 1.0)
        sim.run_until(0.5)
        mid = hand.position(include_tremor=False)
        hand.move_to(25.0, 0.5)
        sim.run_until(0.51)
        after = hand.position(include_tremor=False)
        assert abs(after - mid) < 1.0  # continuous, no teleport

    def test_tremor_present_with_rng(self):
        sim = Simulator(seed=0)
        positions = []
        Hand(sim, positions.append, start_cm=15.0, rng=sim.spawn_rng(),
             tremor_rms_cm=0.1)
        sim.run_until(2.0)
        assert np.std(positions) > 0.01
        assert np.std(positions) < 0.5

    def test_tremor_absent_without_rng(self):
        sim = Simulator(seed=0)
        positions = []
        Hand(sim, positions.append, start_cm=15.0, rng=None)
        sim.run_until(1.0)
        assert np.std(positions) == 0.0

    def test_path_accumulates(self):
        sim = Simulator(seed=0)
        hand = Hand(sim, lambda d: None, start_cm=20.0, rng=None)
        hand.move_to(10.0, 0.5)
        sim.run_until(0.6)
        assert hand.total_path_cm == pytest.approx(10.0, rel=0.05)

    def test_invalid_duration(self):
        sim = Simulator(seed=0)
        hand = Hand(sim, lambda d: None, rng=None)
        with pytest.raises(ValueError):
            hand.move_to(10.0, 0.0)

    def test_never_writes_nonpositive_distance(self):
        sim = Simulator(seed=0)
        positions = []
        hand = Hand(sim, positions.append, start_cm=2.0, rng=sim.spawn_rng())
        hand.move_to(0.0, 0.3)
        sim.run_until(1.0)
        assert min(positions) >= 0.5


class TestFitts:
    def test_id_formula(self):
        assert index_of_difficulty(7.0, 1.0) == pytest.approx(3.0)
        assert index_of_difficulty(0.0, 1.0) == 0.0

    def test_id_validation(self):
        with pytest.raises(ValueError):
            index_of_difficulty(1.0, 0.0)
        with pytest.raises(ValueError):
            index_of_difficulty(-1.0, 1.0)

    def test_movement_time(self):
        assert movement_time(0.1, 0.2, 7.0, 1.0) == pytest.approx(0.7)

    def test_fit_recovers_known_line(self):
        ids = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        times = 0.15 + 0.12 * ids
        fit = fit_fitts(ids, times)
        assert fit.a == pytest.approx(0.15)
        assert fit.b == pytest.approx(0.12)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.bandwidth_bits_per_s == pytest.approx(1 / 0.12)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_fitts(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_fitts(np.ones(5), np.ones(5))

    def test_throughput(self):
        ids = np.array([2.0, 4.0])
        times = np.array([1.0, 2.0])
        assert throughput(ids, times) == pytest.approx(2.0)

    @given(
        a=st.floats(min_value=0.0, max_value=0.5),
        b=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_fit_inverts_generation(self, a, b):
        ids = np.linspace(0.5, 6.0, 12)
        times = a + b * ids
        fit = fit_fitts(ids, times)
        assert fit.a == pytest.approx(a, abs=1e-9)
        assert fit.b == pytest.approx(b, abs=1e-9)


class TestGloves:
    def test_presets_ordered_by_thickness(self):
        order = ["none", "latex", "chemical", "winter", "arctic"]
        thicknesses = [GLOVES[k].thickness_mm for k in order]
        assert thicknesses == sorted(thicknesses)

    def test_touch_error_grows_with_thickness(self):
        assert (
            GLOVES["arctic"].touch_error_factor
            > GLOVES["winter"].touch_error_factor
            > GLOVES["latex"].touch_error_factor
        )

    def test_large_button_forgives_mittens(self):
        arctic = GLOVES["arctic"]
        small = arctic.effective_miss_probability(40.0)
        large = arctic.effective_miss_probability(250.0)
        assert large < small / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Glove("bad", thickness_mm=-1.0)
        with pytest.raises(ValueError):
            Glove("bad", thickness_mm=1.0, button_miss_probability=1.5)
        with pytest.raises(ValueError):
            Glove("bad", thickness_mm=1.0, tremor_factor=0.0)


class TestTasks:
    def test_random_targets_in_range(self, rng):
        targets = random_targets(10, 50, rng, min_separation=2)
        assert all(0 <= t < 10 for t in targets)
        assert all(
            abs(b - a) >= 2 for a, b in zip(targets, targets[1:])
        )

    def test_unsatisfiable_separation_rejected(self, rng):
        with pytest.raises(ValueError):
            random_targets(3, 5, rng, min_separation=3)

    def test_fitts_ladder_pairs_valid(self):
        pairs = fitts_ladder(10, repetitions=2)
        for start, target in pairs:
            assert 0 <= start < 10
            assert 0 <= target < 10
            assert start != target

    def test_fitts_ladder_alternates_direction(self):
        pairs = fitts_ladder(10, repetitions=2, distances=[4])
        assert pairs[0] == (pairs[1][1], pairs[1][0])

    def test_fitts_ladder_bad_distance(self):
        with pytest.raises(ValueError):
            fitts_ladder(5, distances=[7])

    def test_hierarchical_tasks_are_valid_paths(self, rng):
        menu = build_menu({"A": ["a1", "a2"], "B": {"C": ["c1"]}})
        tasks = list(hierarchical_tasks(menu, 20, rng))
        assert len(tasks) == 20
        valid = {("A", "a1"), ("A", "a2"), ("B", "C", "c1")}
        assert set(tasks) <= valid

    def test_hierarchical_tasks_leafless_menu(self, rng):
        menu = build_menu({})
        with pytest.raises(ValueError):
            list(hierarchical_tasks(menu, 1, rng))

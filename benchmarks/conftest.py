"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one DESIGN.md experiment: pytest-benchmark
times the harness, while the *scientific* output — the paper's rows and
series — is printed through the :func:`report` fixture (bypassing
capture so it lands in ``bench_output.txt``) and persisted as CSV under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult table to the real stdout and save CSV."""

    def _report(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        result.to_csv(RESULTS_DIR / f"{result.experiment_id.replace('/', '_')}.csv")
        with capsys.disabled():
            print()
            print(result.table())

    return _report

#!/usr/bin/env python
"""Hazardous-lab stocktaking with gloves — the paper's flagship scenario.

Section 5.2: gloves "reduce the tactile sensation of the hand and
fingers and make touch and stylus interfaces harder to use"; stocktaking
needs one hand for the items and one for the device.  This example runs
the same inventory-logging session in four glove conditions and then
shows why the alternatives fail: the same selection workload through the
touch-screen and button baselines.

Run:  python examples/glove_lab.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.stocktaking import StocktakingSession
from repro.baselines import ButtonScroller, TouchScroller
from repro.interaction.gloves import GLOVES


def main() -> None:
    print("Stocktaking in a chemical lab, one-handed, gloved")
    print("=================================================\n")

    print(f"{'glove':<24} {'items/min':>10} {'s/item':>8} {'wrong':>6}")
    print("-" * 52)
    for key in ("none", "latex", "chemical", "winter"):
        session = StocktakingSession(seed=11, glove=GLOVES[key], n_items=5)
        reportcard = session.run()
        print(
            f"{GLOVES[key].name:<24} "
            f"{reportcard['items_per_minute']:>10.1f} "
            f"{reportcard['mean_item_time_s']:>8.2f} "
            f"{reportcard['wrong_activations']:>6d}"
        )

    print("\nWhy not just use the touch screen or the keypad?")
    print(f"{'technique':<12} {'glove':<22} {'mean s':>8} {'errors/trial':>13}")
    print("-" * 58)
    for tech_cls, tech_name in ((TouchScroller, "touch"), (ButtonScroller, "buttons")):
        for key in ("none", "chemical", "arctic"):
            rng = np.random.default_rng(3)
            technique = tech_cls(rng=rng, glove=GLOVES[key])
            trials = [technique.select(0, t, 12) for t in (3, 7, 11) * 3]
            mean_s = float(np.mean([t.duration_s for t in trials]))
            errors = sum(t.errors for t in trials) / len(trials)
            print(
                f"{tech_name:<12} {GLOVES[key].name:<22} "
                f"{mean_s:>8.2f} {errors:>13.2f}"
            )

    print(
        "\nThe gross-arm-movement channel survives every glove class;"
        "\nfine-motor channels (touch taps, small keys) degrade steeply."
    )


if __name__ == "__main__":
    main()

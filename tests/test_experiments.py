"""Integration tests: every DESIGN.md experiment reproduces its shape.

These run the actual benchmark harnesses at reduced sizes and assert on
the *qualitative* claims of the paper (who wins, what is flat, what
explodes) rather than absolute numbers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import (
    max_flat_entries,
    run_ablation_mapping,
    run_direction,
    run_fig4,
    run_fig5,
    run_foldback,
    run_gloves_bench,
    run_island_mapping,
    run_long_menus,
    run_range_sweep,
    run_sensor_env,
    run_speed_comparison,
    run_stocktaking_by_glove,
    run_user_study,
)


class TestFig4:
    def test_rows_cover_sensor_range(self):
        result, calibration = run_fig4(seed=0, readings_per_point=8)
        distances = result.column("distance_cm")
        assert distances[0] == pytest.approx(4.0)
        assert distances[-1] >= 29.0

    def test_monotone_decline(self):
        result, _ = run_fig4(seed=0, readings_per_point=8)
        voltages = result.column("measured_V")
        assert all(b < a for a, b in zip(voltages, voltages[1:]))

    def test_fit_passes_near_all_samples(self):
        _, calibration = run_fig4(seed=0, readings_per_point=8)
        assert calibration.hyperbola.r2 > 0.999

    def test_datasheet_anchors(self):
        result, _ = run_fig4(seed=0, readings_per_point=8)
        voltages = result.column("measured_V")
        assert 2.3 < voltages[0] < 3.2  # ~2.75 V at 4 cm
        assert 0.2 < voltages[-1] < 0.6  # ~0.4 V at 30 cm


class TestFig5:
    def test_log_fit_nearly_perfect(self):
        result = run_fig5(seed=0, readings_per_point=8)
        note = result.notes[0]
        r2 = float(note.split("R^2 = ")[1].rstrip(")"))
        assert r2 > 0.99

    def test_log_rows_linear(self):
        result = run_fig5(seed=0, readings_per_point=8)
        x = np.array(result.column("log10_distance"))
        y = np.array(result.column("log10_measured_V"))
        corr = np.corrcoef(x, y)[0, 1]
        assert corr < -0.995  # a near-perfect straight declining line


class TestSensorEnv:
    def test_clothing_invariance_and_specular_failure(self):
        result = run_sensor_env(
            seed=0,
            readings_per_point=4,
            surfaces=["white_shirt", "black_jacket", "mirror_patchwork"],
            ambients=["indoor"],
        )
        devs = dict(
            zip(result.column("surface"), result.column("max_dev_vs_ref_pct"))
        )
        assert devs["black_jacket"] < 12.0
        assert devs["mirror_patchwork"] > 40.0

    def test_sunlight_only_adds_noise(self):
        result = run_sensor_env(
            seed=0,
            readings_per_point=4,
            surfaces=["white_shirt"],
            ambients=["dark", "sunlight"],
        )
        residuals = dict(
            zip(result.column("light"), result.column("rms_residual_mV"))
        )
        assert residuals["sunlight"] < 10 * max(residuals["dark"], 1.0)


class TestFoldback:
    def test_all_claims(self):
        result = run_foldback(seed=2)
        aliases = result.column("alias_cm")
        assert all(4.0 < a < 30.0 for a in aliases if not math.isnan(a))
        joined = " ".join(result.notes)
        assert "preserved=True with the fold-back latch" in joined
        assert "preserved=False without" in joined
        rate = float(joined.split("sustains ")[1].split(" entries/s")[0])
        assert 6.0 < rate < 14.0  # near the configured 12/s


class TestIslandMapping:
    def test_spacing_uniform_and_stable(self):
        result = run_island_mapping(seed=1, hold_time_s=2.0)
        assert max(result.column("spacing_cv")) < 1e-6
        assert max(result.column("flicker_center_hz")) == 0.0
        assert max(result.column("flicker_gap_hz")) <= 0.5
        assert all(0.4 < c < 1.0 for c in result.column("coverage"))


class TestUserStudy:
    def test_prompt_discovery_and_low_errors(self):
        result = run_user_study(
            seed=0, n_users=4, n_blocks=2, trials_per_block=4
        )
        assert "4/4 users" in result.notes[0]
        late_error_rates = result.column("error_rate")[1:]
        assert all(rate < 0.25 for rate in late_error_rates)

    def test_trials_get_no_slower_with_practice(self):
        result = run_user_study(
            seed=0, n_users=4, n_blocks=3, trials_per_block=4
        )
        times = result.column("mean_trial_s")
        assert times[-1] < times[0] * 1.3


class TestSpeedComparison:
    def test_buttons_linear_distscroll_flat(self):
        comparison, fitts = run_speed_comparison(
            seed=1,
            menu_lengths=(6, 18),
            repetitions=2,
            techniques=("distscroll", "buttons"),
        )
        rows = {
            (r[0], r[1]): r[2] for r in comparison.rows
        }  # (technique, len) -> mean
        button_growth = rows[("buttons", 18)] / rows[("buttons", 6)]
        dist_growth = rows[("distscroll", 18)] / rows[("distscroll", 6)]
        assert dist_growth < button_growth

    def test_fitts_holds_for_distscroll(self):
        _, fitts = run_speed_comparison(
            seed=3,
            menu_lengths=(8, 24),
            repetitions=4,
            techniques=("distscroll",),
        )
        assert fitts.rows, "no regression produced"
        row = fitts.rows[0]
        b, r2 = row[2], row[3]
        assert b > 0.0  # positive slope: harder targets take longer
        # Total task time includes reaction/verify/press noise, so the
        # ID-only regression explains a modest share — but reliably > 0.
        assert r2 > 0.1


class TestRangeSweep:
    def test_narrow_ranges_cost_accuracy(self):
        result = run_range_sweep(
            seed=1,
            ranges=((5.0, 10.0), (5.0, 28.0)),
            n_entries=10,
            n_trials=5,
            n_users=2,
        )
        subs = dict(zip(result.column("range_cm"), result.column("submovements")))
        assert subs["5-10"] >= subs["5-28"]

    def test_excursion_grows_with_span(self):
        result = run_range_sweep(
            seed=1,
            ranges=((5.0, 12.0), (5.0, 28.0)),
            n_entries=8,
            n_trials=5,
            n_users=2,
        )
        excursions = result.column("mean_excursion_cm")
        assert excursions[1] > excursions[0]


class TestLongMenus:
    def test_flat_limit_exists(self):
        limit = max_flat_entries()
        assert 20 < limit < 120

    def test_chunked_beats_flat_for_long_menus(self):
        result = run_long_menus(
            seed=1, menu_lengths=(40,), n_trials=4, n_users=2
        )
        by_mode = {r[1]: r for r in result.rows}
        flat_subs = by_mode["flat"][4]
        chunked_subs = by_mode["chunked"][4]
        # Flat 40-entry islands are noise-limited: more corrections.
        assert math.isnan(flat_subs) or flat_subs >= chunked_subs * 0.8


class TestDirection:
    def test_wrong_way_reaches_and_learnability(self):
        result = run_direction(seed=2, n_users=6, n_trials=6, n_entries=8)
        assert len(result.rows) == 2
        for row in result.rows:
            first3, last3 = row[2], row[3]
            assert last3 < first3 * 1.5  # polarity is learnable
        total_wrong = sum(r[4] for r in result.rows)
        assert total_wrong >= 1  # somebody reached the wrong way


class TestAblationMapping:
    def test_paper_design_wins(self):
        result = run_ablation_mapping(
            seed=1, n_entries=12, n_trials=5, n_users=2
        )
        by_variant = {r[0]: r for r in result.rows}
        paper = by_variant["paper (equal-dist + gaps)"]
        naive = by_variant["naive (equal-code + gaps)"]
        nogaps = by_variant["no gaps (full coverage)"]
        # Spacing: the paper's placement is uniform, the naive one is not.
        assert paper[1] < 0.01
        assert naive[1] > 0.3
        # Boundary flicker: gaps suppress it.
        assert paper[2] <= nogaps[2] + 0.5


class TestGloves:
    def test_distscroll_degrades_least(self):
        result = run_gloves_bench(
            seed=1,
            gloves=("none", "arctic"),
            techniques=("distscroll", "touch"),
            n_entries=10,
            n_trials=5,
        )
        slowdown = {
            (r[0], r[1]): r[4] for r in result.rows
        }
        assert slowdown[("arctic", "distscroll")] < slowdown[("arctic", "touch")]

    def test_stocktaking_works_in_all_gloves(self):
        result = run_stocktaking_by_glove(
            seed=2, gloves=("none", "winter"), n_items=2
        )
        rates = result.column("items_per_minute")
        assert all(rate > 2.0 for rate in rates)

"""Synthetic skewed fan-out workload for the ``runner-fanout`` benchmark.

The scheduler's job is hardest when shard costs are *skewed*: a naive
submission-order schedule strands a straggler at the tail and leaves
the other workers idle, while cost-aware LPT ordering starts the
expensive shards first and packs the cheap ones into the gaps.  This
module provides a deterministic, CPU-bound experiment whose per-shard
cost is exactly its sweep value, so the benchmark can measure worker
utilisation (``scheduler_efficiency``) on a workload where scheduling
order genuinely matters.

The entry point is a normal ``param``-sharded experiment — it runs
through :func:`repro.runner.pool.run_experiments` on the work-queue
backend like any registry experiment — but it is synthetic on purpose:
its rows carry a checksum of the busy-compute, not science, and it is
not registered in the experiment registry.

No clocks are read here (the driver measures all spans); the busy loop
is pure deterministic arithmetic with no RNG.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.runner.registry import ExperimentSpec

__all__ = ["SKEWED_COSTS", "fanout_spec", "run_fanout_points"]

#: Deliberately skewed relative shard costs: one dominant straggler,
#: a mid tier, and a tail of cheap shards — the shape that punishes
#: submission-order scheduling hardest.  Sweep values double as LPT
#: cost estimates (see ``estimate_shard_cost``).
SKEWED_COSTS: tuple[int, ...] = (12, 9, 7, 5, 4, 3, 2, 2, 1, 1, 1, 1)

#: Busy-compute vector length; one "iteration" is one pass over this.
_CHUNK = 4096


def _busy(iterations: int) -> float:
    """Deterministic CPU-bound work: ``iterations`` vector transforms."""
    data = np.arange(_CHUNK, dtype=np.float64) / _CHUNK
    acc = 0.0
    for _ in range(iterations):
        data = np.sin(data) + 0.5
        acc += float(data[-1])
    return acc


def run_fanout_points(
    seed: int, costs: Sequence[int], scale: int = 50
) -> ExperimentResult:
    """Execute the busy-compute sweep points and tabulate checksums.

    ``costs`` arrives as a one-element tuple per shard (the ``param``
    sharder's contract); each point performs ``cost * scale``
    iterations, so wall time is proportional to the sweep value.
    """
    result = ExperimentResult(
        experiment_id="FANOUT",
        title="synthetic skewed fan-out (scheduler benchmark)",
        columns=("cost", "iterations", "checksum"),
    )
    for cost in costs:
        if int(cost) < 0:
            raise ValueError(f"fan-out cost must be non-negative: {cost}")
        iterations = int(cost) * scale
        checksum = _busy(iterations) + seed  # seed in rows, not in work
        result.add_row(int(cost), iterations, round(checksum, 6))
    return result


def fanout_spec(
    costs: Sequence[int] = SKEWED_COSTS, scale: int = 50
) -> ExperimentSpec:
    """A ``param``-sharded spec for the synthetic fan-out experiment."""
    return ExperimentSpec(
        experiment_id="FANOUT",
        entry="repro.perf.fanout:run_fanout_points",
        params=(("scale", scale),),
        sharder="param",
        shard_param="costs",
        shard_values=tuple(int(cost) for cost in costs),
    )

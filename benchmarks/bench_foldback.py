"""SENS-FOLD — fold-back ambiguity, firmware latch, fast-scroll exploit."""

from __future__ import annotations

from repro.experiments import run_foldback


def test_bench_foldback(benchmark, report):
    result = benchmark.pedantic(
        run_foldback, kwargs={"seed": 2}, rounds=1, iterations=1
    )
    report(result)
    joined = " ".join(result.notes)
    assert "preserved=True with the fold-back latch" in joined

"""Statistics helpers shared by experiments and benchmarks."""

from repro.analysis.stats import Summary, bootstrap_ci, linear_regression, summarize

__all__ = ["Summary", "bootstrap_ci", "linear_regression", "summarize"]

"""EXT-LONG — §7 Q4: "How to scroll long menus?"

The paper suggests chunking ("large menus could only be accessed in
chunks of e.g. 10 entries") and cites speed-dependent automatic zooming
as an alternative.  The experiment compares, across menu lengths:

* **flat** mapping (chunking disabled) — every entry gets an island on
  the full range, so islands shrink with menu length until sensor noise
  dominates (or until the map cannot be built at all, which the harness
  reports instead of a number);
* **chunked** mapping — pages of 10 with the aux button, constant island
  width, plus paging overhead;
* **sdaz** — the paper's cited suggestion (Igarashi & Hinckley):
  speed-dependent automatic zooming with dwell-to-zoom and edge panning,
  entirely buttonless (see :mod:`repro.core.sdaz`).

The crossover points — where chunking/zooming start winning — are the
table's payoff, together with the maximum flat menu the hardware
supports.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_long_menus", "max_flat_entries"]


def max_flat_entries(limit: int = 120) -> int:
    """Largest flat menu the island construction supports on this sensor.

    Grows the entry count until adjacent islands collapse onto the same
    ADC codes.
    """
    from repro.core.islands import build_island_map
    from repro.hardware.adc import ADC
    from repro.sensors.gp2d120 import GP2D120

    sensor = GP2D120(rng=None)
    adc = ADC(rng=None)
    supported = 1
    for n in range(2, limit + 1):
        try:
            build_island_map(sensor, adc, n)
        except ValueError:
            break
        supported = n
    return supported


def run_long_menus(
    seed: int = 0,
    menu_lengths: tuple[int, ...] = (10, 20, 40, 60),
    n_trials: int = 8,
    n_users: int = 2,
    chunk_size: int = 10,
) -> ExperimentResult:
    """Compare flat, chunked and SDAZ access across menu lengths."""
    result = ExperimentResult(
        experiment_id="EXT-LONG",
        title="Long menus: flat vs 10-entry chunking vs SDAZ",
        columns=(
            "menu_len",
            "mode",
            "mean_trial_s",
            "wrong_per_trial",
            "submovements",
        ),
    )
    master = np.random.default_rng(seed)
    flat_limit = max_flat_entries()

    for n_entries in menu_lengths:
        modes = (
            ("flat", DeviceConfig(chunk_size=0)),
            ("chunked", DeviceConfig(chunk_size=chunk_size)),
            (
                "sdaz",
                DeviceConfig(chunk_size=chunk_size, long_menu_mode="sdaz"),
            ),
        )
        for mode, config in modes:
            if mode == "flat" and n_entries > flat_limit:
                result.add_row(n_entries, mode, float("nan"), float("nan"),
                               float("nan"))
                continue
            stats = _run_condition(
                master, n_entries, config, n_trials, n_users
            )
            result.add_row(n_entries, mode, *stats)

    result.note(
        f"flat mapping is impossible beyond {flat_limit} entries on this "
        "sensor/ADC (adjacent islands collapse) — hardware motivation for "
        "chunking"
    )
    result.note(
        "expected: flat wins for short menus (no paging overhead); chunked "
        "wins once flat islands compress into noise; sdaz trades paging "
        "clicks for zoom dwells and scales to arbitrary lengths"
    )
    return result


def _run_condition(
    master: np.random.Generator,
    n_entries: int,
    config: DeviceConfig,
    n_trials: int,
    n_users: int,
) -> tuple[float, float, float]:
    labels = [f"Item {i:03d}" for i in range(n_entries)]
    times, wrongs, subs = [], [], []
    for _ in range(n_users):
        user_seed = int(master.integers(2**31))
        rng = np.random.default_rng(user_seed)
        device = DistScroll(build_menu(labels), config=config, seed=user_seed)
        user = SimulatedUser(device=device, rng=rng)
        user.practice_trials = 30
        device.run_for(0.5)
        targets = random_targets(n_entries, n_trials, rng, min_separation=2)
        for target in targets:
            trial = user.select_entry(target)
            times.append(trial.duration_s)
            wrongs.append(trial.wrong_activations)
            subs.append(trial.submovements)
            while device.depth > 0:
                device.click("back")
    return (
        float(np.mean(times)),
        float(np.mean(wrongs)),
        float(np.mean(subs)),
    )

"""Runner v2: executors, shard cache, manifests, retry and speculation.

The contract under test throughout: the merged CSV bytes are identical
for any backend, any job count, any crash/retry interleaving, any
cache/resume split, and speculation on or off.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.fanout import fanout_spec
from repro.runner import (
    BACKENDS,
    REGISTRY,
    ResultCache,
    RunManifest,
    ShardExecutionError,
    estimate_shard_cost,
    execute_shard,
    make_executor,
    make_shard,
    make_shards,
    n_shards,
    run_experiments,
    run_key,
    shard_result_digest,
)
from repro.runner.executors import Completion, InlineExecutor
from repro.runner.pool import _handle_completion
from repro.runner.sharding import ShardResult

#: A fast skewed workload: one straggler, a tail of cheap shards.
FAST_SPEC = fanout_spec(costs=(6, 1, 1, 1), scale=5)

#: Same shape, but the straggler runs long enough (hundreds of ms) to
#: guarantee the tail drains while it is still in flight — the setup
#: the speculation policy needs to trigger deterministically.
SLOW_STRAGGLER_SPEC = fanout_spec(costs=(400, 1, 1, 1), scale=20)


def _run_csv(tmp_path, name, spec=FAST_SPEC, **kwargs):
    """Run FANOUT into ``tmp_path/name`` and return the CSV bytes."""
    csv_dir = tmp_path / name
    _results, bench = run_experiments(
        ["FANOUT"],
        overrides={"FANOUT": spec},
        csv_dir=csv_dir,
        **kwargs,
    )
    return (csv_dir / "FANOUT.csv").read_bytes(), bench


class TestShardDerivation:
    def test_make_shard_matches_make_shards_for_every_registry_spec(self):
        for spec in REGISTRY.values():
            shards = make_shards(spec, seed=3)
            assert len(shards) == n_shards(spec, seed=3)
            for shard in shards:
                assert make_shard(spec, 3, shard.index) == shard

    def test_make_shard_rejects_out_of_range(self):
        spec = REGISTRY["MAP-ISL"]
        with pytest.raises(IndexError):
            make_shard(spec, 0, n_shards(spec, 0))
        with pytest.raises(IndexError):
            make_shard(spec, 0, -1)

    def test_block_cost_scales_with_block_size(self):
        spec = REGISTRY["STUDY1"]
        shards = make_shards(spec, 0)
        costs = [estimate_shard_cost(spec, shard) for shard in shards]
        assert all(cost > 0 for cost in costs)

    def test_param_numeric_payload_is_the_cost_proxy(self):
        shards = make_shards(FAST_SPEC, 0)
        costs = [estimate_shard_cost(FAST_SPEC, shard) for shard in shards]
        # The straggler (cost 6) must order strictly first under LPT.
        assert costs[0] == max(costs)
        assert costs[0] > costs[1]

    def test_shard_result_digest_ignores_host_timing(self):
        spec = FAST_SPEC
        shard = make_shard(spec, 0, 0)
        first = execute_shard(spec, 0, shard)
        second = execute_shard(spec, 0, shard)
        assert first.wall_s != second.wall_s or first.wall_s >= 0
        assert shard_result_digest(first) == shard_result_digest(second)
        tampered = ShardResult(
            first.experiment_id, first.index, ("x",), first.events, 0.0
        )
        assert shard_result_digest(tampered) != shard_result_digest(first)


class TestBackendParity:
    def test_all_backends_produce_identical_csv_bytes(self, tmp_path):
        reference, _bench = _run_csv(tmp_path, "inline", jobs=1)
        for backend in BACKENDS:
            data, bench = _run_csv(
                tmp_path, f"b-{backend}", jobs=2, backend=backend
            )
            assert data == reference, backend
            assert bench["backend"] == backend

    def test_default_backend_selection(self, tmp_path):
        _data, bench = _run_csv(tmp_path, "dflt1", jobs=1)
        assert bench["backend"] == "inline"
        _data, bench = _run_csv(tmp_path, "dflt2", jobs=2)
        assert bench["backend"] == "pool"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_executor("carrier-pigeon", 2)

    def test_crash_plan_rejected_off_workqueue(self):
        with pytest.raises(ValueError, match="workqueue"):
            make_executor("pool", 2, crash_plan={("FANOUT", 0): 1})


class TestErrorPropagation:
    BAD = fanout_spec(costs=(1, -1, 1), scale=1)

    def test_inline_raises_original_error(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_experiments(["FANOUT"], overrides={"FANOUT": self.BAD})

    def test_pool_raises_original_error(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_experiments(
                ["FANOUT"],
                jobs=2,
                backend="pool",
                overrides={"FANOUT": self.BAD},
            )

    def test_workqueue_raises_with_remote_traceback(self):
        with pytest.raises(ShardExecutionError, match="non-negative"):
            run_experiments(
                ["FANOUT"],
                jobs=2,
                backend="workqueue",
                overrides={"FANOUT": self.BAD},
            )


class TestCrashRetry:
    def test_killed_worker_retries_once_and_bytes_match(self, tmp_path):
        reference, _bench = _run_csv(tmp_path, "ref", jobs=1)
        manifest_path = tmp_path / "crash.json"
        crashed, _bench = _run_csv(
            tmp_path,
            "crash",
            jobs=2,
            backend="workqueue",
            crash_plan={("FANOUT", 0): 1},
            manifest_path=manifest_path,
        )
        assert crashed == reference
        manifest = json.loads(manifest_path.read_text())
        session = manifest["sessions"][-1]
        assert session["retried"] == 1
        assert session["completed_run"] is True
        entry = manifest["experiments"]["FANOUT"]["done"]["0"]
        assert entry["retries"] == 1
        assert entry["source"] == "computed"

    def test_double_crash_still_converges(self, tmp_path):
        reference, _bench = _run_csv(tmp_path, "ref2", jobs=1)
        crashed, _bench = _run_csv(
            tmp_path,
            "crash2",
            jobs=2,
            backend="workqueue",
            crash_plan={("FANOUT", 0): 2, ("FANOUT", 2): 1},
        )
        assert crashed == reference


class TestSpeculation:
    def test_straggler_speculation_keeps_bytes_identical(self, tmp_path):
        reference, _bench = _run_csv(
            tmp_path, "ref", spec=SLOW_STRAGGLER_SPEC, jobs=1
        )
        manifest_path = tmp_path / "spec.json"
        speculated, bench = _run_csv(
            tmp_path,
            "spec",
            spec=SLOW_STRAGGLER_SPEC,
            jobs=2,
            backend="workqueue",
            speculate=True,
            manifest_path=manifest_path,
        )
        assert speculated == reference
        assert bench["speculation"] is not None
        # The tail drains while the cost-6 straggler still runs, so a
        # twin must have been launched on the idle worker.
        assert bench["speculation"]["launched"] >= 1
        session = json.loads(manifest_path.read_text())["sessions"][-1]
        assert session["speculate"] is True
        assert session["speculated"] >= 1

    def test_diverging_duplicate_is_a_hard_error(self):
        key = ("FANOUT", 0)
        original = ShardResult("FANOUT", 0, ("real",), 0, 0.01)
        tampered = ShardResult("FANOUT", 0, ("fake",), 0, 0.01)
        state: dict = dict(
            now=1.0,
            specs={"FANOUT": FAST_SPEC},
            seed=0,
            cache=None,
            manifest=None,
            executor=InlineExecutor(),
            collected={key: original},
            shard_sources={key: "computed"},
            queue_waits={},
            submit_times={},
            digests={},
            speculated={key},
            speculation={"launched": 1, "wins": 0, "checked": 0},
            remaining={"FANOUT": 0},
            merge_experiment=lambda _id: None,
            say=lambda _line: None,
        )
        with pytest.raises(RuntimeError, match="nondeterministic"):
            _handle_completion(
                Completion(key, attempt=1000, result=tampered), **state
            )
        # A bit-identical duplicate is counted, not fatal.
        duplicate = ShardResult("FANOUT", 0, ("real",), 0, 0.02)
        _handle_completion(
            Completion(key, attempt=1001, result=duplicate), **state
        )
        assert state["speculation"]["checked"] == 2


class TestShardCacheAndResume:
    def test_interrupted_run_resumes_from_shard_cache(self, tmp_path):
        spec = FAST_SPEC
        cache = ResultCache(tmp_path / "cache")
        # Simulate an interrupted run: three of four shards are durable.
        for index in (0, 1, 3):
            cache.put_shard(
                spec, 0, index, execute_shard(spec, 0, make_shard(spec, 0, index))
            )
        manifest_path = tmp_path / "resume.json"
        reference, _bench = _run_csv(tmp_path, "ref", jobs=1)
        resumed, _bench = _run_csv(
            tmp_path,
            "resumed",
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            manifest_path=manifest_path,
            resume=True,
        )
        assert resumed == reference
        session = json.loads(manifest_path.read_text())["sessions"][-1]
        assert session["shard_cache_hits"] == 3
        assert session["computed"] == 1

    def test_second_resume_session_appends_counters(self, tmp_path):
        manifest_path = tmp_path / "two.json"
        cache_dir = tmp_path / "cache"
        _run_csv(
            tmp_path,
            "first",
            jobs=1,
            cache=ResultCache(cache_dir),
            manifest_path=manifest_path,
        )
        _run_csv(
            tmp_path,
            "second",
            jobs=1,
            cache=ResultCache(cache_dir),
            manifest_path=manifest_path,
            resume=True,
        )
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["sessions"]) == 2
        first, second = manifest["sessions"]
        assert first["computed"] == 4
        # The whole experiment was cached at merge, so the second
        # session serves it at experiment granularity.
        assert second["experiment_cache_hits"] == 1
        assert second["computed"] == 0

    def test_resume_refuses_a_different_runs_manifest(self, tmp_path):
        manifest_path = tmp_path / "other.json"
        _run_csv(tmp_path, "seed0", jobs=1, manifest_path=manifest_path)
        with pytest.raises(ValueError, match="different run"):
            _run_csv(
                tmp_path,
                "seed9",
                jobs=1,
                seed=9,
                manifest_path=manifest_path,
                resume=True,
            )

    def test_fresh_run_supersedes_a_stale_manifest(self, tmp_path):
        manifest_path = tmp_path / "stale.json"
        manifest_path.write_text('{"version": 999}')
        _data, _bench = _run_csv(
            tmp_path, "fresh", jobs=1, manifest_path=manifest_path
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == 1
        assert manifest["sessions"][-1]["completed_run"] is True

    def test_run_key_tracks_specs_and_seed(self):
        spec = REGISTRY["FIG4"]
        assert run_key([spec], 0, False) != run_key([spec], 1, False)
        assert run_key([spec], 0, False) != run_key([spec], 0, True)
        assert run_key([spec], 0, False) == run_key([spec], 0, False)


class TestBenchReport:
    def test_speedup_vs_serial_computed_only_drops_on_cache_hits(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        _data, warm = _run_csv(
            tmp_path, "warm", jobs=1, cache=ResultCache(cache_dir)
        )
        assert warm["speedup_vs_serial_computed_only"] > 0
        _data, cached = _run_csv(
            tmp_path, "hot", jobs=1, cache=ResultCache(cache_dir)
        )
        # Everything served from cache: the headline speedup still
        # credits the saved compute, the computed-only figure does not.
        assert cached["speedup_vs_serial"] > 0
        assert cached["speedup_vs_serial_computed_only"] == 0.0

    def test_bench_carries_scheduler_telemetry(self, tmp_path):
        _data, bench = _run_csv(
            tmp_path, "tele", jobs=2, backend="workqueue"
        )
        assert bench["worker_utilisation"] is not None
        assert 0.0 < bench["worker_utilisation"] <= 1.0
        assert bench["fanout_wall_s"] > 0
        entry = bench["experiments"]["FANOUT"]
        assert entry["merge_s"] >= 0
        assert entry["queue_wait_s"] >= 0
        assert entry["shards_from_cache"] == 0


class TestManifestUnit:
    def test_mark_shard_done_updates_counters_and_persists(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = RunManifest.open(path, "k", 0)
        manifest.begin_session("inline", 1, False)
        manifest.register_experiment("X", 2)
        manifest.mark_shard_done("X", 0, "computed", 0.5, 0.1)
        manifest.mark_shard_done("X", 1, "shard-cache", 0.0, 0.0)
        on_disk = json.loads(path.read_text())
        session = on_disk["sessions"][-1]
        assert session["computed"] == 1
        assert session["shard_cache_hits"] == 1
        assert manifest.done_count("X") == 2
        assert manifest.shard_entry("X", 0)["source"] == "computed"
        assert manifest.shard_entry("X", 9) is None


class TestCLIRunnerV2:
    def test_inject_crash_requires_workqueue(self, capsys):
        code = main(
            ["run", "MAP-ISL", "--jobs", "2", "--inject-crash", "MAP-ISL:0"]
        )
        assert code == 2
        assert "workqueue" in capsys.readouterr().err

    def test_inject_crash_rejects_malformed_tokens(self, capsys):
        assert main(["run", "MAP-ISL", "--backend", "workqueue",
                     "--inject-crash", "MAP-ISL"]) == 2
        assert "EXPID:SHARD" in capsys.readouterr().err
        assert main(["run", "MAP-ISL", "--backend", "workqueue",
                     "--inject-crash", "MAP-ISL:x"]) == 2
        assert "integers" in capsys.readouterr().err

    def test_unknown_backend_is_a_usage_error(self, capsys):
        assert main(["run", "MAP-ISL", "--backend", "sneakernet"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_run_all_resume_conflicts_with_no_cache(self, capsys):
        code = main(["run-all", "--only", "FIG4", "--resume", "--no-cache"])
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_run_all_workqueue_crash_matches_serial(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        serial = [
            "run-all", "--only", "MAP-ISL", "--no-cache",
            "--csv-dir", "serial", "--bench", "serial.json",
        ]
        assert main(serial) == 0
        fleet = [
            "run-all", "--only", "MAP-ISL", "--no-cache", "--jobs", "2",
            "--backend", "workqueue", "--speculate",
            "--inject-crash", "MAP-ISL:1",
            "--manifest", "manifest.json",
            "--csv-dir", "fleet", "--bench", "fleet.json",
        ]
        assert main(fleet) == 0
        capsys.readouterr()
        serial_csv = (tmp_path / "serial" / "MAP-ISL.csv").read_bytes()
        fleet_csv = (tmp_path / "fleet" / "MAP-ISL.csv").read_bytes()
        assert fleet_csv == serial_csv
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["sessions"][-1]["retried"] == 1
        bench = json.loads((tmp_path / "fleet.json").read_text())
        assert bench["backend"] == "workqueue"
        assert bench["manifest"] == "manifest.json"

    def test_run_resume_defaults_manifest_under_cache(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["run", "MAP-ISL", "--resume"]) == 0
        capsys.readouterr()
        manifest_path = (
            tmp_path / "cache" / "manifests" / "MAP-ISL-seed0.json"
        )
        assert manifest_path.is_file()
        first = json.loads(manifest_path.read_text())["sessions"][-1]
        assert first["computed"] == 4
        # Second invocation resumes: nothing recomputed.
        assert main(["run", "MAP-ISL", "--resume"]) == 0
        capsys.readouterr()
        sessions = json.loads(manifest_path.read_text())["sessions"]
        assert len(sessions) == 2
        assert sessions[-1]["computed"] == 0


class TestLPTOrdering:
    def test_inline_executor_runs_lpt_order_without_changing_bytes(
        self, tmp_path
    ):
        # Sanity anchor for the scheduler: shard execution order is a
        # pure makespan concern.  Force wildly different cost hints and
        # the bytes must not move.
        cheap_first = fanout_spec(costs=(6, 1, 1, 1), scale=5)
        reference, _bench = _run_csv(tmp_path, "lpt-ref", jobs=1)
        csv_dir = tmp_path / "lpt"
        run_experiments(
            ["FANOUT"],
            overrides={"FANOUT": cheap_first},
            csv_dir=csv_dir,
            jobs=2,
            backend="pool",
        )
        assert (csv_dir / "FANOUT.csv").read_bytes() == reference

"""Selection-task workloads for user studies and benchmarks.

The initial study used "a fictive mobile phone menu" with instructed
search/select tasks; the planned quantitative studies need controlled
target sequences.  These generators produce reproducible task lists:

* :func:`random_targets` — uniform random entries with a minimum index
  separation (so consecutive trials require real movement);
* :func:`fitts_ladder` — target pairs spanning a controlled range of
  Fitts IDs, for the speed-comparison experiment;
* :func:`hierarchical_tasks` — root-to-leaf navigation tasks over a tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.menu import MenuEntry, flatten_paths

__all__ = [
    "random_targets",
    "fitts_ladder",
    "hierarchical_tasks",
    "Scenario",
    "BATTERIES",
    "battery",
    "scenario_distances",
]


def random_targets(
    n_entries: int,
    n_trials: int,
    rng: np.random.Generator,
    min_separation: int = 1,
) -> list[int]:
    """Uniform random target indices with consecutive separation.

    Parameters
    ----------
    n_entries:
        Size of the menu level.
    n_trials:
        Number of targets to draw.
    rng:
        Random stream.
    min_separation:
        Each target differs from its predecessor by at least this many
        positions (0 allows repeats).

    Raises
    ------
    ValueError
        If the separation is unsatisfiable for the level size.
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if min_separation >= n_entries:
        raise ValueError(
            f"min_separation {min_separation} unsatisfiable with "
            f"{n_entries} entries"
        )
    targets: list[int] = []
    previous = -10**9
    for _ in range(n_trials):
        while True:
            candidate = int(rng.integers(0, n_entries))
            if abs(candidate - previous) >= min_separation:
                break
        targets.append(candidate)
        previous = candidate
    return targets


def fitts_ladder(
    n_entries: int,
    repetitions: int = 3,
    distances: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """(start, target) pairs sweeping movement distance systematically.

    For each requested index distance the pair is placed symmetrically in
    the list, alternating directions, ``repetitions`` times.  Used to
    sample a wide range of IDs for the Fitts regression.
    """
    if distances is None:
        distances = [d for d in (1, 2, 3, 5, 7, n_entries - 1) if 0 < d < n_entries]
    pairs: list[tuple[int, int]] = []
    for distance in distances:
        if not 0 < distance < n_entries:
            raise ValueError(
                f"distance {distance} impossible in a {n_entries}-entry level"
            )
        for rep in range(repetitions):
            lo = (n_entries - 1 - distance) // 2
            hi = lo + distance
            if rep % 2 == 0:
                pairs.append((lo, hi))
            else:
                pairs.append((hi, lo))
    return pairs


def hierarchical_tasks(
    menu: MenuEntry,
    n_tasks: int,
    rng: np.random.Generator,
) -> Iterator[tuple[str, ...]]:
    """Random root-to-leaf navigation tasks over a menu tree.

    Yields label paths such as ``("Settings", "Sound", "Volume")``; the
    user must descend the hierarchy selecting each component.
    """
    paths = flatten_paths(menu)
    if not paths:
        raise ValueError("menu has no leaves")
    for _ in range(n_tasks):
        yield paths[int(rng.integers(0, len(paths)))]


# ---------------------------------------------------------------------------
# ScrollTest-style scenario batteries (population-scale studies)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One cell of a diversified task battery (per ScrollTest).

    ScrollTest (Chen et al., PAPERS.md) evaluates scrolling techniques
    over long lists, varied target distances, and both speed *and*
    accuracy measures.  A scenario fixes the menu length, the trial
    count, and a target-distance profile; ``error_recovery`` marks the
    trials where a deliberate wrong activation must be backed out of,
    so recovery cost shows up in the timings.
    """

    name: str
    menu_entries: int
    n_trials: int
    #: ``"near"`` (1–3 entries away), ``"far"`` (most of the level) or
    #: ``"mixed"`` (uniform over the level).
    distance_profile: str
    error_recovery: bool = False

    def __post_init__(self) -> None:
        if self.menu_entries < 2:
            raise ValueError("menu_entries must be >= 2")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.distance_profile not in ("near", "far", "mixed"):
            raise ValueError(
                f"unknown distance_profile {self.distance_profile!r}"
            )


#: Named batteries.  ``scrolltest`` is the population-study default:
#: short and long menus, near and far targets, and an error-recovery
#: cell.  ``smoke`` is the CI-sized variant.
BATTERIES: dict[str, tuple[Scenario, ...]] = {
    "scrolltest": (
        Scenario("short-near", 10, 4, "near"),
        Scenario("short-far", 10, 4, "far"),
        Scenario("long-menu", 40, 4, "mixed"),
        Scenario("error-recovery", 10, 3, "mixed", error_recovery=True),
    ),
    "smoke": (
        Scenario("short-mixed", 10, 2, "mixed"),
        Scenario("long-menu", 40, 2, "mixed"),
    ),
}


def battery(name: str) -> tuple[Scenario, ...]:
    """Look up a named battery with a helpful error on typos."""
    try:
        return BATTERIES[name]
    except KeyError:
        raise ValueError(
            f"unknown battery {name!r}; available: {', '.join(BATTERIES)}"
        ) from None


def scenario_distances(
    scenario: Scenario, rng: np.random.Generator
) -> list[int]:
    """Per-trial target *index distances* for one scenario.

    Distances are in entries within the scenario's level; the caller
    maps them to physical centimetres via the device geometry.  Every
    distance is at least 1 (a trial always requires real movement).
    """
    top = scenario.menu_entries - 1
    distances: list[int] = []
    for _ in range(scenario.n_trials):
        if scenario.distance_profile == "near":
            distance = 1 + int(rng.integers(0, min(3, top)))
        elif scenario.distance_profile == "far":
            low = max(1, (2 * top) // 3)
            distance = low + int(rng.integers(0, top - low + 1))
        else:  # mixed
            distance = 1 + int(rng.integers(0, top))
        distances.append(min(distance, top))
    return distances

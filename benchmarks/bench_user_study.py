"""STUDY1 — the initial user study (§6): discovery + learning blocks."""

from __future__ import annotations

from repro.experiments import run_user_study


def test_bench_user_study(benchmark, report):
    result = benchmark.pedantic(
        run_user_study,
        kwargs={"seed": 0, "n_users": 12, "n_blocks": 4, "trials_per_block": 8},
        rounds=1,
        iterations=1,
    )
    report(result)
    # "nearly errorless" after the relation is learned.
    assert all(rate < 0.2 for rate in result.column("error_rate")[1:])

"""The shipped reprolint rule set.

=======  ==========================================================
REP001   no wall-clock reads inside the simulation stack
REP002   randomness only via seeded ``numpy.random.Generator`` s
REP003   trace-channel literals must exist in ``repro.sim.channels``
REP004   sim-time discipline: no float-equality on times, no
         negative scheduling delays
REP005   optional hardware fault hooks are null-checked before call
=======  ==========================================================

Adding a rule: subclass :class:`repro.devtools.base.Rule` in a new
module here, set ``rule_id``/``title``/exemptions, implement the
``visit_*`` methods, and append the class to :data:`ALL_RULES`.
"""

from repro.devtools.rules.channels import TraceChannelRegistryRule
from repro.devtools.rules.hooks import FaultHookGuardRule
from repro.devtools.rules.rng import SeededRngOnlyRule
from repro.devtools.rules.simtime import SimTimeDisciplineRule
from repro.devtools.rules.wallclock import NoWallClockRule

__all__ = [
    "ALL_RULES",
    "FaultHookGuardRule",
    "NoWallClockRule",
    "SeededRngOnlyRule",
    "SimTimeDisciplineRule",
    "TraceChannelRegistryRule",
]

#: Every shipped rule, in id order.
ALL_RULES = (
    NoWallClockRule,
    SeededRngOnlyRule,
    TraceChannelRegistryRule,
    SimTimeDisciplineRule,
    FaultHookGuardRule,
)

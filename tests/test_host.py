"""Tests for the host-PC side: logger, study controller, session replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.phonemenu import build_phone_menu
from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.host import EventLogger, SessionRecorder, SessionReplay, StudyController
from repro.interaction.user import SimulatedUser


def make_device(seed=9, **config_kw):
    return DistScroll(
        build_menu([f"Item {i}" for i in range(8)]),
        config=DeviceConfig(**config_kw),
        seed=seed,
    )


class TestEventLogger:
    def _logged_device(self, seed=9):
        device = make_device(seed=seed)
        logger = EventLogger(device.board.rf_host, clock=lambda: device.sim.now)
        return device, logger

    def test_decodes_highlight_events(self):
        device, logger = self._logged_device()
        device.hold_at(25.0)
        device.run_for(0.3)
        device.hold_at(7.0)
        device.run_for(0.5)
        assert len(logger) > 0
        assert any(True for _ in logger.of_kind("HighlightChanged"))

    def test_counts_histogram(self):
        device, logger = self._logged_device()
        device.hold_at(25.0)
        device.run_for(0.3)
        device.click("select")
        counts = logger.counts()
        assert counts["ButtonEvent"] >= 1

    def test_latency_positive_and_small(self):
        device, logger = self._logged_device()
        device.hold_at(7.0)
        device.run_for(0.5)
        assert 0.0 < logger.mean_latency() < 0.05

    def test_last_of_kind(self):
        device, logger = self._logged_device()
        device.hold_at(7.0)
        device.run_for(0.5)
        last = logger.last("HighlightChanged")
        assert last is not None
        assert last.event.kind == "HighlightChanged"
        assert logger.last("EntryActivated") is None

    def test_between_uses_device_time(self):
        device, logger = self._logged_device()
        device.hold_at(7.0)
        device.run_for(1.0)
        window = logger.between(0.0, 0.5)
        assert all(0.0 <= le.event.time <= 0.5 for le in window)

    def test_garbage_packet_counted_not_raised(self):
        device, logger = self._logged_device()
        device.board.rf_device.send(b"\xff\x00 not json")
        device.run_for(0.1)
        assert logger.decode_failures == 1

    def test_clear(self):
        device, logger = self._logged_device()
        device.hold_at(7.0)
        device.run_for(0.5)
        logger.clear()
        assert len(logger) == 0


class TestStudyController:
    def _setup(self, seed=9):
        device = DistScroll(
            build_phone_menu(),
            config=DeviceConfig(debug_display=False),
            seed=seed,
        )
        controller = StudyController(device=device)
        user = SimulatedUser(device=device, rng=np.random.default_rng(seed))
        user.practice_trials = 30
        device.run_for(0.5)
        return device, controller, user

    def test_instruction_reaches_device_display(self):
        device, controller, _ = self._setup()
        controller.begin_task(("Messages", "Inbox"))
        device.run_for(0.3)
        status = " ".join(device.visible_status())
        assert "Messages" in status

    def test_full_task_scored(self):
        device, controller, user = self._setup()
        score = controller.begin_task(("Messages", "Inbox"))
        for label in ("Messages", "Inbox"):
            labels = [e.label for e in device.firmware.cursor.entries]
            user.select_entry(labels.index(label))
            controller.poll()
        assert score.completed
        assert score.duration_s > 0.5
        assert controller.summary()["n_completed"] == 1

    def test_invalid_path_rejected(self):
        device, controller, _ = self._setup()
        with pytest.raises(KeyError):
            controller.begin_task(("Nope",))
        with pytest.raises(ValueError):
            controller.begin_task(("Messages",))  # submenu, not leaf

    def test_overlapping_tasks_rejected(self):
        device, controller, _ = self._setup()
        controller.begin_task(("Messages", "Inbox"))
        with pytest.raises(RuntimeError):
            controller.begin_task(("Games", "Snake"))

    def test_abort_allows_next_task(self):
        device, controller, _ = self._setup()
        controller.begin_task(("Messages", "Inbox"))
        controller.abort_task()
        controller.begin_task(("Games", "Snake"))
        assert len(controller.scores) == 2


class TestSessionRecorderReplay:
    def test_roundtrip(self, tmp_path):
        device = make_device()
        path = tmp_path / "session.jsonl"
        with SessionRecorder(device, path) as recorder:
            device.hold_at(25.0)
            device.run_for(0.3)
            recorder.sample_pose()
            device.hold_at(7.0)
            device.run_for(0.5)
            recorder.sample_pose()
            device.click("select")
        replay = SessionReplay.load(path)
        assert replay.events
        assert replay.poses
        assert replay.duration() > 0.5
        kinds = {e.kind for e in replay.events}
        assert "ButtonEvent" in kinds

    def test_pose_travel(self, tmp_path):
        device = make_device()
        path = tmp_path / "session.jsonl"
        with SessionRecorder(device, path) as recorder:
            for d in (25.0, 20.0, 15.0, 10.0):
                device.hold_at(d)
                device.run_for(0.1)
                recorder.sample_pose()
        replay = SessionReplay.load(path)
        assert replay.total_hand_travel_cm() >= 14.0

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rec": "pose", "t": 0, "d": 10}\nnot json\n')
        with pytest.raises(ValueError):
            SessionReplay.load(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rec": "mystery"}\n')
        with pytest.raises(ValueError):
            SessionReplay.load(path)

    def test_events_of_kind_filter(self, tmp_path):
        device = make_device()
        path = tmp_path / "session.jsonl"
        with SessionRecorder(device, path):
            device.hold_at(7.0)
            device.run_for(0.5)
        replay = SessionReplay.load(path)
        for event in replay.events_of_kind("HighlightChanged"):
            assert event.kind == "HighlightChanged"

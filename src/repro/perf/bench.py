"""The ``repro bench`` benchmark suite and regression gate.

Every benchmark here is a *headless* workload: no pytest, no fixtures,
just seeded construction and a timed run, so the suite doubles as a CI
smoke job and as the producer of the committed ``BENCH_perf.json``
baseline.  Two kinds of number come out:

* ``units_per_s`` — absolute throughput (events, samples or islands per
  second of host wall-clock).  Machine-dependent; the regression gate
  compares it against a baseline produced on the same runner class.
* ``derived`` ratios — e.g. the vectorized-vs-scalar calibration-sweep
  speedup.  Dimensionless and machine-independent, so the gate can
  enforce them anywhere (the fast path must stay >= 3x).

Wall-clock reads live in exactly one helper (:func:`_timed`); they are
intentional host-time telemetry around — never inside — the
deterministic simulation, and are baselined in
``reprolint-baseline.json`` accordingly.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = [
    "BENCHMARKS",
    "BenchRecord",
    "run_benchmarks",
    "check_report",
    "format_report",
]

#: Gate defaults: max tolerated throughput drop vs baseline, the
#: minimum vectorized calibration-sweep speedup the fast path must keep,
#: and the minimum worker utilisation the scheduler must sustain on the
#: skewed fan-out workload (full mode only — quick shards are too small
#: to amortize worker handoff).
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SPEEDUP = 3.0
DEFAULT_MIN_EFFICIENCY = 0.8


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark's outcome (one entry in ``BENCH_perf.json``)."""

    name: str
    wall_s: float
    units: int
    unit_name: str
    rounds: int
    notes: dict = field(default_factory=dict)

    @property
    def units_per_s(self) -> float:
        """Throughput — the number the regression gate watches."""
        return self.units / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "units": self.units,
            "unit_name": self.unit_name,
            "units_per_s": self.units_per_s,
            "rounds": self.rounds,
            **self.notes,
        }


#: A workload returns its unit count, optionally with a notes dict of
#: derived values measured inside the run (e.g. worker utilisation).
Workload = Callable[[], "int | tuple[int, dict]"]


def _timed(workload: Workload, rounds: int) -> tuple[float, int, dict]:
    """Best-of-``rounds`` wall time for a workload returning its units.

    When the workload returns ``(units, notes)``, the notes of the best
    round are kept — they describe the same execution the reported wall
    time came from.
    """
    best = float("inf")
    units = 0
    notes: dict = {}
    for _ in range(rounds):
        start = time.perf_counter()
        outcome = workload()
        elapsed = time.perf_counter() - start
        if isinstance(outcome, tuple):
            round_units, round_notes = outcome
        else:
            round_units, round_notes = outcome, {}
        if elapsed < best:
            best, units, notes = elapsed, round_units, round_notes
    return best, units, notes


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


def _calib_sweep(quick: bool, vectorized: bool) -> Callable[[], int]:
    """The Figure-4 sampling sweep, scalar vs batched.

    Times exactly the loop that :func:`repro.sensors.calibration.calibrate`
    runs per grid point (one fresh measurement cycle per reading), without
    the curve fits — the fits cost the same on both paths and would only
    dilute the speedup the gate watches.
    """
    from repro.sensors.gp2d120 import (
        GP2D120,
        SENSOR_MAX_CM,
        SENSOR_MIN_CM,
    )

    readings = 64 if quick else 256
    distances = np.arange(SENSOR_MIN_CM, SENSOR_MAX_CM + 0.5, 1.0)

    def workload() -> int:
        sensor = GP2D120.specimen(np.random.default_rng(0))
        cycle = sensor.params.cycle_time_s
        clock = 0.0
        total = 0
        for distance in distances:
            clock += 0.5
            if vectorized:
                times = clock + cycle * 1.05 * np.arange(1, readings + 1)
                sensor.output_voltage_array(times, float(distance))
                clock = float(times[-1])
            else:
                for _ in range(readings):
                    clock += cycle * 1.05
                    sensor.output_voltage(clock, float(distance))
            total += readings
        return total

    return workload


def _fig4_end_to_end(quick: bool) -> Callable[[], int]:
    from repro.experiments.fig4 import run_fig4

    readings = 16 if quick else 64

    def workload() -> int:
        result, _calibration = run_fig4(seed=0, readings_per_point=readings)
        return len(result.rows) * readings

    return workload


def _island_map(quick: bool) -> Callable[[], int]:
    from repro.core.islands import build_island_map
    from repro.hardware.adc import ADC
    from repro.sensors.gp2d120 import GP2D120

    repeats = 20 if quick else 100
    entries = 64

    def workload() -> int:
        sensor = GP2D120(rng=None)
        adc = ADC(rng=None)
        for _ in range(repeats):
            island_map = build_island_map(sensor, adc, entries)
        return repeats * island_map.n_slots

    return workload


def _kernel_events(quick: bool) -> Callable[[], int]:
    from repro.sim.kernel import Simulator

    count = 20_000 if quick else 100_000

    def workload() -> int:
        sim = Simulator(seed=0)
        nop = lambda: None  # noqa: E731
        for i in range(count):
            sim.schedule(i * 1e-4, nop)
        sim.run()
        return sim.events_processed

    return workload


def _kernel_cancel_churn(quick: bool) -> Callable[[], int]:
    """Periodic-task churn: the workload the heap compaction targets.

    Repeatedly starts and stops batches of periodic tasks while the
    simulation advances, so the queue keeps accumulating cancelled
    corpses the way a long multi-user study does.
    """
    from repro.sim.kernel import PeriodicTask, Simulator

    generations = 60 if quick else 250

    def workload() -> int:
        sim = Simulator(seed=0)
        nop = lambda: None  # noqa: E731
        for generation in range(generations):
            tasks = [
                PeriodicTask(sim, 0.01 + i * 1e-4, nop) for i in range(40)
            ]
            sim.run_until(sim.now + 0.05)
            for task in tasks:
                task.stop()
        sim.run()
        return sim.events_processed

    return workload


def _device_second(quick: bool) -> Callable[[], int]:
    from repro.core.device import DistScroll
    from repro.core.menu import build_menu

    seconds = 2.0 if quick else 10.0

    def workload() -> int:
        device = DistScroll(
            build_menu([f"Item {i}" for i in range(10)]), seed=1
        )
        device.hold_at(15.0)
        device.run_for(seconds)
        return device.sim.events_processed

    return workload


def _device_second_observed(quick: bool) -> Callable[[], int]:
    """The device-second workload with an *enabled* recorder.

    Compares against ``device-second`` (null recorder) to measure the
    cost of full observability — spans, histograms and counters all
    live.  The gate cares about the default path staying free; this
    benchmark documents what opting in costs.
    """
    from repro.core.device import DistScroll
    from repro.core.menu import build_menu
    from repro.obs.recorder import Recorder, use_recorder

    seconds = 2.0 if quick else 10.0

    def workload() -> int:
        with use_recorder(Recorder()):
            device = DistScroll(
                build_menu([f"Item {i}" for i in range(10)]), seed=1
            )
            device.hold_at(15.0)
            device.run_for(seconds)
        return device.sim.events_processed

    return workload


def _device_second_batched(quick: bool) -> Callable[[], int]:
    """Device-seconds per wall-second on the structure-of-arrays path.

    Steps a heterogeneous fleet (mixed personas, surfaces, filter
    windows, fault schedules) through one
    :class:`repro.core.batch.DeviceBatch` driven by a kernel
    :class:`~repro.sim.kernel.BatchTask` — the FLEET experiment's hot
    loop.  Units are device-ticks, directly comparable to
    ``device-second`` events: the ``batch_speedup`` derived metric is
    the whole point of the batched engine (ROADMAP item 2).

    The fleet is built once in the factory (construction is island-map
    bound and amortizes over any real run); each round re-arms the same
    batch via ``reset()``, which rebuilds every RNG stream and state
    array so rounds are identical work.
    """
    from repro.core.batch import DeviceBatch, derive_device_spec
    from repro.sim.kernel import BatchTask, Simulator

    n_devices = 256 if quick else 1024
    seconds = 2.0 if quick else 10.0
    specs = [
        derive_device_spec(seed=1, index=i, fault_every=8)
        for i in range(n_devices)
    ]
    batch = DeviceBatch(specs, seed=1)

    def workload() -> int:
        batch.reset()
        sim = Simulator(seed=1)
        task = BatchTask(sim, 1.0 / 50.0, batch.step)
        sim.run_while(lambda: True, max_time=seconds)
        task.stop()
        return sim.batch_units_processed

    return workload


def _user_study_throughput(quick: bool) -> Callable[[], int]:
    """Population-study participants per second (``--users`` path).

    Times :func:`repro.experiments.user_study.run_user_block` — persona
    derivation, the analytic trial battery, and the streaming fold into
    a :class:`~repro.experiments.user_study.StudyAggregate` — which is
    exactly the per-shard work of ``repro run STUDY1 --users N``.  The
    ``users_per_second`` gate keeps million-user studies tractable.
    """
    from repro.experiments.user_study import run_user_block

    users = 500 if quick else 4000

    def workload() -> int:
        aggregate = run_user_block(0, 0, users)
        return aggregate.n_users

    return workload


def _technique_arena(quick: bool) -> Callable[[], int]:
    """Arena tournament participants per second (the ARENA shard path).

    Times :func:`repro.experiments.arena.run_arena_block` — persona
    derivation, one session per registered technique over the ScrollTest
    battery, scheduled fault windows, and the streaming fold into an
    :class:`~repro.experiments.arena.ArenaAggregate` — exactly the
    per-shard work of ``repro run ARENA --users N``.
    """
    from repro.experiments.arena import run_arena_block

    users = 8 if quick else 48

    def workload() -> int:
        aggregate = run_arena_block(0, 0, users)
        return aggregate.n_users

    return workload


def _runner_fanout(quick: bool) -> Callable[[], tuple[int, dict]]:
    """Skewed shard fan-out through the work-queue runner backend.

    Runs the synthetic :mod:`repro.perf.fanout` experiment — one
    dominant straggler shard plus a tail of cheap ones — across four
    work-queue workers, and reports the driver's measured worker
    utilisation as ``scheduler_efficiency``: the fraction of available
    worker-seconds spent executing shards during the fan-out.  LPT
    ordering and as-completed collection are what keep it high; a
    submission-order scheduler on this workload idles the fleet behind
    the straggler.
    """
    from repro.perf.fanout import SKEWED_COSTS, fanout_spec
    from repro.runner.pool import run_experiments

    workers = 4
    scale = 60 if quick else 600
    spec = fanout_spec(scale=scale)

    def workload() -> tuple[int, dict]:
        _results, bench = run_experiments(
            ["FANOUT"],
            seed=0,
            jobs=workers,
            backend="workqueue",
            overrides={"FANOUT": spec},
        )
        utilisation = bench["worker_utilisation"] or 0.0
        units = sum(SKEWED_COSTS) * scale
        return units, {
            "scheduler_efficiency": utilisation,
            "backend": "workqueue",
            "workers": workers,
            "shards": len(SKEWED_COSTS),
        }

    return workload


#: name -> (factory(quick) -> workload, unit name).  The factory imports
#: lazily so ``repro bench --list`` stays fast and dependency-light.
BENCHMARKS: dict[str, tuple[Callable[[bool], Workload], str]] = {
    "calib-sweep-scalar": (
        lambda quick: _calib_sweep(quick, vectorized=False),
        "samples",
    ),
    "calib-sweep-vectorized": (
        lambda quick: _calib_sweep(quick, vectorized=True),
        "samples",
    ),
    "fig4-end-to-end": (_fig4_end_to_end, "samples"),
    "island-map": (_island_map, "islands"),
    "kernel-events": (_kernel_events, "events"),
    "kernel-cancel-churn": (_kernel_cancel_churn, "events"),
    "device-second": (_device_second, "events"),
    "device-second-observed": (_device_second_observed, "events"),
    "device-second-batched": (_device_second_batched, "device-ticks"),
    "user-study-throughput": (_user_study_throughput, "users"),
    "technique-arena": (_technique_arena, "users"),
    "runner-fanout": (_runner_fanout, "iterations"),
}


def run_benchmarks(
    only: Optional[Sequence[str]] = None,
    quick: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the suite and return the ``BENCH_perf.json`` payload.

    Parameters
    ----------
    only:
        Subset of benchmark names (default: all, in registry order).
    quick:
        Smaller workloads and fewer rounds — the CI smoke setting.
    echo:
        Progress sink (e.g. ``print``); ``None`` for silence.
    """
    say = echo or (lambda _line: None)
    names = list(only) if only else list(BENCHMARKS)
    unknown = [name for name in names if name not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {', '.join(unknown)}")

    # Best-of-N: even in quick mode a second round so first-call costs
    # (module imports, numpy ufunc setup) never pollute the measurement.
    rounds = 2 if quick else 3
    records: dict[str, BenchRecord] = {}
    for name in names:
        factory, unit_name = BENCHMARKS[name]
        workload = factory(quick)
        wall_s, units, notes = _timed(workload, rounds)
        record = BenchRecord(
            name=name,
            wall_s=wall_s,
            units=units,
            unit_name=unit_name,
            rounds=rounds,
            notes=notes,
        )
        records[name] = record
        say(
            f"{name:24s} {wall_s:8.3f}s  {units:>9d} {unit_name:8s}"
            f"  {record.units_per_s:12,.0f}/s"
        )

    derived: dict[str, float] = {}
    scalar = records.get("calib-sweep-scalar")
    vector = records.get("calib-sweep-vectorized")
    if scalar and vector and scalar.units_per_s > 0:
        derived["calib_vector_speedup"] = (
            vector.units_per_s / scalar.units_per_s
        )
        say(
            "calibration fast path: "
            f"{derived['calib_vector_speedup']:.2f}x scalar throughput"
        )
    study = records.get("user-study-throughput")
    if study is not None:
        # Surfaced as a named derived value so dashboards and the gate
        # can track "how big a study is feasible" directly.
        derived["users_per_second"] = study.units_per_s
    plain = records.get("device-second")
    observed = records.get("device-second-observed")
    if plain and observed and plain.units_per_s > 0:
        derived["obs_enabled_ratio"] = (
            observed.units_per_s / plain.units_per_s
        )
        say(
            "observability enabled: "
            f"{derived['obs_enabled_ratio']:.2f}x null-recorder throughput"
        )
    batched = records.get("device-second-batched")
    if plain and batched and plain.units_per_s > 0:
        # Device-ticks vs kernel events of the same 50 Hz firmware loop:
        # how much the SoA engine buys over stepping devices one by one.
        derived["batch_speedup"] = (
            batched.units_per_s / plain.units_per_s
        )
        say(
            "batched engine: "
            f"{derived['batch_speedup']:.1f}x scalar device throughput"
        )
    fanout = records.get("runner-fanout")
    if fanout is not None and "scheduler_efficiency" in fanout.notes:
        # Worker utilisation on the skewed fan-out — measured inside
        # the run by the driver, surfaced as a gated derived value.
        derived["scheduler_efficiency"] = float(
            fanout.notes["scheduler_efficiency"]
        )
        say(
            "scheduler efficiency: "
            f"{derived['scheduler_efficiency']:.2f} worker utilisation "
            "on the skewed fan-out"
        )

    return {
        "generated_by": "python -m repro bench",
        "quick": quick,
        "rounds": rounds,
        "benchmarks": {
            name: records[name].to_json() for name in names
        },
        "derived": derived,
    }


def check_report(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    min_efficiency: float = DEFAULT_MIN_EFFICIENCY,
) -> list[str]:
    """Regression gate: failure messages, empty when the gate passes.

    * every benchmark present in both reports must keep at least
      ``(1 - threshold)`` of the baseline ``units_per_s`` — but only when
      both reports ran in the same mode (quick workloads are sized
      differently, so quick-vs-full throughput is not comparable);
    * every derived ratio must likewise stay within ``threshold`` of its
      baseline value, again same-mode only: ratios are
      machine-independent but *not* workload-size-independent (the
      vectorized sweep amortizes numpy dispatch better on the full
      workload, so quick-mode speedups run measurably lower than
      full-mode ones on the same machine and code);
    * the calibration fast path must stay at least ``min_speedup`` times
      faster than the scalar reference in **every** mode, baseline or
      not — this absolute floor is what the CI quick run gates on;
    * the scheduler must keep at least ``min_efficiency`` worker
      utilisation on the skewed fan-out, full mode only: quick-mode
      shards are deliberately small, so worker handoff overhead
      dominates and the absolute floor would gate noise, not
      scheduling quality.
    """
    failures: list[str] = []
    same_mode = bool(current.get("quick")) == bool(baseline.get("quick"))
    current_benchmarks = current.get("benchmarks", {})
    baseline_benchmarks = baseline.get("benchmarks", {})
    for name, pinned in baseline_benchmarks.items():
        measured = current_benchmarks.get(name)
        if measured is None:
            failures.append(f"{name}: in baseline but not measured")
            continue
        if not same_mode:
            continue
        floor = pinned["units_per_s"] * (1.0 - threshold)
        if measured["units_per_s"] < floor:
            drop = 1.0 - measured["units_per_s"] / pinned["units_per_s"]
            failures.append(
                f"{name}: {measured['units_per_s']:,.0f} "
                f"{measured['unit_name']}/s is {drop:.0%} below baseline "
                f"{pinned['units_per_s']:,.0f}/s "
                f"(threshold {threshold:.0%})"
            )
    for key, pinned_value in baseline.get("derived", {}).items():
        measured_value = current.get("derived", {}).get(key)
        if measured_value is None:
            failures.append(f"derived {key}: in baseline but not measured")
        elif not same_mode:
            continue
        elif measured_value < pinned_value * (1.0 - threshold):
            failures.append(
                f"derived {key}: {measured_value:.2f} fell more than "
                f"{threshold:.0%} below baseline {pinned_value:.2f}"
            )
    speedup = current.get("derived", {}).get("calib_vector_speedup")
    if speedup is not None and speedup < min_speedup:
        failures.append(
            f"calibration fast path speedup {speedup:.2f}x is below the "
            f"required {min_speedup:.1f}x — the vectorized sensing path "
            "regressed toward the scalar loop"
        )
    efficiency = current.get("derived", {}).get("scheduler_efficiency")
    if (
        efficiency is not None
        and not current.get("quick")
        and efficiency < min_efficiency
    ):
        failures.append(
            f"scheduler efficiency {efficiency:.2f} is below the required "
            f"{min_efficiency:.2f} worker utilisation — the runner is "
            "idling workers behind stragglers on the skewed fan-out"
        )
    return failures


def format_report(report: dict) -> str:
    """Human-oriented one-screen rendering of a report."""
    lines = [
        f"{'benchmark':24s} {'wall_s':>8s} {'units':>10s} "
        f"{'throughput':>14s}"
    ]
    for name, entry in report.get("benchmarks", {}).items():
        lines.append(
            f"{name:24s} {entry['wall_s']:8.3f} "
            f"{entry['units']:>10,d} "
            f"{entry['units_per_s']:>12,.0f}/s"
        )
    for key, value in report.get("derived", {}).items():
        lines.append(f"{key}: {value:.2f}x")
    return "\n".join(lines)


def load_report(path: Path) -> dict:
    """Read a ``BENCH_perf.json`` produced by :func:`run_benchmarks`."""
    with Path(path).open() as fh:
        return json.load(fh)

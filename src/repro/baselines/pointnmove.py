"""Glove-based pointing (Point n Move) through the technique interface.

Dy et al.'s *Point n Move* glove (PAPERS.md) senses per-finger flexion
with resistive flex sensors whose voltages are digitized by a
microcontroller ADC — the same 10-bit front end the DistScroll board
uses, so the model runs its finger channel through
:class:`repro.hardware.adc.ADC`.  Pointing is zero-order: index-finger
flexion maps linearly onto the list, so reaches follow Fitts' law, and
the ADC's quantization floors the effective target width on long lists
(few codes per entry → more correction passes).

Selection is a thumb-to-index pinch.  The model's fault surface is
``grip-loss``: the sensor glove shifting on the hand mid-session, which
costs a re-grip per trial, widens the endpoint spread, and occasionally
turns a pinch into a wrong activation.  Inside a fault window the
technique degrades gracefully — slower and sloppier, never raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.hardware.adc import ADC, ADCParams
from repro.interaction.fitts import index_of_difficulty, movement_time

__all__ = ["PointNMoveScroller"]


@dataclass
class PointNMoveScroller(ScrollingTechnique):
    """Flex-sensor glove pointing with pinch-to-select.

    Parameters
    ----------
    flex_v_min, flex_v_max:
        Usable flex-sensor voltage span mapped over the list.
    fitts_a, fitts_b:
        Pointing parameters for finger flexion (a practiced, small-range
        movement — slightly better intercept than an arm reach).
    endpoint_sigma_frac:
        Endpoint spread as a fraction of one entry's voltage slot.
    regrip_time_s:
        Time to re-form the grip when the glove has shifted.
    grip_loss_sigma_factor:
        Endpoint-spread multiplier inside a ``grip-loss`` window.
    grip_loss_error_p:
        Chance a degraded pinch activates the wrong entry.
    """

    name: str = "pointnmove"
    one_handed: bool = True
    glove_compatible: bool = False  # the sensor glove replaces work gloves
    body_attached: bool = True
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="pointnmove",
        title="Point n Move glove pointing",
        citation=(
            "Dy et al. — Point n Move: Designing a Glove-Based Pointing "
            "Device (PAPERS.md, arXiv 2412.00501)"
        ),
        input_model=(
            "Per-finger resistive flex sensors on a sensor glove, each "
            "digitized by the 10-bit ADC front end; the index-finger "
            "channel drives list position, a thumb pinch selects."
        ),
        transfer_function=(
            "Position control: finger flexion maps linearly onto the "
            "list, so reaches follow Fitts' law; ADC quantization "
            "floors the effective target width, costing correction "
            "passes on long lists."
        ),
        control_order="position",
        fault_surfaces=("grip-loss",),
    )
    flex_v_min: float = 0.6
    flex_v_max: float = 4.4
    fitts_a: float = 0.12
    fitts_b: float = 0.16
    endpoint_sigma_frac: float = 0.26
    regrip_time_s: float = 0.55
    grip_loss_sigma_factor: float = 1.8
    grip_loss_error_p: float = 0.15
    adc_params: ADCParams = field(default_factory=ADCParams)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._adc = ADC(params=self.adc_params, rng=self.rng)
        self._flex_v = 0.0
        self._adc.attach(0, lambda _t: self._flex_v)

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Flex to the target's position, correct, pinch to select."""
        trial_index = self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        span_v = self.flex_v_max - self.flex_v_min
        slot_v = span_v / n_entries
        # Quantization floors the effective width: below ~2 codes per
        # entry the converter, not the finger, limits precision.
        width_v = max(slot_v * 0.8, 2.0 * self._adc.params.lsb_volts)
        distance_v = abs(target_index - start_index) * slot_v
        trial.index_of_difficulty = index_of_difficulty(
            max(distance_v, 1e-6) + 1e-9, width_v
        )
        duration = self._lognormal(self.t.reaction_s)

        degraded = self.fault_active("grip-loss", trial_index)
        sigma_v = slot_v * self.endpoint_sigma_frac * self.glove.tremor_factor
        if degraded:
            # The glove shifted: re-form the grip before pointing.
            duration += self._lognormal(
                self.regrip_time_s * self.glove.dexterity_time_factor, 0.2
            )
            trial.operations += 1
            sigma_v *= self.grip_loss_sigma_factor

        target_v = self.flex_v_min + target_index * slot_v
        position_v = self.flex_v_min + start_index * slot_v
        for _ in range(12):
            move_v = max(abs(target_v - position_v), 0.01)
            mt = movement_time(self.fitts_a, self.fitts_b, move_v, width_v)
            mt *= self.glove.movement_time_factor
            duration += self._lognormal(max(mt, 0.10), 0.10)
            trial.operations += 1
            self._flex_v = target_v + self.rng.normal(0.0, sigma_v)
            code = self._adc.sample(0.0, 0)
            position_v = code * self._adc.params.lsb_volts
            landed = int(round((position_v - self.flex_v_min) / slot_v))
            landed = max(0, min(landed, n_entries - 1))
            if landed == target_index:
                break
            # Off-slot landings are corrections, not activations.
            duration += self._lognormal(self.t.reaction_s)
        duration += self._confirm_selection(trial)
        if degraded and self.rng.random() < self.grip_loss_error_p:
            # The pinch tugged the shifted glove: wrong activation.
            trial.errors += 1
            duration += self._lognormal(self.t.reaction_s) + self._press(trial)
        trial.duration_s = duration
        return trial

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_RUNNERS, main


class TestCLI:
    def test_experiments_lists_all_ids(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_RUNNERS:
            assert experiment_id in out

    def test_run_fig4(self, capsys):
        assert main(["run", "FIG4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out
        assert "distance_cm" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "fig5"]) == 0
        assert "FIG5" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_csv(self, tmp_path, capsys):
        path = tmp_path / "fig4.csv"
        assert main(["run", "FIG4", "--csv", str(path)]) == 0
        assert path.exists()
        assert path.read_text().startswith("distance_cm")

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "specimen curve" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "cm ->" in out
        assert "top display" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_users_on_non_study_is_hard_error(self, capsys):
        """Regression: ignored-flag combos must exit non-zero, not
        print a warning and run the wrong experiment."""
        assert main(["run", "FIG4", "--users", "5"]) == 2
        err = capsys.readouterr().err
        assert "--users is only meaningful for STUDY1" in err
        assert "distance_cm" not in capsys.readouterr().out

    def test_personas_without_users_is_hard_error(self, capsys):
        assert main(["run", "FIG4", "--personas", "full"]) == 2
        assert "add --users N" in capsys.readouterr().err

    def test_battery_without_users_is_hard_error(self, capsys):
        assert main(["run", "FIG5", "--battery", "scrolltest"]) == 2
        assert "add --users N" in capsys.readouterr().err

    def test_run_fleet_registry_entry(self, capsys):
        assert main(["run", "FLEET"]) == 0
        out = capsys.readouterr().out
        assert "FLEET" in out
        assert "surface" in out

    def test_every_registered_runner_is_callable(self):
        """The registry must not contain stale ids (import-time check)."""
        for experiment_id, runner in EXPERIMENT_RUNNERS.items():
            assert callable(runner), experiment_id

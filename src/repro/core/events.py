"""Typed interaction events the device emits to applications.

Applications (the phone menu, the game, the stocktaking client) and the
experiment harness subscribe to these rather than poking at firmware
internals; the same events are serialized over the RF link to the host PC
for logging, as the original prototype streamed its debug state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Optional

__all__ = [
    "InteractionEvent",
    "HighlightChanged",
    "EntryActivated",
    "SubmenuEntered",
    "SubmenuLeft",
    "ChunkChanged",
    "ZoomChanged",
    "FastScroll",
    "ButtonEvent",
    "decode_event",
]


@dataclass(frozen=True)
class InteractionEvent:
    """Base class: every event carries the simulated time it occurred."""

    time: float

    @property
    def kind(self) -> str:
        """Event discriminator used in serialized form."""
        return type(self).__name__

    def to_bytes(self) -> bytes:
        """Serialize for the RF link (JSON keeps host tooling trivial)."""
        record = {"kind": self.kind}
        record.update(asdict(self))
        return json.dumps(record, separators=(",", ":")).encode()


@dataclass(frozen=True)
class HighlightChanged(InteractionEvent):
    """The distance sensor moved the highlight to another entry."""

    index: int
    label: str
    previous_index: int


@dataclass(frozen=True)
class EntryActivated(InteractionEvent):
    """Select was pressed on a leaf entry."""

    label: str
    action: Optional[str]
    path: tuple[str, ...]


@dataclass(frozen=True)
class SubmenuEntered(InteractionEvent):
    """Select was pressed on a submenu entry."""

    label: str
    depth: int


@dataclass(frozen=True)
class SubmenuLeft(InteractionEvent):
    """Back was pressed inside a submenu."""

    depth: int


@dataclass(frozen=True)
class ChunkChanged(InteractionEvent):
    """A long level paged to a different chunk (§7 Q4)."""

    chunk: int
    n_chunks: int


@dataclass(frozen=True)
class ZoomChanged(InteractionEvent):
    """The SDAZ long-menu mode zoomed in or out (§7 Q4 extension)."""

    zoom: str
    window_start: int
    window_end: int


@dataclass(frozen=True)
class FastScroll(InteractionEvent):
    """The fold-back fast-scroll gesture moved the highlight (§4.2)."""

    index: int
    step: int


@dataclass(frozen=True)
class ButtonEvent(InteractionEvent):
    """A debounced button edge."""

    name: str
    pressed: bool


_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        HighlightChanged,
        EntryActivated,
        SubmenuEntered,
        SubmenuLeft,
        ChunkChanged,
        ZoomChanged,
        FastScroll,
        ButtonEvent,
    )
}


def decode_event(payload: bytes) -> InteractionEvent:
    """Reconstruct an event from its RF serialization.

    Raises
    ------
    ValueError
        If the payload is not a known event record.
    """
    try:
        record = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed event payload: {exc}") from exc
    kind = record.pop("kind", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    if "path" in record and record["path"] is not None:
        record["path"] = tuple(record["path"])
    return cls(**record)

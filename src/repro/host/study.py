"""Study controller — the PC-side software the authors planned (§6).

"We later plan to provide the user with information necessary for
conducting the user study itself, such as instructions which items are
to be searched or selected."  This module is that study software: it
administers a task list, pushes each instruction to the device's second
display over the (simulated) link, watches the decoded RF event stream
for the activation that completes the task, and scores timing and
errors — all from the *host's* perspective, using only what the real PC
would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.device import DistScroll
from repro.core.menu import MenuEntry
from repro.host.logger import EventLogger

__all__ = ["TaskScore", "StudyController"]


@dataclass
class TaskScore:
    """Host-side scoring of one instructed task."""

    path: tuple[str, ...]
    started_at: float
    completed_at: Optional[float] = None
    wrong_activations: int = 0
    highlight_changes: int = 0

    @property
    def completed(self) -> bool:
        """Whether the correct leaf was eventually activated."""
        return self.completed_at is not None

    @property
    def duration_s(self) -> float:
        """Task time (0 while incomplete)."""
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.started_at


@dataclass
class StudyController:
    """Administer instructed selection tasks from the host PC.

    Parameters
    ----------
    device:
        The device under study (the controller only *reads* its RF stream
        and writes instructions to the bottom display — it never touches
        firmware internals, mirroring the real setup).
    """

    device: DistScroll
    logger: EventLogger = field(init=False)
    scores: list[TaskScore] = field(default_factory=list, init=False)
    _active: Optional[TaskScore] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.logger = EventLogger(
            self.device.board.rf_host, clock=lambda: self.device.sim.now
        )

    # ------------------------------------------------------------------
    # task administration
    # ------------------------------------------------------------------
    def begin_task(self, path: Sequence[str]) -> TaskScore:
        """Show the instruction and start scoring.

        Raises
        ------
        RuntimeError
            If a task is already active.
        ValueError
            If the path does not name a leaf of the device's menu.
        """
        if self._active is not None:
            raise RuntimeError("a task is already active; call poll() to finish")
        self._validate_path(path)
        self._show_instruction("Select " + " > ".join(path))
        score = TaskScore(path=tuple(path), started_at=self.device.now)
        self._active = score
        self.scores.append(score)
        self._events_seen = len(self.logger.events)
        return score

    def poll(self) -> bool:
        """Consume new RF events; returns ``True`` when the task finished.

        Call periodically (or after running the simulation) — exactly how
        a PC event loop would service its socket.
        """
        if self._active is None:
            return True
        score = self._active
        new_events = self.logger.events[self._events_seen:]
        self._events_seen = len(self.logger.events)
        for logged in new_events:
            event = logged.event
            if event.kind == "HighlightChanged":
                score.highlight_changes += 1
            elif event.kind == "EntryActivated":
                if tuple(event.path) == score.path:
                    score.completed_at = event.time
                    self._active = None
                    self._show_instruction("Done. Please wait.")
                    return True
                score.wrong_activations += 1
        return False

    def abort_task(self) -> None:
        """Abandon the active task (kept in scores as incomplete)."""
        self._active = None

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Host-side study summary across all administered tasks."""
        completed = [s for s in self.scores if s.completed]
        return {
            "n_tasks": len(self.scores),
            "n_completed": len(completed),
            "mean_task_s": (
                sum(s.duration_s for s in completed) / len(completed)  # reprolint: allow REP007 (host-side summary in task-administration order, single process)
                if completed
                else 0.0
            ),
            "total_wrong_activations": sum(  # reprolint: allow REP007 (integer count of wrong activations — exact)
                s.wrong_activations for s in self.scores
            ),
            "rf_events": len(self.logger.events),
            "rf_mean_latency_s": self.logger.mean_latency(),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate_path(self, path: Sequence[str]) -> None:
        node: MenuEntry = self.device.firmware.cursor.root
        for label in path:
            node = node.child(label)  # KeyError -> clear failure
        if not node.is_leaf:
            raise ValueError(f"path {tuple(path)} ends on a submenu, not a leaf")

    def _show_instruction(self, text: str) -> None:
        """Send the instruction downlink over RF (twice, for loss cover)."""
        host = self.device.board.rf_host
        payload = b"SHOW:" + text.encode("latin-1", errors="replace")
        host.send(payload)
        host.send(payload)  # the link is lossy and has no ACKs

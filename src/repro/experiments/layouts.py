"""ABL-LAYOUT — button count, placement and handedness (§4.5/§6).

The prototype's three-button layout "provides a convenient right-handed
usage"; §6 reports the authors "are currently experimenting with the
number and position of the buttons", favouring either "a two button
design with the buttons slidable along the sides" or "one large button
that can easily be pressed independently of which hand is used".  §7
promises "a later user study will show which design will prove most
useable" — this experiment is that study.

Protocol: a mixed-handed population (≈10 % left-handed) runs the same
selection workload on all three candidate layouts; a handed layout
operated with the other hand slows and fumbles the select press.  Also
crossed with arctic mittens, where the large button's area pays off.
"""

from __future__ import annotations

import numpy as np

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.hardware.buttons import (
    ButtonLayout,
    RIGHT_HANDED_LAYOUT,
    SINGLE_LARGE_BUTTON_LAYOUT,
    TWO_BUTTON_SLIDABLE_LAYOUT,
)
from repro.interaction.gloves import GLOVES
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_layouts", "CANDIDATE_LAYOUTS"]

#: The three designs under consideration in §6.
CANDIDATE_LAYOUTS: tuple[ButtonLayout, ...] = (
    RIGHT_HANDED_LAYOUT,
    TWO_BUTTON_SLIDABLE_LAYOUT,
    SINGLE_LARGE_BUTTON_LAYOUT,
)


def run_layouts(
    seed: int = 0,
    n_users: int = 8,
    n_trials: int = 6,
    n_entries: int = 10,
    left_handed_fraction: float = 0.1,
    gloves: tuple[str, ...] = ("none", "arctic"),
) -> ExperimentResult:
    """Cross candidate layouts with handedness and gloves."""
    result = ExperimentResult(
        experiment_id="ABL-LAYOUT",
        title="Button layouts x handedness x gloves",
        columns=(
            "layout",
            "glove",
            "mean_trial_s",
            "button_misses_per_trial",
            "left_handed_penalty_s",
        ),
    )
    master = np.random.default_rng(seed)
    labels = [f"Item {i}" for i in range(n_entries)]

    for layout in CANDIDATE_LAYOUTS:
        for glove_key in gloves:
            right_times, left_times, misses = [], [], 0
            trials_run = 0
            for u in range(n_users):
                user_seed = int(master.integers(2**31))
                rng = np.random.default_rng(user_seed)
                left_handed = rng.random() < left_handed_fraction or (
                    u == n_users - 1  # guarantee at least one left-hander
                )
                device = DistScroll(
                    build_menu(labels), seed=user_seed, layout=layout
                )
                user = SimulatedUser(
                    device=device,
                    rng=rng,
                    glove=GLOVES[glove_key],
                    handedness="left" if left_handed else "right",
                )
                user.practice_trials = 30
                device.run_for(0.5)
                targets = random_targets(
                    n_entries, n_trials, rng, min_separation=2
                )
                for target in targets:
                    trial = user.select_entry(target)
                    trials_run += 1
                    misses += trial.button_misses
                    bucket = left_times if left_handed else right_times
                    bucket.append(trial.duration_s)
                    while device.depth > 0:
                        device.click("back")
            penalty = (
                float(np.mean(left_times)) - float(np.mean(right_times))
                if left_times and right_times
                else 0.0
            )
            result.add_row(
                layout.name,
                glove_key,
                float(np.mean(right_times + left_times)),
                misses / trials_run,
                penalty,
            )

    result.note(
        "expected: the 3-button prototype penalizes left-handers; the "
        "slidable and single-large-button designs are hand-neutral, and "
        "the large button shrugs off arctic mittens (area scaling)"
    )
    return result

"""EXT-LONG — §7 Q4: long menus, flat vs 10-entry chunking."""

from __future__ import annotations

from repro.experiments import max_flat_entries, run_long_menus


def test_bench_long_menus(benchmark, report):
    result = benchmark.pedantic(
        run_long_menus,
        kwargs={
            "seed": 1,
            "menu_lengths": (10, 20, 40, 60),
            "n_trials": 6,
            "n_users": 2,
        },
        rounds=1,
        iterations=1,
    )
    report(result)
    assert len(result.rows) == 12  # 4 lengths x 3 modes


def test_bench_max_flat_entries(benchmark, report):
    limit = benchmark(max_flat_entries)
    from repro.experiments.harness import ExperimentResult

    result = ExperimentResult(
        experiment_id="EXT-LONG/limit",
        title="Hardware ceiling for unchunked menus",
        columns=("max_flat_entries",),
    )
    result.add_row(limit)
    result.note(
        "beyond this, adjacent islands collapse onto the same ADC codes"
    )
    report(result)
    assert limit > 20

"""Committed baseline of grandfathered lint findings.

A baseline entry suppresses findings matching ``(rule, path, snippet,
occurrence)`` — keyed on the stripped source line rather than the line
number, so an entry survives unrelated edits elsewhere in the file but
dies (loudly) when the grandfathered line itself changes.  The
``occurrence`` index (0-based, assigned in line order by the engine)
disambiguates several identical lines in one file, so matching is
always one-to-one: baselining the first ``time.perf_counter()`` read in
a file does not silently grandfather a second one added later.  Entries
omit the field when it is zero, which keeps pre-occurrence baseline
files both readable and byte-stable.

Every entry must carry a ``justification`` explaining why the violation
is intentional; the loader rejects entries without one, which keeps
"just baseline it" from becoming a silent escape hatch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "discover_baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    snippet: str
    justification: str
    occurrence: int = 0

    def key(self) -> tuple[str, str, str, int]:
        return (self.rule, self.path, self.snippet, self.occurrence)


class Baseline:
    """A set of grandfathered findings with JSON round-trip."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)
        self._keys = {entry.key() for entry in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        """Whether the finding is grandfathered."""
        return finding.key() in self._keys

    def apply(self, findings: Sequence[Finding]) -> list[Finding]:
        """Return findings with ``suppressed`` set where baselined."""
        return [
            f.with_suppressed(self.matches(f)) if not f.suppressed else f
            for f in findings
        ]

    def unmatched_entries(
        self, findings: Sequence[Finding]
    ) -> list[BaselineEntry]:
        """Entries no current finding matches (stale — safe to drop)."""
        seen = {f.key() for f in findings}
        return [e for e in self.entries if e.key() not in seen]

    def without(
        self, stale: Sequence[BaselineEntry]
    ) -> "Baseline":
        """Copy with the given (stale) entries dropped."""
        drop = {entry.key() for entry in stale}
        return Baseline(
            [entry for entry in self.entries if entry.key() not in drop]
        )

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load and validate a baseline file."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: not a reprolint baseline (expected"
                f' {{"version": {_FORMAT_VERSION}, "entries": [...]}})'
            )
        entries = []
        for i, raw in enumerate(data.get("entries", [])):
            missing = {"rule", "path", "snippet", "justification"} - set(raw)
            if missing:
                raise ValueError(
                    f"{path}: entry {i} missing {sorted(missing)}"
                )
            if not str(raw["justification"]).strip():
                raise ValueError(
                    f"{path}: entry {i} ({raw['rule']} {raw['path']}) has an"
                    " empty justification — every grandfathered finding"
                    " must say why it is intentional"
                )
            occurrence = int(raw.get("occurrence", 0))
            if occurrence < 0:
                raise ValueError(
                    f"{path}: entry {i} has a negative occurrence index"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    snippet=str(raw["snippet"]),
                    justification=str(raw["justification"]),
                    occurrence=occurrence,
                )
            )
        return cls(entries)

    @classmethod
    def load_optional(cls, path: Optional[Path]) -> "Baseline":
        """Empty baseline when ``path`` is ``None`` or missing."""
        if path is None or not Path(path).is_file():
            return cls()
        return cls.load(Path(path))

    def save(self, path: Path) -> None:
        """Write the baseline (sorted, trailing newline, stable bytes)."""
        serialized = []
        for entry in sorted(self.entries, key=lambda e: e.key()):
            raw: dict[str, object] = {
                "rule": entry.rule,
                "path": entry.path,
                "snippet": entry.snippet,
                "justification": entry.justification,
            }
            if entry.occurrence:
                raw["occurrence"] = entry.occurrence
            serialized.append(raw)
        payload = {"version": _FORMAT_VERSION, "entries": serialized}
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        justification: str = "TODO: justify this grandfathered finding",
        previous: Optional["Baseline"] = None,
    ) -> "Baseline":
        """Build a baseline covering ``findings``.

        Justifications from ``previous`` are preserved for entries that
        still match, so regenerating never erases the written rationale.
        """
        kept: dict[tuple[str, str, str, int], BaselineEntry] = {}
        if previous is not None:
            kept = {e.key(): e for e in previous.entries}
        entries = []
        for finding in findings:
            key = finding.key()
            if key in kept:
                entries.append(kept[key])
            else:
                entries.append(
                    BaselineEntry(
                        rule=finding.rule,
                        path=finding.path,
                        snippet=finding.snippet,
                        justification=justification,
                        occurrence=finding.occurrence,
                    )
                )
        # de-duplicate identical keys (defensive; occurrence indices
        # already make engine output unique)
        unique = {e.key(): e for e in entries}
        return cls(sorted(unique.values(), key=lambda e: e.key()))


def discover_baseline(start: Path, name: str = "reprolint-baseline.json") -> Optional[Path]:
    """Walk up from ``start`` looking for the committed baseline file."""
    current = Path(start).resolve()
    for candidate in [current, *current.parents]:
        path = candidate / name
        if path.is_file():
            return path
    return None

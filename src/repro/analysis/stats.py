"""Small statistics toolkit for the experiment harness.

Bootstrap confidence intervals and summary rows — enough to print the
paper-style result tables without dragging in a stats framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "bootstrap_ci", "linear_regression"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one measured series."""

    n: int
    mean: float
    std: float
    median: float
    ci_low: float
    ci_high: float

    def row(self, label: str, unit: str = "") -> str:
        """Format as a fixed-width results-table row."""
        return (
            f"{label:<28} n={self.n:<4d} mean={self.mean:8.3f}{unit} "
            f"sd={self.std:7.3f} median={self.median:8.3f} "
            f"95%CI=[{self.ci_low:.3f}, {self.ci_high:.3f}]"
        )


def bootstrap_ci(
    values: np.ndarray,
    rng: np.random.Generator,
    n_boot: int = 2000,
    level: float = 0.95,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if values.size == 1:
        return float(values[0]), float(values[0])
    means = np.empty(n_boot)
    n = values.size
    for i in range(n_boot):
        means[i] = values[rng.integers(0, n, size=n)].mean()
    alpha = (1.0 - level) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: np.ndarray, rng: np.random.Generator | None = None
) -> Summary:
    """Summary statistics with a bootstrap CI (seeded rng optional)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if rng is None:
        rng = np.random.default_rng(0)
    low, high = bootstrap_ci(values, rng)
    return Summary(
        n=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        median=float(np.median(values)),
        ci_low=low,
        ci_high=high,
    )


def linear_regression(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Ordinary least squares ``y = intercept + slope*x``; returns
    ``(intercept, slope, r2)``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    design = np.column_stack([np.ones_like(x), x])
    coeffs, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ coeffs
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(coeffs[0]), float(coeffs[1]), r2

"""Resumable run manifests for the parallel runner.

A manifest is the durable progress record of one logical run: which
experiments it covers, how many shards each decomposes into, which
shards have completed (and how — computed, shard-cache hit, retried
after a worker crash, won by a speculative twin), and per-session
counters that make resume behaviour *assertable*: after an interrupted
``repro run STUDY1 --users 1_000_000 --resume``, the second session's
``shard_cache_hits`` must equal the first session's completions and its
``computed`` count must cover exactly the remainder.

The manifest is advisory metadata, never an input: results come from
the content-addressed cache (stale-proof by construction) or from
recomputation, so a deleted or corrupted manifest costs bookkeeping,
not correctness.  Identity is a ``run_key`` digesting the experiment
specs, seed, observe flag and package sources; ``--resume`` against a
manifest whose key differs is refused rather than silently mixed.

The file is JSON, written atomically after every state change — cheap
at shard granularity (hundreds of entries, not millions: population
studies shard in blocks) and exactly what a fleet coordinator would
persist per run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.runner.cache import source_digest
from repro.runner.registry import ExperimentSpec

__all__ = ["RunManifest", "run_key"]

#: Bump when the on-disk manifest layout changes.
MANIFEST_VERSION = 1


def run_key(
    specs: Sequence[ExperimentSpec], seed: int, observe: bool
) -> str:
    """Identity of a logical run: specs + seed + observe + sources."""
    material = json.dumps(
        {
            "specs": sorted(spec.cache_token() for spec in specs),
            "seed": seed,
            "observe": observe,
            "sources": source_digest(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


class RunManifest:
    """Durable per-run progress ledger (see module docstring)."""

    def __init__(self, path: Path | str, key: str, seed: int) -> None:
        self.path = Path(path)
        self.data: dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "run_key": key,
            "seed": seed,
            "experiments": {},
            "sessions": [],
        }

    # ------------------------------------------------------------------
    # construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: Path | str,
        key: str,
        seed: int,
        resume: bool = False,
    ) -> "RunManifest":
        """Load-or-create the manifest at ``path`` for run ``key``.

        With ``resume=True`` an existing file must carry the same
        ``run_key`` (same specs, seed and sources) or a ``ValueError``
        explains the mismatch; without it, any existing file is
        superseded by a fresh manifest.
        """
        path = Path(path)
        manifest = cls(path, key, seed)
        if not path.is_file():
            return manifest
        try:
            on_disk = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            on_disk = None
        if on_disk is None or on_disk.get("version") != MANIFEST_VERSION:
            if resume:
                raise ValueError(
                    f"cannot resume from {path}: unreadable or"
                    " incompatible manifest version"
                )
            return manifest
        if on_disk.get("run_key") != key:
            if resume:
                raise ValueError(
                    f"cannot resume from {path}: manifest belongs to a"
                    " different run (specs, seed or package sources"
                    " changed since it was written)"
                )
            return manifest
        if resume:
            manifest.data = on_disk
        return manifest

    def save(self) -> None:
        """Write atomically (tmp + rename), creating parents as needed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.data, indent=2) + "\n")
        tmp.replace(self.path)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def begin_session(self, backend: str, jobs: int, speculate: bool) -> None:
        """Append a fresh counter block for this invocation."""
        self.data["sessions"].append(
            {
                "backend": backend,
                "jobs": jobs,
                "speculate": speculate,
                "computed": 0,
                "shard_cache_hits": 0,
                "experiment_cache_hits": 0,
                "retried": 0,
                "speculated": 0,
                "speculation_wins": 0,
                "completed_run": False,
            }
        )

    @property
    def session(self) -> dict[str, Any]:
        """The current (last) session's counter block."""
        sessions: list[dict[str, Any]] = self.data["sessions"]
        return sessions[-1]

    def register_experiment(self, experiment_id: str, shards: int) -> None:
        self.data["experiments"].setdefault(
            experiment_id, {"shards": shards, "done": {}}
        )

    def mark_experiment_cached(self, experiment_id: str) -> None:
        """Whole-experiment cache hit: every shard is implicitly done."""
        entry = self.data["experiments"].setdefault(
            experiment_id, {"shards": 0, "done": {}}
        )
        entry["cached"] = True
        self.session["experiment_cache_hits"] += 1
        self.save()

    def mark_shard_done(
        self,
        experiment_id: str,
        index: int,
        source: str,
        execute_s: float,
        queue_wait_s: float,
        retries: int = 0,
        speculated: bool = False,
    ) -> None:
        """Record one completed shard.

        ``source`` is ``"computed"`` or ``"shard-cache"``; ``retries``
        counts crash-requeues of this shard in this session and
        ``speculated`` marks that a speculative twin was launched for
        it (whichever attempt won).
        """
        entry = self.data["experiments"][experiment_id]
        entry["done"][str(index)] = {
            "source": source,
            "execute_s": execute_s,
            "queue_wait_s": queue_wait_s,
            "retries": retries,
            "speculated": speculated,
        }
        counters = self.session
        if source == "shard-cache":
            counters["shard_cache_hits"] += 1
        else:
            counters["computed"] += 1
        counters["retried"] += retries
        if speculated:
            counters["speculated"] += 1
        self.save()

    def record_speculation_win(self) -> None:
        """A speculative twin finished before the original attempt."""
        self.session["speculation_wins"] += 1

    def finish_session(self) -> None:
        self.session["completed_run"] = True
        self.save()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def shard_entry(
        self, experiment_id: str, index: int
    ) -> Optional[dict[str, Any]]:
        entry = self.data["experiments"].get(experiment_id)
        if entry is None:
            return None
        record: Optional[dict[str, Any]] = entry["done"].get(str(index))
        return record

    def done_count(self, experiment_id: str) -> int:
        entry = self.data["experiments"].get(experiment_id)
        if entry is None:
            return 0
        return len(entry["done"])

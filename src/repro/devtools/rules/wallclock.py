"""REP001 — no wall-clock reads inside the simulation stack.

The kernel's contract (see :mod:`repro.sim.kernel`) is that *nothing*
consults wall-clock time: a seeded run must be bit-for-bit reproducible
and a cached result indistinguishable from a fresh one.  Any
``time.time()`` / ``perf_counter()`` / ``datetime.now()`` that leaks
into simulation or experiment code silently breaks that — results keep
looking plausible while depending on the host's load.

Benchmark harnesses legitimately measure wall time, so ``benchmarks/``
trees and the runner's pool module (which reports suite wall-clock in
``BENCH_runner.json``) are exempt.  Anything else intentionally reading
the clock belongs in the committed baseline with a justification.
"""

from __future__ import annotations

import ast

from repro.devtools.base import Rule, attribute_chain

__all__ = ["NoWallClockRule"]

#: Clock-reading members of the stdlib ``time`` module.
_TIME_CLOCKS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock",
    }
)

#: Clock-reading members of ``datetime`` / ``datetime.datetime``.
_DATETIME_CLOCKS = frozenset({"now", "utcnow", "today"})


class NoWallClockRule(Rule):
    """Flag reads of the host's wall clock."""

    rule_id = "REP001"
    title = "no wall-clock reads outside benchmark/runner timing code"
    exempt_paths = ("runner/pool.py",)
    exempt_prefixes = ("benchmarks",)
    rationale = (
        "Simulated behaviour must depend only on sim time: a"
        " `time.time()`/`perf_counter()` read inside the simulation stack"
        " makes results vary run-to-run and machine-to-machine, breaking"
        " the byte-identical determinism contract."
    )
    example = "started = time.perf_counter()  # inside core/device.py"
    escape_hatch = (
        "Telemetry that genuinely measures wall time (runner/bench"
        " plumbing) is baselined in reprolint-baseline.json with a"
        " justification; benchmark code under benchmarks/ is exempt."
    )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_CLOCKS:
                    self.report(
                        node,
                        f"wall-clock import `from time import {alias.name}`:"
                        " simulation code must use the simulated clock"
                        " (`sim.now`), never host time",
                    )
        elif node.module == "datetime":
            # `from datetime import datetime` is only a problem at the
            # call site (`datetime.now()`), which visit_Attribute flags.
            pass
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = attribute_chain(node)
        if len(chain) >= 2:
            base, attr = chain[-2], chain[-1]
            if base == "time" and attr in _TIME_CLOCKS:
                self.report(
                    node,
                    f"wall-clock read `time.{attr}`: simulation code must"
                    " use the simulated clock (`sim.now`), never host time",
                )
            elif "datetime" in chain[:-1] and attr in _DATETIME_CLOCKS:
                self.report(
                    node,
                    f"wall-clock read `{'.'.join(chain)}`: simulated runs"
                    " must not depend on the host calendar/clock",
                )
        self.generic_visit(node)

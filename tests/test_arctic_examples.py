"""Tests for the arctic suit app plus smoke tests of every example."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps.arctic import ArcticSession, build_suit_menu
from repro.core.menu import flatten_paths

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestArcticSession:
    def test_suit_menu_structure(self):
        menu = build_suit_menu()
        assert menu.child("Heating").child("Torso").child("High").is_leaf
        assert len(flatten_paths(menu)) > 15

    def test_tasks_are_valid_paths(self):
        session = ArcticSession(seed=3, n_tasks=4)
        valid = set(flatten_paths(build_suit_menu()))
        assert all(task in valid for task in session.tasks)

    def test_distscroll_completes_in_mittens(self):
        session = ArcticSession(seed=3, n_tasks=2)
        report = session.run_distscroll()
        assert report["tasks_completed"] == 2
        assert not report["mechanical_parts"]
        assert not report["garment_attached"]

    def test_yoyo_report_flags(self):
        session = ArcticSession(seed=3, n_tasks=2)
        report = session.run_yoyo()
        assert report["mechanical_parts"]
        assert report["garment_attached"]
        assert report["mean_task_s"] > 0

    def test_compare_returns_both(self):
        session = ArcticSession(seed=3, n_tasks=2)
        reports = session.compare()
        assert {r["technique"] for r in reports} == {"distscroll", "yoyo"}


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
)
def test_example_runs_clean(script):
    """Every shipped example must execute end to end."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"

"""Tests for the fault-injection subsystem (repro.faults).

Covers the FaultWindow/FaultPlan schedule machinery, every hardware
injection point, the firmware's recovery behaviors, the
injection↔recovery pairing invariant, and the determinism regression
(same seed + same plan → byte-identical traces).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.fault_sweep import run_fault_sweep, unpaired_faults
from repro.faults import (
    DEFAULT_SWEEP_KINDS,
    FAULT_CHANNEL,
    RECOVERY_CHANNEL,
    FaultKind,
    FaultPlan,
    FaultWindow,
)


def make_device(plan, seed=0, labels=None):
    labels = labels or [f"Item {i}" for i in range(8)]
    return DistScroll(build_menu(labels), seed=seed, fault_plan=plan)


class TestFaultWindow:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultWindow(FaultKind.ADC_GLITCH, start_s=-0.1, duration_s=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultWindow(FaultKind.ADC_GLITCH, start_s=0.0, duration_s=0.0)

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultWindow(
                FaultKind.I2C_ERROR, start_s=0.0, duration_s=1.0, rate=rate
            )

    def test_half_open_interval(self):
        w = FaultWindow(FaultKind.RF_DROP, start_s=1.0, duration_s=0.5)
        assert not w.active(0.999)
        assert w.active(1.0)
        assert w.active(1.499)
        assert not w.active(1.5)
        assert w.end_s == pytest.approx(1.5)

    def test_default_magnitudes_filled_per_kind(self):
        sag = FaultWindow(FaultKind.BATTERY_SAG, start_s=0.0, duration_s=1.0)
        occ = FaultWindow(
            FaultKind.SENSOR_OCCLUSION, start_s=0.0, duration_s=1.0
        )
        assert sag.magnitude == pytest.approx(3.5)
        assert occ.magnitude == pytest.approx(2.2)

    def test_explicit_magnitude_preserved(self):
        w = FaultWindow(
            FaultKind.BATTERY_SAG, start_s=0.0, duration_s=1.0, magnitude=0.2
        )
        assert w.magnitude == pytest.approx(0.2)


class TestFaultPlanSchedule:
    def test_zero_intensity_is_empty(self):
        assert FaultPlan.for_intensity(0.0, duration_s=10.0).windows == []

    @pytest.mark.parametrize("intensity", [-0.1, 1.1])
    def test_bad_intensity_rejected(self, intensity):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.for_intensity(intensity, duration_s=5.0)
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan.random(5.0, intensity)

    def test_for_intensity_windows_fit_the_horizon(self):
        plan = FaultPlan.for_intensity(0.7, duration_s=8.0)
        assert plan.windows
        assert all(w.start_s >= 0 and w.end_s <= 8.0 for w in plan.windows)
        assert {w.kind for w in plan.windows} == set(DEFAULT_SWEEP_KINDS)

    def test_for_intensity_coverage_grows_with_intensity(self):
        def covered(intensity):
            plan = FaultPlan.for_intensity(intensity, duration_s=10.0)
            return sum(w.duration_s for w in plan.windows)

        assert covered(0.2) < covered(0.5) < covered(0.9)

    def test_active_window_respects_target_scoping(self):
        scoped = FaultWindow(
            FaultKind.DISPLAY_RESET, start_s=0.0, duration_s=1.0, target="top"
        )
        plan = FaultPlan([scoped])
        assert plan.active_window(FaultKind.DISPLAY_RESET, 0.5, target="top")
        assert (
            plan.active_window(FaultKind.DISPLAY_RESET, 0.5, target="bottom")
            is None
        )
        # An unscoped window matches any target.
        plan = FaultPlan(
            [FaultWindow(FaultKind.DISPLAY_RESET, start_s=0.0, duration_s=1.0)]
        )
        assert plan.active_window(FaultKind.DISPLAY_RESET, 0.5, target="bottom")

    def test_expired_windows_pop_once_in_end_order(self):
        plan = FaultPlan(
            [
                FaultWindow(FaultKind.RF_DROP, start_s=0.0, duration_s=2.0),
                FaultWindow(FaultKind.RF_DROP, start_s=0.5, duration_s=0.5),
            ]
        )
        assert plan.expired_windows(0.9) == []
        first = plan.expired_windows(1.0)
        assert [w.end_s for _, w in first] == [1.0]
        assert not plan.exhausted
        second = plan.expired_windows(10.0)
        assert [w.end_s for _, w in second] == [2.0]
        assert plan.exhausted
        assert plan.expired_windows(10.0) == []

    def test_install_twice_rejected(self):
        plan = FaultPlan.for_intensity(0.3, duration_s=1.0)
        device = make_device(plan)
        with pytest.raises(RuntimeError, match="already installed"):
            plan.install(device.board)

    def test_random_same_seed_identical_schedules(self):
        a = FaultPlan.random(6.0, 0.5, seed=11)
        b = FaultPlan.random(6.0, 0.5, seed=11)
        assert a.windows == b.windows
        assert a.windows  # non-trivial at this intensity

    def test_random_different_seeds_differ(self):
        a = FaultPlan.random(6.0, 0.5, seed=11)
        b = FaultPlan.random(6.0, 0.5, seed=12)
        assert a.windows != b.windows


class TestHardwareInjection:
    def test_adc_stuck_latches_first_code(self):
        plan = FaultPlan(
            [FaultWindow(FaultKind.ADC_STUCK, start_s=0.2, duration_s=0.4)]
        )
        device = make_device(plan)
        device.hold_at(12.0)
        device.run_for(0.3)
        stuck_near = device.board.adc.sample(device.sim.now, 0)
        device.hold_at(24.0)  # large move: the healthy code would change a lot
        device.run_for(0.2)
        assert device.board.adc.sample(device.sim.now, 0) == stuck_near
        device.run_for(0.5)  # window over: conversions track the hand again
        assert device.board.adc.sample(device.sim.now, 0) != stuck_near

    def test_adc_glitch_traced_and_recovered(self):
        plan = FaultPlan(
            [FaultWindow(FaultKind.ADC_GLITCH, start_s=0.2, duration_s=0.6)]
        )
        device = make_device(plan)
        device.hold_at(15.0)
        device.run_for(1.5)
        assert plan.injections[FaultKind.ADC_GLITCH] > 0
        assert plan.recoveries[FaultKind.ADC_GLITCH] >= 1
        assert unpaired_faults(device) == set()

    def test_i2c_errors_recovered_by_render_backoff(self):
        plan = FaultPlan(
            [
                FaultWindow(
                    FaultKind.I2C_ERROR, start_s=0.2, duration_s=1.6, rate=1.0
                )
            ]
        )
        device = make_device(plan)
        # Keep the selection changing so renders (bus traffic) keep coming.
        for d in (8.0, 20.0, 10.0, 24.0, 14.0):
            device.hold_at(d)
            device.run_for(0.4)
        device.run_for(1.0)
        assert device.board.i2c.injected_errors > 0
        if device.firmware.i2c_render_failures:
            assert device.firmware.i2c_render_recoveries >= 1
        assert unpaired_faults(device) == set()

    def test_display_reset_triggers_watchdog_rerender(self):
        plan = FaultPlan(
            [FaultWindow(FaultKind.DISPLAY_RESET, start_s=0.3, duration_s=0.5)]
        )
        device = make_device(plan)
        device.hold_at(8.0)
        device.run_for(0.25)
        device.hold_at(20.0)  # forces a render inside the window
        device.run_for(1.5)
        resets = (
            device.board.display_top.resets + device.board.display_bottom.resets
        )
        assert resets >= 1
        assert device.firmware.display_watchdog_rerenders >= 1
        # The panel is not left blank: the highlighted label was re-drawn.
        lines = (
            device.board.display_top.lines + device.board.display_bottom.lines
        )
        assert any(line.strip() for line in lines)
        assert unpaired_faults(device) == set()

    def test_rf_drop_and_duplicate_counted(self):
        plan = FaultPlan(
            [
                FaultWindow(FaultKind.RF_DROP, start_s=0.2, duration_s=0.8),
                FaultWindow(
                    FaultKind.RF_DUPLICATE, start_s=1.2, duration_s=0.8
                ),
            ]
        )
        device = make_device(plan)
        # Scroll around to generate RF traffic throughout both windows.
        for d in (8.0, 20.0, 10.0, 24.0, 12.0):
            device.hold_at(d)
            device.run_for(0.5)
        assert device.board.rf_link.packets_lost > 0
        assert device.board.rf_link.packets_duplicated > 0
        assert unpaired_faults(device) == set()

    def test_battery_sag_holds_then_resumes_without_halt(self):
        plan = FaultPlan(
            [FaultWindow(FaultKind.BATTERY_SAG, start_s=0.4, duration_s=0.4)]
        )
        device = make_device(plan)
        device.hold_at(10.0)
        device.run_for(0.3)
        before = device.highlighted_index
        device.run_for(0.6)  # ride through the sag window
        assert device.firmware.brownout_holds >= 1
        assert not device.firmware.halted
        # After the window the firmware re-acquires and tracks the hand.
        device.hold_at(24.0)
        device.run_for(1.0)
        assert device.highlighted_index != before
        assert unpaired_faults(device) == set()

    def test_sensor_dropout_does_not_corrupt_selection(self):
        plan = FaultPlan(
            [FaultWindow(FaultKind.SENSOR_DROPOUT, start_s=0.5, duration_s=0.4)]
        )
        device = make_device(plan)
        device.hold_at(10.0)
        device.run_for(0.45)
        held = device.highlighted_index
        device.run_for(0.4)  # dropout: floor voltage, out-of-range reading
        # The plausibility gate keeps the last valid selection.
        assert device.highlighted_index == held
        device.run_for(1.0)
        assert unpaired_faults(device) == set()

    def test_sensor_occlusion_traced(self):
        plan = FaultPlan(
            [
                FaultWindow(
                    FaultKind.SENSOR_OCCLUSION, start_s=0.5, duration_s=0.4
                )
            ]
        )
        device = make_device(plan)
        device.hold_at(15.0)
        device.run_for(1.5)
        assert plan.injections[FaultKind.SENSOR_OCCLUSION] == 1
        assert unpaired_faults(device) == set()


class TestPairingInvariant:
    def test_every_injection_paired_with_recovery(self):
        plan = FaultPlan.random(3.0, 0.6, seed=5)
        device = make_device(plan, seed=3)
        for d in (8.0, 18.0, 12.0, 24.0):
            device.hold_at(d)
            device.run_for(1.0)
        assert plan.total_injections > 0
        assert plan.exhausted
        assert unpaired_faults(device) == set()
        faults = device.tracer.get(FAULT_CHANNEL)
        recoveries = device.tracer.get(RECOVERY_CHANNEL)
        assert faults is not None and len(faults) == plan.total_injections
        assert recoveries is not None and len(recoveries) == (
            plan.total_recoveries
        )

    def test_healthy_device_has_no_fault_channels(self, quiet_device):
        quiet_device.hold_at(15.0)
        quiet_device.run_for(1.0)
        assert quiet_device.tracer.get(FAULT_CHANNEL) is None
        assert quiet_device.tracer.get(RECOVERY_CHANNEL) is None


class TestDeterminismRegression:
    """ISSUE satellite: trace bytes are a function of the seed alone."""

    def _run(self, seed, plan_seed):
        plan = FaultPlan.random(2.5, 0.5, seed=plan_seed)
        device = make_device(plan, seed=seed)
        for d in (9.0, 21.0, 13.0):
            device.hold_at(d)
            device.run_for(1.0)
        return device

    def test_same_seed_and_plan_byte_identical_traces(self):
        a = self._run(seed=7, plan_seed=3)
        b = self._run(seed=7, plan_seed=3)
        blob = a.tracer.serialize()
        assert blob == b.tracer.serialize()
        assert blob  # the serialization is non-trivial
        assert a.tracer.get(FAULT_CHANNEL) is not None

    def test_different_device_seed_differs(self):
        a = self._run(seed=7, plan_seed=3)
        b = self._run(seed=8, plan_seed=3)
        assert a.tracer.serialize() != b.tracer.serialize()

    def test_different_plan_seed_differs(self):
        a = self._run(seed=7, plan_seed=3)
        b = self._run(seed=7, plan_seed=4)
        assert a.tracer.serialize() != b.tracer.serialize()

    def test_healthy_run_unchanged_by_faults_import(self, flat_labels):
        """Faults disabled → same trace as a device built without the
        subsystem ever being mentioned (the hooks stay None)."""
        a = DistScroll(build_menu(flat_labels), seed=0, noisy=False)
        b = DistScroll(build_menu(flat_labels), seed=0, noisy=False)
        for device in (a, b):
            device.hold_at(14.0)
            device.run_for(1.0)
        assert a.board.adc.fault_hook is None
        assert a.tracer.serialize() == b.tracer.serialize()


class TestFaultSweepExperiment:
    def test_sweep_error_rate_monotone_and_paired(self):
        result = run_fault_sweep(
            seed=0, intensities=(0.0, 0.6), trials=6, dwell_s=0.8
        )
        rates = result.column("error_rate")
        assert rates[0] <= rates[-1]
        assert all(v == 0 for v in result.column("unpaired_faults"))
        injected = result.column("faults_injected")
        assert injected[0] == 0 and injected[-1] > 0

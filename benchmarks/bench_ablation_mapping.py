"""ABL-MAP — ablate the equal-distance placement and the island gaps."""

from __future__ import annotations

from repro.experiments import run_ablation_mapping


def test_bench_ablation_mapping(benchmark, report):
    result = benchmark.pedantic(
        run_ablation_mapping,
        kwargs={"seed": 1, "n_entries": 12, "n_trials": 6, "n_users": 3},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_variant = {r[0]: r for r in result.rows}
    assert by_variant["paper (equal-dist + gaps)"][1] < 0.01
    assert by_variant["naive (equal-code + gaps)"][1] > 0.3

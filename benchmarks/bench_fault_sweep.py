"""ROB-FAULT — fault-injection robustness sweep of the full stack."""

from __future__ import annotations

from repro.experiments.fault_sweep import run_fault_sweep


def test_bench_fault_sweep(benchmark, report):
    result = benchmark.pedantic(
        run_fault_sweep, kwargs={"seed": 0}, rounds=1, iterations=1,
    )
    report(result)
    rates = result.column("error_rate")
    # Healthy hardware selects reliably; error rate never decreases as
    # fault intensity rises, and full intensity visibly degrades it.
    assert rates[0] <= 0.10
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0]
    # Every injected fault is paired with a firmware recovery record.
    assert all(v == 0 for v in result.column("unpaired_faults"))


def test_bench_fault_sweep_smoke(benchmark, report):
    """Cheap two-point config for the CI smoke job."""
    result = benchmark.pedantic(
        run_fault_sweep,
        kwargs={"seed": 0, "intensities": (0.0, 0.6), "trials": 8},
        rounds=1, iterations=1,
    )
    result.experiment_id = "ROB-FAULT_smoke"
    report(result)
    rates = result.column("error_rate")
    assert rates[-1] >= rates[0]
    assert all(v == 0 for v in result.column("unpaired_faults"))

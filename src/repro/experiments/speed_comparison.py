"""EXT-SPEED — §7 Q1: is distance scrolling faster than the alternatives?

"Is distance-based scrolling faster, equal or slower than other scrolling
techniques.  So far, we only know that Fitt's Law holds for scrolling."

Protocol: every technique from the Related Work runs the same
(start, target) ladders over several menu lengths.  Reported per
technique x menu length: mean selection time and error rate.  Separately,
DistScroll's (ID, MT) pairs are regressed to confirm Fitts's law holds in
the full closed loop — the paper's one known quantitative anchor.

Expected shape: button scrolling is linear in scroll *distance* (good for
neighbours, bad for far targets); tilt rate-control sits between; the
position-control techniques (DistScroll, YoYo) are logarithmic in
distance, so they win increasingly with menu length.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import summarize
from repro.baselines import ALL_TECHNIQUES
from repro.experiments.harness import ExperimentResult
from repro.interaction.fitts import fit_fitts
from repro.interaction.gloves import GLOVES

__all__ = ["run_speed_comparison", "run_distance_profile"]


def run_speed_comparison(
    seed: int = 0,
    menu_lengths: tuple[int, ...] = (8, 20),
    repetitions: int = 4,
    techniques: tuple[str, ...] = (
        "distscroll",
        "buttons",
        "tilt",
        "wheel",
        "yoyo",
        "touch",
    ),
    glove_key: str = "none",
) -> tuple[ExperimentResult, ExperimentResult]:
    """Run the cross-technique comparison plus the Fitts regression.

    Returns ``(comparison_table, fitts_table)``.
    """
    comparison = ExperimentResult(
        experiment_id="EXT-SPEED",
        title=f"Selection time by technique and menu length (glove={glove_key})",
        columns=(
            "technique",
            "menu_len",
            "mean_s",
            "sd_s",
            "errors_per_trial",
            "one_handed",
        ),
    )
    fitts_rows = ExperimentResult(
        experiment_id="EXT-SPEED/fitts",
        title="Fitts's-law regression per technique (MT = a + b*ID)",
        columns=("technique", "a_s", "b_s_per_bit", "r2", "n"),
    )
    glove = GLOVES[glove_key]
    master = np.random.default_rng(seed)

    for tech_name in techniques:
        factory = ALL_TECHNIQUES[tech_name]
        ids_all: list[float] = []
        times_all: list[float] = []
        for n_entries in menu_lengths:
            rng = np.random.default_rng(int(master.integers(2**31)))
            technique = factory(rng=rng, glove=glove)
            pairs = _ladder(n_entries, repetitions)
            durations = []
            errors = 0
            for start, target in pairs:
                trial = technique.select(start, target, n_entries)
                durations.append(trial.duration_s)
                errors += trial.errors
                if trial.index_of_difficulty > 0:
                    ids_all.append(trial.index_of_difficulty)
                    times_all.append(trial.duration_s)
            stats = summarize(np.asarray(durations))
            comparison.add_row(
                tech_name,
                n_entries,
                stats.mean,
                stats.std,
                errors / len(pairs),
                "yes" if technique.one_handed else "NO",
            )
        if len(set(np.round(ids_all, 3))) >= 3:
            fit = fit_fitts(np.asarray(ids_all), np.asarray(times_all))
            fitts_rows.add_row(tech_name, fit.a, fit.b, fit.r2, fit.n)

    comparison.note(
        "expected shape: buttons grow linearly with target distance; "
        "position-control (distscroll, yoyo) grow logarithmically; "
        "wheel and touch need the second hand"
    )
    fitts_rows.note(
        "paper §7: 'we only know that Fitt's Law holds for scrolling' — "
        "the closed-loop distscroll regression shows a reliably positive "
        "slope; r2 is modest because total task time folds in reaction, "
        "verification and button noise on top of the movement component"
    )
    return comparison, fitts_rows


def run_distance_profile(
    seed: int = 0,
    n_entries: int = 24,
    distances: tuple[int, ...] = (1, 3, 7, 15, 23),
    repetitions: int = 6,
    techniques: tuple[str, ...] = ("distscroll", "buttons", "tilt", "yoyo"),
) -> ExperimentResult:
    """Selection time vs scroll distance — the linear/log crossover plot.

    The decisive series: button scrolling grows linearly with the number
    of entries to traverse; DistScroll (position control) grows with the
    *logarithm* (Fitts), so the curves cross and diverge with distance.
    """
    result = ExperimentResult(
        experiment_id="EXT-SPEED/profile",
        title=f"Selection time vs scroll distance ({n_entries}-entry menu)",
        columns=("technique", "distance", "mean_s", "errors_per_trial"),
    )
    master = np.random.default_rng(seed)
    for tech_name in techniques:
        rng = np.random.default_rng(int(master.integers(2**31)))
        technique = ALL_TECHNIQUES[tech_name](rng=rng)
        for distance in distances:
            if distance >= n_entries:
                continue
            durations, errors = [], 0
            for rep in range(repetitions):
                lo = (n_entries - 1 - distance) // 2
                hi = lo + distance
                start, target = (lo, hi) if rep % 2 == 0 else (hi, lo)
                trial = technique.select(start, target, n_entries)
                durations.append(trial.duration_s)
                errors += trial.errors
            result.add_row(
                tech_name,
                distance,
                float(np.mean(durations)),
                errors / repetitions,
            )
    result.note(
        "expected crossover: buttons beat everything for distance 1-2, "
        "then grow linearly; distscroll stays near-flat beyond ~3 entries"
    )
    return result


def _ladder(n_entries: int, repetitions: int) -> list[tuple[int, int]]:
    distances = sorted({1, 2, max(n_entries // 4, 3), max(n_entries // 2, 4),
                        n_entries - 1})
    pairs = []
    for d in distances:
        if d <= 0 or d >= n_entries:
            continue
        for rep in range(repetitions):
            lo = (n_entries - 1 - d) // 2
            hi = lo + d
            pairs.append((lo, hi) if rep % 2 == 0 else (hi, lo))
    return pairs

"""SENS-FOLD — the <4 cm fold-back: ambiguity, mitigation, exploit.

Section 4.2 describes three behaviours of the region closer than ~4 cm:

* **ambiguity** — "it therefore cannot be detected if the device is moved
  away (> 4cm) or towards the user (< 4 cm)";
* **tolerability** — users avoid it because a display that close is
  unreadable, and "initial tests show that users are aware of this sensor
  characteristic and learn how to avoid this behavior";
* **exploit** — "it is also possible — because of the much faster
  declining sensor values between 0 and 4 cms — that this sensor
  characteristic is exploited by advanced users for faster scrolling".

The experiment (a) quantifies the ambiguity by finding, for each
fold-back distance, the in-range distance producing the same voltage;
(b) drives the firmware through a fold-back crossing and counts how many
spurious selections the plausibility gate lets through; (c) measures the
fast-scroll gesture's achieved entries/second against normal reaching.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.hand import Hand
from repro.sensors.gp2d120 import GP2D120

__all__ = ["run_foldback"]


def run_foldback(seed: int = 0, n_entries: int = 10) -> ExperimentResult:
    """Characterize the fold-back region end to end."""
    result = ExperimentResult(
        experiment_id="SENS-FOLD",
        title="Fold-back region: alias distances, gating, fast-scroll",
        columns=("foldback_cm", "alias_cm", "voltage_V"),
    )

    # (a) the ambiguity table: each distance below the peak aliases to one
    # beyond it.  One vectorized pass over the fold-back grid.
    sensor = GP2D120(rng=None)
    foldback_grid = np.array([0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5])
    voltages = sensor.ideal_voltage_array(foldback_grid)
    for d, voltage in zip(foldback_grid, voltages):
        try:
            alias = sensor.distance_for_voltage(float(voltage))
        except ValueError:
            alias = float("nan")
        result.add_row(float(d), float(alias), float(voltage))
    result.note(
        "every fold-back distance aliases to an in-range distance — the "
        "sensor alone cannot distinguish them (§4.2)"
    )

    # (b) park the device in the shallow fold-back (2.4 cm aliases to
    # ~6.1 cm, i.e. into *other* islands of a dense menu): does the
    # firmware keep the selection it had when the hand crossed the peak?
    held_latched, spurious = _dive_and_park(seed, n_entries=40, gate=True)
    held_ungated, spurious_ungated = _dive_and_park(
        seed, n_entries=40, gate=False
    )
    result.note(
        f"dive to 2.4 cm (40-entry menu): selection preserved="
        f"{held_latched} with the fold-back latch ({spurious} changes "
        f"while parked) vs preserved={held_ungated} without "
        f"({spurious_ungated} changes) — the latch absorbs shallow "
        "fold-back contact; deep dives stay ambiguous (tolerated, §4.2)"
    )

    # (c) fast-scroll throughput.
    fast_rate = _measure_fast_scroll_rate(seed, n_entries=40)
    result.note(
        f"fast-scroll gesture sustains {fast_rate:.1f} entries/s "
        "(advanced-user exploit of the steep <4 cm slope)"
    )
    return result


def _dive_and_park(
    seed: int, n_entries: int, gate: bool
) -> tuple[bool, int]:
    """Dive into the fold-back and park; report (preserved, changes).

    ``preserved`` — whether the entry highlighted before the dive is still
    highlighted while parked at 2.6 cm (whose alias lies inside an
    island); ``changes`` — highlight changes while parked.
    """
    labels = [f"Item {i}" for i in range(n_entries)]
    config = DeviceConfig(fast_scroll_enabled=False, chunk_size=0)
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    if not gate:
        # Disable the fold-back latch and the plausibility gate entirely.
        device.firmware._fast_threshold_code = 10**9
        device.firmware._max_plausible_delta = 10**9
    hand = Hand(
        device.sim,
        lambda d: device.board.set_pose(distance_cm=d),
        start_cm=15.0,
        rng=device.sim.spawn_rng(),
    )
    # Approach the near end of the range first, so the crossing-time
    # selection is well defined, then dive past the peak.
    hand.move_to(5.2, 0.8)
    device.run_for(1.2)
    selected_at_crossing = device.highlighted_index
    hand.move_to(2.4, 0.3)  # alias ≈ 6.1 cm: other islands of a dense menu
    device.run_for(0.5)
    changes_before_park = _highlight_changes(device)
    device.run_for(1.5)
    changes_while_parked = _highlight_changes(device) - changes_before_park
    preserved = device.highlighted_index == selected_at_crossing
    return preserved, changes_while_parked


def _highlight_changes(device: DistScroll) -> int:
    return sum(1 for _, e in device.events() if e.kind == "HighlightChanged")


def _measure_fast_scroll_rate(seed: int, n_entries: int) -> float:
    """Hold the device in the fold-back region; measure scroll speed."""
    labels = [f"Item {i}" for i in range(n_entries)]
    config = DeviceConfig(chunk_size=0, fast_scroll_enabled=True)
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    device.hold_at(20.0)
    device.run_for(0.5)
    start_events = len(device.events())
    # The gesture: hover at the voltage peak (~4 cm), where output exceeds
    # anything the usable range produces.
    device.hold_at(3.9)
    duration = 2.0
    device.run_for(duration)
    fast_steps = sum(
        1 for _, e in device.events()[start_events:] if e.kind == "FastScroll"
    )
    return fast_steps / duration

"""EXT-FUSION — activate the spare sensor slot for fold-back immunity."""

from __future__ import annotations

from repro.experiments import run_fusion


def test_bench_fusion(benchmark, report):
    result = benchmark.pedantic(
        run_fusion, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    report(result)
    joined = " ".join(result.notes)
    # The dual-sensor device keeps its selection at every park depth.
    assert "dual=LOST" not in joined
    # And the deepest single-sensor park fails, motivating the fusion.
    assert "single=LOST" in joined

"""Parallel experiment execution: executors, sharding, cache, manifests.

The experiment suite is embarrassingly parallel — every (experiment,
seed) pair, and within several experiments every sweep point or
participant, is an independent work unit.  This package turns the flat
registry of experiment runners into:

* :mod:`repro.runner.registry` — declarative :class:`ExperimentSpec`
  entries (import path + parameters + sharding strategy) replacing the
  old closure-based registry;
* :mod:`repro.runner.sharding` — deterministic decomposition of a spec
  into :class:`Shard` work units and order-stable merging of the partial
  results; any single shard is derivable in O(1) via
  :func:`make_shard`, so workers never materialize a million-entry
  shard list to run one unit;
* :mod:`repro.runner.executors` — pluggable backends behind one
  submit/poll contract: ``inline`` (reference path), ``pool``
  (``ProcessPoolExecutor``) and ``workqueue`` (long-lived mortal
  workers over shared queues — the single-machine stand-in for a
  distributed fleet, with crash detection and per-shard retry);
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  keyed by experiment id, parameters, seed and a digest of the package
  sources, at both experiment and shard granularity;
* :mod:`repro.runner.manifest` — the durable per-run progress ledger
  that makes interrupted population-scale runs resumable and resume
  behaviour assertable;
* :mod:`repro.runner.pool` — the backend-agnostic scheduler: cost-aware
  LPT ordering, as-completed collection with per-experiment incremental
  merge, first-error cancellation, straggler speculation, and the
  ``BENCH_runner.json`` timing report.

The contract throughout: any backend, any job count, any crash/retry or
speculation interleaving produces byte-identical merged CSVs, and a
cache hit recomputes nothing.
"""

from repro.runner.cache import ResultCache, source_digest
from repro.runner.executors import (
    BACKENDS,
    ShardExecutionError,
    ShardTask,
    make_executor,
)
from repro.runner.manifest import RunManifest, run_key
from repro.runner.pool import run_experiments
from repro.runner.registry import REGISTRY, ExperimentSpec, build_runner
from repro.runner.sharding import (
    Shard,
    estimate_shard_cost,
    execute_shard,
    make_shard,
    make_shards,
    merge_shard_results,
    n_shards,
    shard_result_digest,
    spawn_shard_seeds,
)

__all__ = [
    "REGISTRY",
    "ExperimentSpec",
    "build_runner",
    "ResultCache",
    "source_digest",
    "run_experiments",
    "BACKENDS",
    "ShardExecutionError",
    "ShardTask",
    "make_executor",
    "RunManifest",
    "run_key",
    "Shard",
    "make_shard",
    "make_shards",
    "n_shards",
    "estimate_shard_cost",
    "shard_result_digest",
    "execute_shard",
    "merge_shard_results",
    "spawn_shard_seeds",
]

"""The ``repro bench`` suite and its perf-regression gate (PR 4)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCHMARKS,
    BenchRecord,
    check_report,
    format_report,
    run_benchmarks,
)
from repro.perf.bench import DEFAULT_MIN_SPEEDUP, DEFAULT_THRESHOLD


def _report(benchmarks, derived=None, quick=False):
    """A minimal, well-formed report for gate tests."""
    return {
        "generated_by": "test",
        "quick": quick,
        "rounds": 1,
        "benchmarks": {
            name: {
                "wall_s": 1.0,
                "units": int(value),
                "unit_name": "units",
                "units_per_s": float(value),
                "rounds": 1,
            }
            for name, value in benchmarks.items()
        },
        "derived": dict(derived or {}),
    }


class TestBenchRecord:
    def test_units_per_s(self):
        record = BenchRecord("x", wall_s=0.5, units=100, unit_name="events",
                             rounds=1)
        assert record.units_per_s == 200.0

    def test_zero_wall_does_not_divide(self):
        record = BenchRecord("x", wall_s=0.0, units=100, unit_name="events",
                             rounds=1)
        assert record.units_per_s == 0.0

    def test_to_json_round_trips_the_gate_fields(self):
        payload = BenchRecord("x", wall_s=0.5, units=100,
                              unit_name="events", rounds=3).to_json()
        assert payload["units_per_s"] == 200.0
        assert payload["unit_name"] == "events"
        assert payload["rounds"] == 3


class TestRunBenchmarks:
    def test_subset_run_produces_report_shape(self):
        report = run_benchmarks(only=["island-map"], quick=True)
        assert report["quick"] is True
        assert set(report["benchmarks"]) == {"island-map"}
        entry = report["benchmarks"]["island-map"]
        assert entry["units"] > 0
        assert entry["units_per_s"] > 0
        assert report["derived"] == {}  # no calib pair in the subset

    def test_calib_pair_produces_speedup(self):
        report = run_benchmarks(
            only=["calib-sweep-scalar", "calib-sweep-vectorized"],
            quick=True,
        )
        speedup = report["derived"]["calib_vector_speedup"]
        # The acceptance bar for the fast path; quick mode must clear it
        # too since CI gates on the quick run.
        assert speedup >= DEFAULT_MIN_SPEEDUP

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmarks"):
            run_benchmarks(only=["nope"])

    def test_registry_names_are_stable(self):
        # BENCH_perf.json keys live in git; renames must be deliberate.
        assert {
            "calib-sweep-scalar",
            "calib-sweep-vectorized",
            "kernel-events",
            "kernel-cancel-churn",
            "runner-fanout",
        } <= set(BENCHMARKS)

    def test_runner_fanout_reports_scheduler_efficiency(self):
        report = run_benchmarks(only=["runner-fanout"], quick=True)
        entry = report["benchmarks"]["runner-fanout"]
        assert entry["backend"] == "workqueue"
        assert entry["workers"] == 4
        assert entry["units"] > 0
        efficiency = report["derived"]["scheduler_efficiency"]
        assert 0.0 < efficiency <= 1.0
        # The notes of the best round and the derived value must agree.
        assert entry["scheduler_efficiency"] == efficiency


class TestCheckReport:
    def test_passes_when_identical(self):
        baseline = _report({"a": 100.0}, {"calib_vector_speedup": 5.0})
        assert check_report(baseline, baseline) == []

    def test_fails_on_throughput_regression(self):
        baseline = _report({"a": 100.0})
        current = _report({"a": 100.0 * (1.0 - DEFAULT_THRESHOLD) - 1.0})
        failures = check_report(current, baseline)
        assert len(failures) == 1
        assert "below baseline" in failures[0]

    def test_tolerates_drop_within_threshold(self):
        baseline = _report({"a": 100.0})
        current = _report({"a": 80.0})  # 20% < 25% threshold
        assert check_report(current, baseline) == []

    def test_missing_benchmark_fails(self):
        failures = check_report(_report({}), _report({"a": 100.0}))
        assert failures == ["a: in baseline but not measured"]

    def test_quick_vs_full_skips_absolute_throughput(self):
        """Quick workloads are sized differently, so a quick run checked
        against the committed full baseline must skip throughput floors."""
        baseline = _report({"a": 100.0}, {"calib_vector_speedup": 5.0})
        current = _report(
            {"a": 10.0}, {"calib_vector_speedup": 5.0}, quick=True
        )
        assert check_report(current, baseline) == []

    def test_derived_ratio_relative_check_is_same_mode_only(self):
        """Ratios are workload-size-dependent too (the vectorized sweep
        amortizes numpy dispatch better at full size), so the relative
        comparison only holds within a mode; cross-mode runs gate on the
        absolute min_speedup floor instead."""
        baseline = _report({}, {"calib_vector_speedup": 6.0})
        cross = _report({}, {"calib_vector_speedup": 4.0}, quick=True)
        assert check_report(cross, baseline) == []
        same = _report({}, {"calib_vector_speedup": 4.0})
        failures = check_report(same, baseline)
        assert any("calib_vector_speedup" in f for f in failures)

    def test_derived_missing_fails_even_across_modes(self):
        baseline = _report({}, {"calib_vector_speedup": 6.0})
        current = _report({}, {}, quick=True)
        failures = check_report(current, baseline)
        assert failures == [
            "derived calib_vector_speedup: in baseline but not measured"
        ]

    def test_min_speedup_floor_holds_cross_mode(self):
        """The CI quick run still fails if the fast path collapses."""
        baseline = _report({}, {"calib_vector_speedup": 6.0})
        current = _report({}, {"calib_vector_speedup": 2.0}, quick=True)
        failures = check_report(current, baseline)
        assert any("below the required 3.0x" in f for f in failures)

    def test_min_speedup_floor_is_absolute(self):
        """Even with a matching baseline, dropping under min_speedup fails
        — the ISSUE's >=3x bar is not relative to anything."""
        report = _report({}, {"calib_vector_speedup": 2.5})
        failures = check_report(report, report)
        assert any("below the required 3.0x" in f for f in failures)

    def test_custom_threshold(self):
        baseline = _report({"a": 100.0})
        current = _report({"a": 89.0})
        assert check_report(current, baseline, threshold=0.10)
        assert check_report(current, baseline, threshold=0.20) == []

    def test_scheduler_efficiency_floor_full_mode(self):
        report = _report({}, {"scheduler_efficiency": 0.5})
        failures = check_report(report, _report({}))
        assert any("scheduler efficiency" in f for f in failures)

    def test_scheduler_efficiency_floor_skipped_in_quick_mode(self):
        """Quick-mode shards are too small to amortize worker handoff,
        so the absolute utilisation floor only gates full runs."""
        report = _report({}, {"scheduler_efficiency": 0.5}, quick=True)
        assert check_report(report, _report({}, quick=True)) == []

    def test_scheduler_efficiency_passes_above_floor(self):
        report = _report({}, {"scheduler_efficiency": 0.93})
        assert check_report(report, _report({})) == []

    def test_scheduler_efficiency_custom_floor(self):
        report = _report({}, {"scheduler_efficiency": 0.93})
        failures = check_report(report, _report({}), min_efficiency=0.95)
        assert any("scheduler efficiency" in f for f in failures)


class TestFormatReport:
    def test_renders_each_benchmark_and_ratio(self):
        text = format_report(
            _report({"a": 100.0, "b": 2.0}, {"calib_vector_speedup": 5.0})
        )
        assert "a" in text and "b" in text
        assert "calib_vector_speedup: 5.00x" in text


class TestBenchCLI:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in BENCHMARKS:
            assert name in out

    def test_unknown_only_exits_2(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_run_benchmarks_keyerror_never_escapes(
        self, capsys, monkeypatch
    ):
        """Regression: a KeyError from run_benchmarks must become a
        clean exit 2 listing the valid names, never a raw traceback —
        even if the CLI's own pre-validation drifts out of sync."""
        import repro.perf

        def explode(**_kwargs):
            raise KeyError("unknown benchmarks: ghost")

        monkeypatch.setattr(repro.perf, "run_benchmarks", explode)
        assert main(["bench", "--only", "island-map"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmarks: ghost" in err
        assert "valid names" in err
        assert "island-map" in err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = main([
            "bench", "--quick", "--only", "island-map",
            "--output", str(tmp_path / "out.json"),
            "--check", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_writes_report_and_passes_gate(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        baseline_path = tmp_path / "baseline.json"
        # Seed an easy baseline, then check against it.
        baseline = _report({"island-map": 1.0}, quick=True)
        baseline_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick", "--only", "island-map",
            "--output", str(out_path), "--check", str(baseline_path),
        ])
        assert code == 0
        report = json.loads(out_path.read_text())
        assert "island-map" in report["benchmarks"]
        assert "perf gate passed" in capsys.readouterr().out

    def test_gate_failure_exits_1(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        baseline_path = tmp_path / "baseline.json"
        baseline = _report({"island-map": 1e15}, quick=True)
        baseline_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick", "--only", "island-map",
            "--output", str(out_path), "--check", str(baseline_path),
        ])
        assert code == 1
        assert "perf gate FAILED" in capsys.readouterr().err


class TestCommittedBaseline:
    def test_bench_perf_json_is_well_formed(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
        report = json.loads(path.read_text())
        assert report["quick"] is False
        assert set(report["benchmarks"]) == set(BENCHMARKS)
        for entry in report["benchmarks"].values():
            assert entry["units_per_s"] > 0
        # The committed baseline must itself satisfy the acceptance bar.
        assert (
            report["derived"]["calib_vector_speedup"] >= DEFAULT_MIN_SPEEDUP
        )
        # Batched-engine acceptance: >= 20x device-seconds/s over the
        # scalar loop, and observability keeps >= 0.55x of null-recorder
        # throughput (the hot-path bugfix sweep's floor).
        assert report["derived"]["batch_speedup"] >= 20.0
        assert report["derived"]["obs_enabled_ratio"] >= 0.55
        # Runner-v2 acceptance: the scheduler keeps >= 0.8 worker
        # utilisation on the skewed fan-out (cost-aware LPT ordering +
        # as-completed collection; see repro.perf.fanout).
        assert report["derived"]["scheduler_efficiency"] >= 0.8

"""ABL-CAL, EXT-POWER, EXT-BREADTH — extension benches."""

from __future__ import annotations

from repro.experiments import run_breadth, run_calibration_ablation, run_power


def test_bench_calibration_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_calibration_ablation,
        kwargs={"seed": 2, "n_specimens": 4, "n_trials": 6},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_key = {(r[0], r[1]): r for r in result.rows}
    # Per-unit calibration reduces corrective submovements at 10 entries.
    assert (
        by_key[(10, "calibrated")][3] <= by_key[(10, "datasheet")][3]
    )
    # And users always recover via display feedback.
    assert all(r[4] >= 0.8 for r in result.rows)


def test_bench_power(benchmark, report):
    result = benchmark.pedantic(
        run_power, kwargs={"seed": 1, "window_s": 60.0}, rounds=1,
        iterations=1,
    )
    report(result)
    life = dict(zip(result.column("workload"), result.column("battery_life_h")))
    # A 9 V block lasts a full study day on every workload.
    assert all(hours > 8.0 for hours in life.values())
    packets = dict(
        zip(result.column("workload"), result.column("rf_packets_per_min"))
    )
    assert packets["browsing"] > packets["idle"]


def test_bench_breadth(benchmark, report):
    result = benchmark.pedantic(
        run_breadth,
        kwargs={"seed": 1, "n_tasks": 5, "n_users": 2},
        rounds=1,
        iterations=1,
    )
    report(result)
    rows = {r[0]: r for r in result.rows}
    # Depth is the expensive axis: 3 levels cost more than 1 split.
    assert rows["64 deep (4^3)"][2] > rows["64 square (8^2)"][2] * 0.9
    assert all(r[4] >= 0.8 for r in result.rows)

"""Calibration sweeps over the simulated GP2D120 — Figures 4 and 5.

The paper's authors swept the sensor over its range, recorded the analog
voltage at the Smart-Its input port, plotted the samples ("asterisks") and
fitted an idealized curve through them (Figure 4; Figure 5 repeats the plot
on logarithmic axes).  They also verified the curve "in different light
conditions and with different clothing as surfaces".

This module is that bench procedure in code: sample a sensor specimen at a
grid of distances, average repeated readings, and fit the hyperbolic and
power-law models from :mod:`repro.signal.fitting`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.gp2d120 import GP2D120, SENSOR_MAX_CM, SENSOR_MIN_CM
from repro.sensors.surfaces import AmbientLight, Surface
from repro.signal.fitting import (
    HyperbolicFit,
    PowerLawFit,
    fit_hyperbola,
    fit_power_law,
)

__all__ = ["CalibrationSample", "CalibrationResult", "calibrate", "sweep_environments"]


@dataclass(frozen=True)
class CalibrationSample:
    """One measured point of the sweep: the asterisks of Figure 4."""

    distance_cm: float
    mean_voltage: float
    std_voltage: float
    n_readings: int


@dataclass(frozen=True)
class CalibrationResult:
    """A full sweep plus the fitted idealized curves.

    Attributes
    ----------
    samples:
        Measured points in increasing distance order.
    hyperbola:
        The Figure 4 idealized curve ``V = a/(d+b)+c``.
    power_law:
        The Figure 5 log-log straight line ``V = k*d**p``.
    surface_name, ambient_name:
        The conditions under which the sweep ran.
    """

    samples: tuple[CalibrationSample, ...]
    hyperbola: HyperbolicFit
    power_law: PowerLawFit
    surface_name: str
    ambient_name: str

    @property
    def distances(self) -> np.ndarray:
        """Sample distances in cm."""
        return np.array([s.distance_cm for s in self.samples])

    @property
    def voltages(self) -> np.ndarray:
        """Mean measured voltages in volts."""
        return np.array([s.mean_voltage for s in self.samples])

    def max_abs_residual(self) -> float:
        """Largest |measured - fitted| over the sweep, in volts."""
        predicted = self.hyperbola.voltage(self.distances)
        return float(np.max(np.abs(self.voltages - predicted)))


def calibrate(
    sensor: GP2D120,
    distances_cm: np.ndarray | None = None,
    readings_per_point: int = 16,
    settle_time_s: float = 0.5,
    vectorized: bool = True,
) -> CalibrationResult:
    """Run the Figure 4/5 sweep on one sensor specimen.

    Parameters
    ----------
    sensor:
        The specimen to characterize; its surface/ambient attributes define
        the measurement conditions.
    distances_cm:
        Grid of true distances.  Defaults to 1 cm steps over the monotone
        4–30 cm range, matching the density of the paper's plot.
    readings_per_point:
        ADC readings averaged per grid point (each lands in a different
        sensor measurement cycle, so each carries independent noise).
    settle_time_s:
        Simulated dwell before sampling starts at each point.
    vectorized:
        Use the batched sensing fast path (``output_voltage_array``).
        Byte-identical to the sample-at-a-time loop — the committed FIG4/
        FIG5 goldens pin this — just several times faster; ``False`` keeps
        the scalar reference path for the perf benchmarks and the
        equivalence property tests.

    Returns
    -------
    CalibrationResult
        Samples plus both fitted curves.
    """
    if distances_cm is None:
        distances_cm = np.arange(SENSOR_MIN_CM, SENSOR_MAX_CM + 0.5, 1.0)
    distances = np.sort(np.asarray(distances_cm, dtype=float))
    if np.any(distances < SENSOR_MIN_CM - 1e-9):
        raise ValueError("calibration sweep must stay on the monotone branch")

    from repro.obs.recorder import active_recorder

    obs = active_recorder()
    samples = []
    clock = 0.0
    cycle = sensor.params.cycle_time_s
    if vectorized:
        # Build the exact clock sequence of the scalar loop (same float
        # additions in the same order), then push every reading through
        # the sensor in one batched call per grid point.
        for distance in distances:
            clock += settle_time_s
            dwell_from = clock
            times = np.empty(readings_per_point)
            for i in range(readings_per_point):
                clock += cycle * 1.05  # ensure a fresh measurement cycle
                times[i] = clock
            readings = sensor.output_voltage_array(times, float(distance))
            samples.append(_summarize(distance, readings, readings_per_point))
            if obs.enabled:
                _observe_point(obs, dwell_from, clock, distance,
                               readings_per_point)
    else:
        for distance in distances:
            clock += settle_time_s
            dwell_from = clock
            readings = np.empty(readings_per_point)
            for i in range(readings_per_point):
                clock += cycle * 1.05  # ensure a fresh measurement cycle
                readings[i] = sensor.output_voltage(clock, float(distance))
            samples.append(_summarize(distance, readings, readings_per_point))
            if obs.enabled:
                _observe_point(obs, dwell_from, clock, distance,
                               readings_per_point)

    voltages = np.array([s.mean_voltage for s in samples])
    return CalibrationResult(
        samples=tuple(samples),
        hyperbola=fit_hyperbola(distances, voltages),
        power_law=fit_power_law(distances, voltages),
        surface_name=sensor.surface.name,
        ambient_name=sensor.ambient.name,
    )


def _observe_point(
    obs, start, end, distance, readings_per_point
) -> None:
    """Span + histogram bookkeeping for one calibration grid point.

    ``start``/``end`` come from the sweep's manual sim clock (the same
    float sequence on the vectorized and scalar paths), so an observed
    FIG4 run produces identical spans regardless of path or job count.
    """
    obs.emit_span(
        "calibration.point",
        start,
        end,
        {"distance_cm": float(distance), "readings": readings_per_point},
    )
    obs.counter("calibration.points")
    obs.observe(
        "calibration.point.dwell_s", end - start, low=1e-3, high=1e2
    )


def _summarize(
    distance: float, readings: np.ndarray, readings_per_point: int
) -> CalibrationSample:
    """One grid point's statistics (shared by both calibrate paths)."""
    return CalibrationSample(
        distance_cm=float(distance),
        mean_voltage=float(readings.mean()),
        std_voltage=(
            float(readings.std(ddof=1)) if readings_per_point > 1 else 0.0
        ),
        n_readings=readings_per_point,
    )


def sweep_environments(
    rng: np.random.Generator,
    surfaces: dict[str, Surface],
    ambients: dict[str, AmbientLight],
    readings_per_point: int = 16,
) -> dict[tuple[str, str], CalibrationResult]:
    """Re-run the calibration across surface x light combinations (§4.2).

    Uses a single sensor specimen (drawn from ``rng``) so any curve
    differences come from the environment, exactly as in the paper's
    verification.  Returns a mapping keyed by (surface key, ambient key).
    """
    specimen_params = GP2D120.specimen(rng).params
    results: dict[tuple[str, str], CalibrationResult] = {}
    for surface_key, surface in surfaces.items():
        for ambient_key, ambient in ambients.items():
            sensor = GP2D120(
                params=specimen_params,
                rng=np.random.default_rng(rng.integers(2**32)),
                surface=surface,
                ambient=ambient,
            )
            results[(surface_key, ambient_key)] = calibrate(
                sensor, readings_per_point=readings_per_point
            )
    return results

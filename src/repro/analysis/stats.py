"""Small statistics toolkit for the experiment harness.

Bootstrap confidence intervals and summary rows — enough to print the
paper-style result tables without dragging in a stats framework — plus
the **streaming aggregation layer** the population-scale user studies
run on: online mean/variance, a mergeable fixed-bin quantile sketch and
string-keyed cell counters, each holding O(1) state per metric no
matter how many observations flow through.

Determinism contract (shared with :mod:`repro.obs.metrics`): every
aggregate's ``merge()`` is **exactly** associative and commutative with
the freshly-constructed instance as identity.  Sums are carried as
:class:`fractions.Fraction` — floats are dyadic rationals, so rational
accumulation is exact and the merged result is byte-identical for any
partition of the input across shards.  That is what keeps
``repro run STUDY1 --users N --jobs 1`` equal to ``--jobs N`` to the
byte.  The hypothesis property suite in
``tests/test_streaming_stats.py`` exercises exactly these laws.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Optional

import numpy as np

__all__ = [
    "Summary",
    "summarize",
    "bootstrap_ci",
    "linear_regression",
    "StreamingMoments",
    "QuantileSketch",
    "CellCounter",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one measured series."""

    n: int
    mean: float
    std: float
    median: float
    ci_low: float
    ci_high: float

    def row(self, label: str, unit: str = "") -> str:
        """Format as a fixed-width results-table row."""
        return (
            f"{label:<28} n={self.n:<4d} mean={self.mean:8.3f}{unit} "
            f"sd={self.std:7.3f} median={self.median:8.3f} "
            f"95%CI=[{self.ci_low:.3f}, {self.ci_high:.3f}]"
        )


def bootstrap_ci(
    values: np.ndarray,
    rng: np.random.Generator,
    n_boot: int = 2000,
    level: float = 0.95,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if np.isnan(values).any():
        raise ValueError("cannot bootstrap a sample containing NaN")
    if values.size == 1:
        return float(values[0]), float(values[0])
    means = np.empty(n_boot)
    n = values.size
    for i in range(n_boot):
        means[i] = values[rng.integers(0, n, size=n)].mean()
    alpha = (1.0 - level) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: np.ndarray, rng: np.random.Generator | None = None
) -> Summary:
    """Summary statistics with a bootstrap CI (seeded rng optional)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if np.isnan(values).any():
        raise ValueError("cannot summarize a sample containing NaN")
    if rng is None:
        rng = np.random.default_rng(0)
    low, high = bootstrap_ci(values, rng)
    return Summary(
        n=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        median=float(np.median(values)),
        ci_low=low,
        ci_high=high,
    )


def linear_regression(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Ordinary least squares ``y = intercept + slope*x``; returns
    ``(intercept, slope, r2)``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    design = np.column_stack([np.ones_like(x), x])
    coeffs, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ coeffs
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(coeffs[0]), float(coeffs[1]), r2


# ---------------------------------------------------------------------------
# streaming aggregates (population-scale studies)
# ---------------------------------------------------------------------------


def _reject_nan(owner: str, value: float) -> float:
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{owner}: NaN observation")
    return value


class StreamingMoments:
    """Online mean/variance with O(1) state and an exactly mergeable sum.

    The classic Welford recurrence updates ``(n, mean, M2)`` in floats,
    but float Welford merges are only *approximately* associative —
    shard order would leak into the merged bytes.  This implementation
    keeps the same one-pass streaming interface while carrying ``Σx``
    and ``Σx²`` exactly, so :meth:`merge` is exactly associative and
    commutative and the reported mean/variance are the correctly-rounded
    true values.

    Exact sums are stored in adaptive fixed point: every finite double
    is ``n / 2**k``, so ``Σx`` is an integer at scale ``2**shift`` where
    ``shift`` is the largest ``k`` seen (rescaling the running integer
    when a finer value arrives).  Same arithmetic as Fraction sums, but
    ~100x cheaper per fold: ordinary data keeps the integers near
    double-mantissa size and skips Fraction's per-operation gcd.  The
    internal shift never leaks — :meth:`snapshot` normalizes through
    :class:`fractions.Fraction`, so equal aggregates serialize to equal
    bytes regardless of fold order.
    """

    __slots__ = (
        "count",
        "_sum_fp",
        "_shift",
        "_sumsq_fp",
        "_sq_shift",
        "min",
        "max",
    )

    def __init__(self) -> None:
        self.count = 0
        self._sum_fp = 0
        self._shift = 0
        self._sumsq_fp = 0
        self._sq_shift = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        value = _reject_nan("StreamingMoments", value)
        numerator, denominator = value.as_integer_ratio()
        scale = denominator.bit_length() - 1
        self.count += 1
        if scale > self._shift:
            self._sum_fp <<= scale - self._shift
            self._shift = scale
        self._sum_fp += numerator << (self._shift - scale)
        sq_scale = 2 * scale
        if sq_scale > self._sq_shift:
            self._sumsq_fp <<= sq_scale - self._sq_shift
            self._sq_shift = sq_scale
        self._sumsq_fp += (numerator * numerator) << (
            self._sq_shift - sq_scale
        )
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def _sum(self) -> Fraction:
        """Exact ``Σx`` as a normalized rational."""
        return Fraction(self._sum_fp, 1 << self._shift)

    @property
    def _sumsq(self) -> Fraction:
        """Exact ``Σx²`` as a normalized rational."""
        return Fraction(self._sumsq_fp, 1 << self._sq_shift)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combined moments of both inputs (neither operand mutated)."""
        merged = StreamingMoments()
        merged.count = self.count + other.count
        merged._shift = max(self._shift, other._shift)
        merged._sum_fp = (
            self._sum_fp << (merged._shift - self._shift)
        ) + (other._sum_fp << (merged._shift - other._shift))
        merged._sq_shift = max(self._sq_shift, other._sq_shift)
        merged._sumsq_fp = (
            self._sumsq_fp << (merged._sq_shift - self._sq_shift)
        ) + (other._sumsq_fp << (merged._sq_shift - other._sq_shift))
        mins = [m for m in (self.min, other.min) if m is not None]
        maxes = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxes) if maxes else None
        return merged

    @property
    def mean(self) -> Optional[float]:
        """Correctly rounded mean (``None`` when empty)."""
        if self.count == 0:
            return None
        return float(self._sum / self.count)

    @property
    def variance(self) -> Optional[float]:
        """Sample variance (``ddof=1``); ``None`` below two samples."""
        if self.count < 2:
            return None
        exact = (self._sumsq - self._sum * self._sum / self.count) / (
            self.count - 1
        )
        # Exact rational arithmetic cannot go negative, but be explicit.
        return float(max(exact, Fraction(0)))

    @property
    def std(self) -> Optional[float]:
        """Sample standard deviation (``ddof=1``)."""
        variance = self.variance
        return None if variance is None else math.sqrt(variance)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state; exact sums as integer pairs."""
        return {
            "type": "moments",
            "count": self.count,
            "sum": [self._sum.numerator, self._sum.denominator],
            "sumsq": [self._sumsq.numerator, self._sumsq.denominator],
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, payload: dict[str, Any]) -> "StreamingMoments":
        """Inverse of :meth:`snapshot`."""
        moments = cls()
        moments.count = int(payload["count"])
        total = Fraction(*payload["sum"])
        sumsq = Fraction(*payload["sumsq"])
        for denominator in (total.denominator, sumsq.denominator):
            if denominator & (denominator - 1):
                raise ValueError(
                    f"snapshot sum denominator {denominator} is not a "
                    "power of two"
                )
        moments._sum_fp = total.numerator
        moments._shift = total.denominator.bit_length() - 1
        moments._sumsq_fp = sumsq.numerator
        moments._sq_shift = sumsq.denominator.bit_length() - 1
        moments.min = payload["min"]
        moments.max = payload["max"]
        return moments


class QuantileSketch:
    """Mergeable fixed-bin quantile sketch for positive metrics.

    Uses the same log-spaced bin layout as
    :class:`repro.obs.metrics.Histogram` — ``(low, high,
    bins_per_decade)`` fully determine the edges, so two sketches that
    never exchanged data merge by elementwise addition, which is
    exactly associative and commutative.  Quantile estimates return the
    geometric midpoint of the bin holding the requested rank, clamped
    to the exact observed ``[min, max]``: for data inside ``[low,
    high)`` the estimate is within one bin of the true empirical
    quantile, i.e. within a multiplicative factor of
    ``10**(1/bins_per_decade)``.
    """

    __slots__ = (
        "low",
        "high",
        "bins_per_decade",
        "_edges",
        "counts",
        "count",
        "min",
        "max",
    )

    def __init__(
        self,
        low: float = 1e-3,
        high: float = 1e3,
        bins_per_decade: int = 16,
    ) -> None:
        if not (0.0 < low < high):
            raise ValueError(f"need 0 < low < high, got {low}..{high}")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.bins_per_decade = int(bins_per_decade)
        decades = math.log10(self.high / self.low)
        n = max(1, round(decades * self.bins_per_decade))
        self._edges = [
            self.low * 10.0 ** (i / self.bins_per_decade)
            for i in range(n + 1)
        ]
        # counts[0] is underflow, counts[-1] is overflow.
        self.counts = [0] * (len(self._edges) + 1)
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def spec(self) -> tuple[float, float, int]:
        """The bin layout key two sketches must share to merge."""
        return (self.low, self.high, self.bins_per_decade)

    def add(self, value: float) -> None:
        """Record one observation."""
        value = _reject_nan("QuantileSketch", value)
        self.counts[bisect.bisect_right(self._edges, value)] += 1
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combined sketch (bin specs must match; operands unchanged)."""
        if self.spec() != other.spec():
            raise ValueError(
                f"incompatible sketch specs {self.spec()} vs {other.spec()}"
            )
        merged = QuantileSketch(self.low, self.high, self.bins_per_decade)
        merged.counts = [x + y for x, y in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        mins = [m for m in (self.min, other.min) if m is not None]
        maxes = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxes) if maxes else None
        return merged

    def quantile(self, q: float) -> Optional[float]:
        """Estimate of the empirical ``q``-quantile (``None`` if empty).

        Walks the cumulative bin counts to the bin holding rank
        ``ceil(q * count)`` and returns its geometric midpoint clamped
        to the exact ``[min, max]``; underflow and overflow ranks
        return the exact ``min`` / ``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bin_count in enumerate(self.counts):
            cumulative += bin_count
            if cumulative >= rank:
                if index == 0:
                    return self.min
                if index == len(self.counts) - 1:
                    return self.max
                midpoint = math.sqrt(
                    self._edges[index - 1] * self._edges[index]
                )
                return min(max(midpoint, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    @property
    def median(self) -> Optional[float]:
        """Shorthand for ``quantile(0.5)``."""
        return self.quantile(0.5)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state for serialization and byte-comparison."""
        return {
            "type": "quantile_sketch",
            "low": self.low,
            "high": self.high,
            "bins_per_decade": self.bins_per_decade,
            "counts": list(self.counts),
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, payload: dict[str, Any]) -> "QuantileSketch":
        """Inverse of :meth:`snapshot`."""
        sketch = cls(
            payload["low"], payload["high"], payload["bins_per_decade"]
        )
        sketch.counts = list(payload["counts"])
        sketch.count = int(payload["count"])
        sketch.min = payload["min"]
        sketch.max = payload["max"]
        return sketch


class CellCounter:
    """String-keyed integer counters with additive merge.

    Backs the per-persona-cell tallies of the population studies: keys
    are persona cell labels (``"senior/left/arctic/tremor/low-vision"``)
    and values only ever increase.  Snapshots sort keys so serialized
    merged counters are byte-identical regardless of arrival order.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def add(self, key: str, n: int = 1) -> None:
        """Add ``n`` (positive) to ``key``."""
        if n <= 0:
            raise ValueError(f"cell increment must be positive, got {n}")
        self._counts[key] = self._counts.get(key, 0) + n

    def get(self, key: str) -> int:
        """Current count for ``key`` (0 when never seen)."""
        return self._counts.get(key, 0)

    def total(self) -> int:
        """Sum over all cells."""
        return sum(self._counts.values())

    def keys(self) -> list[str]:
        """Sorted cell keys."""
        return sorted(self._counts)

    def merge(self, other: "CellCounter") -> "CellCounter":
        """Elementwise-added counters (operands unchanged)."""
        merged = CellCounter()
        for source in (self, other):
            for key, value in source._counts.items():
                merged._counts[key] = merged._counts.get(key, 0) + value
        return merged

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state, keys sorted for stable bytes."""
        return {
            "type": "cells",
            "counts": {key: self._counts[key] for key in sorted(self._counts)},
        }

    @classmethod
    def from_snapshot(cls, payload: dict[str, Any]) -> "CellCounter":
        """Inverse of :meth:`snapshot`."""
        counter = cls()
        counter._counts = dict(payload["counts"])
        return counter

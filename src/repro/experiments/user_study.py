"""STUDY1 — the initial user study of Section 6, quantified.

The paper's protocol: "We presented our new interaction technique to
several people, students, colleagues and people without direct technical
background.  We handed them the DistScroll device and observed their
interactions.  Even when no hints were given, the manner of operation was
promptly discovered.  Shortly after knowing the relation between menu
entry selection and distance, all users were able to nearly errorless
use the device."

The reproduction runs N simulated participants through the same arc:
an unguided discovery phase on the fictive phone menu, then blocks of
selection trials.  Reported per block: error rate (wrong activations per
trial), mean selection time, and the fraction of error-free users — the
paper's qualitative claims map to (a) discovery within tens of seconds
without hints and (b) block-2+ error rates near zero.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_user_study", "STUDY_MENU_LABELS"]

#: Top level of the fictive phone menu used in the study (flat for the
#: selection blocks; the hierarchical tasks live in the examples).
STUDY_MENU_LABELS = [
    "Messages",
    "Call register",
    "Contacts",
    "Settings",
    "Gallery",
    "Organiser",
    "Games",
    "Extras",
    "Services",
    "Profiles",
]


def run_user_study(
    seed: int = 0,
    n_users: int = 12,
    n_blocks: int = 4,
    trials_per_block: int = 8,
    config: DeviceConfig | None = None,
) -> ExperimentResult:
    """Run the full initial-study protocol over simulated participants."""
    result = ExperimentResult(
        experiment_id="STUDY1",
        title="Initial user study: discovery and learning blocks",
        columns=(
            "block",
            "error_rate",
            "errorless_users_frac",
            "mean_trial_s",
            "mean_submovements",
        ),
    )
    master = np.random.default_rng(seed)
    discoveries = []
    block_errors = np.zeros((n_users, n_blocks))
    block_times = np.zeros((n_users, n_blocks))
    block_subs = np.zeros((n_users, n_blocks))

    for u in range(n_users):
        user_seed = int(master.integers(2**31))
        rng = np.random.default_rng(user_seed)
        device = DistScroll(
            build_menu(STUDY_MENU_LABELS), config=config, seed=user_seed
        )
        user = SimulatedUser(device=device, rng=rng)
        device.run_for(0.5)

        discovery = user.discover()
        discoveries.append(discovery)

        for block in range(n_blocks):
            targets = random_targets(
                len(STUDY_MENU_LABELS), trials_per_block, rng, min_separation=2
            )
            errors = 0
            times = []
            subs = []
            for target in targets:
                trial = user.select_entry(target)
                errors += trial.wrong_activations
                times.append(trial.duration_s)
                subs.append(trial.submovements)
                while device.depth > 0:
                    device.click("back")
            block_errors[u, block] = errors / trials_per_block
            block_times[u, block] = float(np.mean(times))
            block_subs[u, block] = float(np.mean(subs))

    for block in range(n_blocks):
        result.add_row(
            block + 1,
            float(block_errors[:, block].mean()),
            float((block_errors[:, block] == 0).mean()),
            float(block_times[:, block].mean()),
            float(block_subs[:, block].mean()),
        )

    discovered = [d for d in discoveries if d.discovered]
    result.note(
        f"discovery without hints: {len(discovered)}/{n_users} users, "
        f"median {np.median([d.time_to_discovery_s for d in discovered]):.1f} s, "
        f"median {np.median([d.exploratory_movements for d in discovered]):.0f} "
        "exploratory movements — 'promptly discovered'"
    )
    late_error = float(block_errors[:, 1:].mean())
    result.note(
        f"mean error rate after block 1: {late_error:.3f} wrong activations/"
        "trial — 'nearly errorless' once the relation is known"
    )
    return result

"""Barton BT96040 chip-on-glass display model.

The DistScroll carries two of these 96x40-pixel displays on the I2C bus
(Section 4.4): "we include two displays with a resolution of 40x96 pixels
each (5 lines in text mode)".  The top display shows the menu, the bottom
one state/debug information; contrast is adjusted with a potentiometer.

The model implements:

* a monochrome framebuffer (96 columns x 40 rows);
* a 5-line x 16-column text mode with a built-in 5x7 font metric
  (glyph rendering is abstracted to per-cell characters — the *content*
  is what the simulated user perceives);
* an I2C register protocol (command byte + payload) so updates cost real
  bus time;
* a contrast input in [0, 1] driven by the potentiometer, with a
  readability predicate used by the simulated user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["DisplayGeometry", "BT96040", "TEXT_LINES", "TEXT_COLUMNS"]

#: Text mode dimensions quoted in the paper ("5 lines in text mode").
TEXT_LINES = 5
TEXT_COLUMNS = 16

#: I2C command bytes of the (simplified) BT96040 protocol.
_CMD_CLEAR = 0x01
_CMD_SET_LINE = 0x02
_CMD_SET_PIXELS = 0x03
_CMD_SET_CONTRAST = 0x04


@dataclass(frozen=True)
class DisplayGeometry:
    """Pixel geometry of the panel."""

    width_px: int = 96
    height_px: int = 40

    @property
    def pixel_count(self) -> int:
        """Total number of pixels."""
        return self.width_px * self.height_px


class BT96040:
    """One chip-on-glass display attached to the I2C bus.

    The display keeps both a pixel framebuffer and the text-mode line
    contents; the simulated user reads the text lines, experiments can
    assert on either.

    Parameters
    ----------
    name:
        Label ("top"/"bottom") used in traces.
    geometry:
        Panel dimensions (defaults to the BT96040's 96x40).
    """

    def __init__(self, name: str, geometry: Optional[DisplayGeometry] = None) -> None:
        self.name = name
        self.geometry = geometry or DisplayGeometry()
        self.framebuffer = np.zeros(
            (self.geometry.height_px, self.geometry.width_px), dtype=bool
        )
        self.lines: list[str] = [""] * TEXT_LINES
        self.contrast = 0.5
        self.updates = 0
        #: Controller power-on resets suffered (fault injection); the
        #: firmware's display watchdog compares this against its last-seen
        #: value and re-renders after a reset.
        self.resets = 0
        #: Optional fault hook ``() -> bool``; ``True`` power-on-resets the
        #: controller and drops the in-flight command (see :mod:`repro.faults`).
        self.fault_hook: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    # direct API (used by firmware through the bus helpers below)
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Blank the framebuffer and all text lines."""
        self.framebuffer[:] = False
        self.lines = [""] * TEXT_LINES
        self.updates += 1

    def set_line(self, index: int, text: str) -> None:
        """Write one text-mode line (truncated to the panel width)."""
        if not 0 <= index < TEXT_LINES:
            raise IndexError(f"line index {index} out of range 0..{TEXT_LINES - 1}")
        self.lines[index] = text[:TEXT_COLUMNS]
        self.updates += 1

    def set_contrast(self, value: float) -> None:
        """Set panel contrast in [0, 1]."""
        self.contrast = float(np.clip(value, 0.0, 1.0))

    def set_pixels(self, row: int, col: int, bits: np.ndarray) -> None:
        """Blit a boolean array into the framebuffer at (row, col)."""
        bits = np.asarray(bits, dtype=bool)
        h, w = bits.shape
        if row < 0 or col < 0 or row + h > self.geometry.height_px or (
            col + w > self.geometry.width_px
        ):
            raise IndexError(
                f"blit {h}x{w} at ({row},{col}) exceeds "
                f"{self.geometry.height_px}x{self.geometry.width_px} panel"
            )
        self.framebuffer[row : row + h, col : col + w] = bits
        self.updates += 1

    def readable(self, min_contrast: float = 0.2, max_contrast: float = 0.95) -> bool:
        """Whether a user can read the panel at the current contrast.

        Washed-out (too low) or inverted-black (too high) contrast makes
        the text illegible — this is what the potentiometer tuning in the
        prototype is for.
        """
        return min_contrast <= self.contrast <= max_contrast

    def visible_text(self) -> list[str]:
        """The text a user perceives: the lines if readable, else blanks."""
        if not self.readable():
            return [""] * TEXT_LINES
        return list(self.lines)

    # ------------------------------------------------------------------
    # I2C protocol
    # ------------------------------------------------------------------
    def power_on_reset(self) -> None:
        """Simulate a controller brown-out/reset: the panel blanks.

        Contrast survives (it is set by the external potentiometer divider)
        but framebuffer and text RAM are lost until the firmware re-renders.
        """
        self.framebuffer[:] = False
        self.lines = [""] * TEXT_LINES
        self.resets += 1
        self.updates += 1

    def i2c_write(self, payload: bytes) -> None:
        """Decode one bus write: ``[command, args...]``."""
        if self.fault_hook is not None and self.fault_hook():
            # The controller reset mid-transaction: state is lost and the
            # in-flight command never lands.
            self.power_on_reset()
            return
        if not payload:
            return
        command, args = payload[0], payload[1:]
        if command == _CMD_CLEAR:
            self.clear()
        elif command == _CMD_SET_LINE:
            if not args:
                raise ValueError("SET_LINE needs a line index")
            self.set_line(args[0], args[1:].decode("latin-1"))
        elif command == _CMD_SET_CONTRAST:
            if not args:
                raise ValueError("SET_CONTRAST needs a value byte")
            self.set_contrast(args[0] / 255.0)
        elif command == _CMD_SET_PIXELS:
            self._decode_pixel_blit(args)
        else:
            raise ValueError(f"unknown display command {command:#x}")

    def i2c_read(self, length: int) -> bytes:
        """Status read: [busy=0, contrast byte, updates lo, updates hi]."""
        status = bytes(
            [0, int(self.contrast * 255), self.updates & 0xFF, (self.updates >> 8) & 0xFF]
        )
        return status[:length].ljust(length, b"\x00")

    def _decode_pixel_blit(self, args: bytes) -> None:
        if len(args) < 4:
            raise ValueError("SET_PIXELS needs row, col, h, w header")
        row, col, h, w = args[0], args[1], args[2], args[3]
        bits_needed = h * w
        packed = args[4:]
        if len(packed) * 8 < bits_needed:
            raise ValueError(
                f"SET_PIXELS payload too short: {len(packed) * 8} bits "
                f"for {bits_needed}"
            )
        unpacked = np.unpackbits(
            np.frombuffer(packed, dtype=np.uint8), count=bits_needed
        )
        self.set_pixels(row, col, unpacked.reshape(h, w).astype(bool))

    # ------------------------------------------------------------------
    # encoding helpers for the firmware side
    # ------------------------------------------------------------------
    @staticmethod
    def encode_clear() -> bytes:
        """Payload for a clear command."""
        return bytes([_CMD_CLEAR])

    @staticmethod
    def encode_line(index: int, text: str) -> bytes:
        """Payload writing one text line."""
        return bytes([_CMD_SET_LINE, index]) + text[:TEXT_COLUMNS].encode("latin-1")

    @staticmethod
    def encode_contrast(value: float) -> bytes:
        """Payload setting contrast in [0, 1]."""
        byte = int(np.clip(value, 0.0, 1.0) * 255)
        return bytes([_CMD_SET_CONTRAST, byte])

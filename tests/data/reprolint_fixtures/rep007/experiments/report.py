"""REP007 fixture: an order-dependent float sum (exactly one finding).

A result-producing module (``experiments/``) summing floats with the
builtin ``sum()`` instead of the exact accumulators.
"""


def mean_latency(samples: list[float]) -> float:
    return sum(samples) / len(samples)

"""MAP-ISL — properties of the island mapping (§4.2).

The paper's claims about the mapping:

* entries are distributed equally over the scrollable distance, giving
  "the perception that the entries are equally spaced";
* islands "do not cover the complete spectrum of possible values";
* "no selection or change happens if the device is held in a distance
  between two of those islands".

For a range of menu sizes the experiment reports the spacing uniformity
(coefficient of variation of inter-entry distances — 0 for the paper's
placement), the code-space coverage, and the *stability* of the selection
when the device is held still at island centers vs. in gaps under real
sensor noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.device import DistScroll
from repro.core.islands import build_island_map
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.hardware.adc import ADC
from repro.sensors.gp2d120 import GP2D120

__all__ = ["run_island_mapping"]


def run_island_mapping(
    seed: int = 0,
    sizes: tuple[int, ...] = (5, 10, 20, 40),
    hold_time_s: float = 4.0,
) -> ExperimentResult:
    """Characterize island maps across menu sizes."""
    result = ExperimentResult(
        experiment_id="MAP-ISL",
        title="Island mapping: spacing, coverage, hold stability",
        columns=(
            "entries",
            "spacing_cv",
            "coverage",
            "min_island_codes",
            "flicker_center_hz",
            "flicker_gap_hz",
        ),
    )
    for n in sizes:
        sensor = GP2D120(rng=None)
        adc = ADC(rng=None)
        island_map = build_island_map(sensor, adc, n)
        spacings = island_map.distance_spacings()
        cv = float(spacings.std() / spacings.mean()) if len(spacings) else 0.0
        min_width = min(isl.width_codes for isl in island_map.islands)

        flicker_center = _hold_flicker(seed, n, at_gap=False, hold=hold_time_s)
        flicker_gap = _hold_flicker(seed, n, at_gap=True, hold=hold_time_s)
        result.add_row(
            n,
            cv,
            island_map.coverage_fraction(),
            min_width,
            flicker_center,
            flicker_gap,
        )
    result.note(
        "spacing_cv = 0: entries perceptually equally spaced over the range"
    )
    result.note(
        "coverage < 1: islands leave gaps; holding in a gap changes nothing"
    )
    return result


def _hold_flicker(seed: int, n_entries: int, at_gap: bool, hold: float) -> float:
    """Selection changes per second while holding the device still."""
    labels = [f"Item {i}" for i in range(n_entries)]
    device = DistScroll(build_menu(labels), seed=seed)
    firmware = device.firmware
    island_map = firmware.island_map
    middle = island_map.n_slots // 2
    if at_gap and island_map.n_slots >= 2:
        # Midpoint between two island centers lies in the gap.
        d1 = island_map.center_distance(middle - 1)
        d2 = island_map.center_distance(middle)
        distance = (d1 + d2) / 2.0
    else:
        distance = island_map.center_distance(middle)
    device.hold_at(distance)
    device.run_for(0.5)
    before = sum(1 for _, e in device.events() if e.kind == "HighlightChanged")
    device.run_for(hold)
    after = sum(1 for _, e in device.events() if e.kind == "HighlightChanged")
    return (after - before) / hold

"""ABL-FW — firmware filtering sweep: flicker vs latency tradeoff."""

from __future__ import annotations

from repro.experiments import run_firmware_ablation


def test_bench_firmware_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_firmware_ablation,
        kwargs={"seed": 1, "hold_time_s": 5.0},
        rounds=1,
        iterations=1,
    )
    report(result)
    flicker = result.column("boundary_flicker_hz")
    latency = result.column("step_latency_ms")
    # Heavier filtering monotonically trades flicker for latency.
    assert flicker[-1] < flicker[0]
    assert latency[-1] > latency[0]
    # Default (median 3, confirm 2) keeps latency well under perception.
    defaults = [r for r in result.rows if r[0] == 3 and r[1] == 2][0]
    assert defaults[3] < 250.0

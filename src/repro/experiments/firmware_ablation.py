"""ABL-FW — firmware filtering ablation: stability vs. responsiveness.

The firmware stacks three defenses between the raw ADC and the menu
highlight: a median filter, the inter-island gaps, and the
confirm-across-sensor-cycles debounce.  Each buys stability and costs
latency.  This ablation sweeps the two tunables and measures both sides
of the trade:

* **boundary flicker** — highlight changes/second holding the device
  exactly on an island boundary.  With the paper's placement gaps there
  *are* no island-island boundaries, so this is measured under the
  FULL_COVERAGE ablation — it shows what the filters must absorb when
  the gap defense is absent;
* **step latency** — time from an instantaneous move onto another island
  center until the highlight lands there.

The shipped defaults (median 3, confirm 2) should sit on the knee:
near-zero flicker at well under 200 ms latency — comfortably below the
user's own perception latency, so the filtering is "free".
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult

__all__ = ["run_firmware_ablation"]


def run_firmware_ablation(
    seed: int = 0,
    n_entries: int = 10,
    grid: tuple[tuple[int, int], ...] = (
        (1, 1),
        (3, 1),
        (1, 2),
        (3, 2),
        (5, 3),
        (9, 4),
    ),
    hold_time_s: float = 5.0,
) -> ExperimentResult:
    """Sweep (smoothing_window, confirm_samples) pairs."""
    result = ExperimentResult(
        experiment_id="ABL-FW",
        title="Firmware filtering: boundary flicker vs step latency",
        columns=(
            "median_window",
            "confirm_samples",
            "boundary_flicker_hz",
            "step_latency_ms",
        ),
    )
    from repro.core.islands import Placement

    for window, confirm in grid:
        flicker_config = DeviceConfig(
            smoothing_window=window,
            confirm_samples=confirm,
            placement=Placement.FULL_COVERAGE,
            island_fill=1.0,
        )
        flicker = _boundary_flicker(seed, n_entries, flicker_config,
                                    hold_time_s)
        latency_config = DeviceConfig(
            smoothing_window=window, confirm_samples=confirm
        )
        latency = _step_latency(seed, n_entries, latency_config)
        result.add_row(window, confirm, flicker, latency * 1000.0)
    result.note(
        "flicker is measured under the no-gaps ablation (the paper's gaps "
        "remove island boundaries outright); the defaults (median 3, "
        "confirm 2) keep latency under the ~200 ms perception latency"
    )
    return result


def _boundary_flicker(
    seed: int, n_entries: int, config: DeviceConfig, hold: float
) -> float:
    labels = [f"Item {i}" for i in range(n_entries)]
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    island_map = device.firmware.island_map
    mid = island_map.n_slots // 2
    # Exactly between two islands' boundary codes: the worst hold point
    # is the edge of an island rather than the gap center.
    upper = island_map.island_for_slot(mid)
    boundary_voltage = (upper.code_low + 0.5) * device.board.adc.params.lsb_volts
    try:
        distance = device.board.distance_sensor.distance_for_voltage(
            boundary_voltage
        )
    except ValueError:
        distance = island_map.center_distance(mid)
    device.hold_at(float(distance))
    device.run_for(0.5)
    before = _changes(device)
    device.run_for(hold)
    return (_changes(device) - before) / hold


def _step_latency(seed: int, n_entries: int, config: DeviceConfig) -> float:
    latencies = []
    labels = [f"Item {i}" for i in range(n_entries)]
    device = DistScroll(build_menu(labels), config=config, seed=seed)
    firmware = device.firmware
    rng = np.random.default_rng(seed)
    current = 2
    device.hold_at(firmware.aim_distance_for_index(current))
    device.run_for(0.8)
    for _ in range(12):
        target = int(rng.integers(0, n_entries))
        if target == current:
            target = (target + 3) % n_entries
        moved_at = device.now
        device.hold_at(firmware.aim_distance_for_index(target))
        device.run_for(1.0)
        for t, event in device.events():
            if (
                event.kind == "HighlightChanged"
                and t >= moved_at
                and event.index == target
            ):
                latencies.append(t - moved_at)
                break
        current = target
    return float(np.mean(latencies)) if latencies else float("nan")


def _changes(device: DistScroll) -> int:
    return sum(1 for _, e in device.events() if e.kind == "HighlightChanged")

"""Tests for the application layer: phone menu, altitude game, stocktaking."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.game import AltitudeGame, GameConfig
from repro.apps.phonemenu import PHONE_MENU_SPEC, PhoneApp, build_phone_menu
from repro.apps.stocktaking import (
    ITEM_CATEGORIES,
    StocktakingSession,
    build_inventory_menu,
)
from repro.core.config import DeviceConfig
from repro.core.menu import flatten_paths
from repro.hardware.board import build_distscroll_board
from repro.interaction.gloves import GLOVES
from repro.interaction.hand import Hand
from repro.sim.kernel import Simulator


class TestPhoneMenu:
    def test_menu_structure(self):
        menu = build_phone_menu()
        assert len(menu.children) == len(PHONE_MENU_SPEC)
        assert menu.child("Messages").child("Inbox").is_leaf
        assert menu.max_depth() >= 3

    def test_all_leaves_reachable(self):
        menu = build_phone_menu()
        paths = flatten_paths(menu)
        assert len(paths) > 25
        assert ("Settings", "Tone settings", "Volume") in paths

    def test_app_records_activations(self):
        app = PhoneApp.create(seed=1)
        device = app.device
        device.hold_at(26.0)
        device.run_for(0.5)
        device.click("select")  # enter Messages
        device.hold_at(26.0)
        device.run_for(0.5)
        device.click("select")  # activate Write message (leaf)
        assert app.activations
        action, path = app.last_activation()
        assert path[0] == "Messages"

    def test_instruction_display(self):
        app = PhoneApp.create(seed=1, config=DeviceConfig(debug_display=False))
        app.show_instruction("Select the ringing tone volume setting")
        status = app.device.visible_status()
        assert status[0] == "TASK:"
        assert "Select the" in status[1]


class TestAltitudeGame:
    def _game(self, seed=4):
        sim = Simulator(seed=seed)
        board = build_distscroll_board(sim, noisy=False)
        game = AltitudeGame(board, rng=np.random.default_rng(seed))
        return sim, board, game

    def test_altitude_tracks_distance(self):
        sim, board, game = self._game()
        board.set_pose(distance_cm=7.0)
        sim.run_until(1.0)
        near_row = game.altitude_row
        board.set_pose(distance_cm=26.0)
        sim.run_until(3.0)
        far_row = game.altitude_row
        assert far_row > near_row  # far = top of range = high fraction

    def test_objects_spawn_and_scroll(self):
        sim, board, game = self._game()
        sim.run_until(10.0)
        assert game.state.ticks > 200
        assert game.state.score != 0 or game.state.collisions > 0 or (
            len(game._objects) > 0
        )

    def test_fire_spawns_bullet(self):
        sim, board, game = self._game()
        sim.run_until(0.5)
        game.fire()
        assert game.state.shots_fired == 1
        assert any(o[2] == "bullet" for o in game._objects)

    def test_speed_buttons(self):
        sim, board, game = self._game()
        game.speed_up()
        game.speed_up()
        assert game.state.speed_level == 3
        game.speed_up()
        assert game.state.speed_level == 3  # clamped
        game.speed_down()
        assert game.state.speed_level == 2

    def test_select_button_fires_via_hardware(self):
        sim, board, game = self._game()
        sim.run_until(0.2)
        board.press_button("select")
        sim.run_until(0.3)
        board.release_button("select")
        sim.run_until(0.4)
        assert game.state.shots_fired >= 1

    def test_game_over_after_three_collisions(self):
        sim, board, game = self._game()
        sim.run_until(1.0)  # let the altitude filter settle
        game.state.collisions = 2
        # Drop an obstacle just ahead of the aircraft so the next tick's
        # advance lands it on the aircraft column.
        step = game.config.base_scroll_cols_s / game.config.tick_hz
        game._objects.append(
            [game.config.aircraft_col + step, game.altitude_row, "obstacle"]
        )
        sim.run_until(sim.now + 0.1)
        assert game.state.game_over
        status = board.display_bottom.lines
        assert "GAME OVER" in status[4]

    def test_framebuffer_shows_aircraft(self):
        sim, board, game = self._game()
        sim.run_until(0.5)
        frame = board.display_top.framebuffer
        assert frame[game.altitude_row, game.config.aircraft_col]

    def test_playable_with_hand_model(self):
        """A waving hand steers the aircraft — the §5.2 scenario."""
        sim, board, game = self._game()
        hand = Hand(sim, lambda d: board.set_pose(distance_cm=d),
                    start_cm=16.0, rng=sim.spawn_rng())
        rows = set()
        for i in range(8):
            hand.move_to(10.0 + 8.0 * math.sin(i * 1.1), 0.4)
            sim.run_until(sim.now + 0.5)
            rows.add(game.altitude_row)
        assert len(rows) >= 3  # the aircraft actually moved around


class TestStocktaking:
    def test_inventory_menu_shape(self):
        menu = build_inventory_menu(max_count=10)
        assert len(menu.children) == len(ITEM_CATEGORIES)
        assert len(menu.children[0].children) == 10

    def test_session_logs_all_items(self):
        session = StocktakingSession(seed=3, n_items=3)
        report = session.run()
        assert report["all_logged"]
        assert report["items_per_minute"] > 3.0
        assert report["total_time_s"] > 0

    def test_gloved_session_still_completes(self):
        session = StocktakingSession(
            seed=3, n_items=2, glove=GLOVES["winter"]
        )
        report = session.run()
        assert report["all_logged"]

    def test_item_records_populated(self):
        session = StocktakingSession(seed=5, n_items=2)
        session.run()
        for item in session.items:
            assert item.logged
            assert item.log_time_s > 0

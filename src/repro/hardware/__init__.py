"""Smart-Its hardware platform simulation (base board + add-on board)."""

from repro.hardware.adc import ADC, ADCParams
from repro.hardware.battery import Battery, BatteryParams
from repro.hardware.board import (
    ADC_CHANNEL_ACCEL_X,
    ADC_CHANNEL_ACCEL_Y,
    ADC_CHANNEL_DISTANCE,
    ADC_CHANNEL_DISTANCE_SPARE,
    I2C_ADDR_DISPLAY_BOTTOM,
    I2C_ADDR_DISPLAY_TOP,
    DistScrollBoard,
    build_distscroll_board,
)
from repro.hardware.buttons import (
    Button,
    ButtonLayout,
    ButtonPosition,
    ButtonSpec,
    DebouncedButton,
    RIGHT_HANDED_LAYOUT,
    SINGLE_LARGE_BUTTON_LAYOUT,
    TWO_BUTTON_SLIDABLE_LAYOUT,
)
from repro.hardware.display import BT96040, DisplayGeometry, TEXT_COLUMNS, TEXT_LINES
from repro.hardware.i2c import I2CBus, I2CDevice, I2CError, TransferResult
from repro.hardware.mcu import MCUParams, MemoryBudgetError, PIC18F452
from repro.hardware.potentiometer import Potentiometer
from repro.hardware.rf import Packet, RFEndpoint, RFLink

__all__ = [
    "ADC",
    "ADCParams",
    "Battery",
    "BatteryParams",
    "ADC_CHANNEL_ACCEL_X",
    "ADC_CHANNEL_ACCEL_Y",
    "ADC_CHANNEL_DISTANCE",
    "ADC_CHANNEL_DISTANCE_SPARE",
    "I2C_ADDR_DISPLAY_BOTTOM",
    "I2C_ADDR_DISPLAY_TOP",
    "DistScrollBoard",
    "build_distscroll_board",
    "Button",
    "ButtonLayout",
    "ButtonPosition",
    "ButtonSpec",
    "DebouncedButton",
    "RIGHT_HANDED_LAYOUT",
    "SINGLE_LARGE_BUTTON_LAYOUT",
    "TWO_BUTTON_SLIDABLE_LAYOUT",
    "BT96040",
    "DisplayGeometry",
    "TEXT_COLUMNS",
    "TEXT_LINES",
    "I2CBus",
    "I2CDevice",
    "I2CError",
    "TransferResult",
    "MCUParams",
    "MemoryBudgetError",
    "PIC18F452",
    "Potentiometer",
    "Packet",
    "RFEndpoint",
    "RFLink",
]

"""Declarative experiment registry.

Each DESIGN.md experiment id maps to an :class:`ExperimentSpec`: the
import path of its ``run_*`` entry point, the keyword arguments the CLI
registry historically passed, and an optional sharding strategy telling
the parallel runner how to split the experiment into independent work
units.  Specs are plain data — picklable, hashable into cache keys, and
resolvable inside worker processes without shipping closures around.

Sharding strategies
-------------------
``whole``
    The experiment is one indivisible work unit (default).
``param``
    One sweep parameter (``shard_param``, a tuple such as fault
    ``intensities`` or island-map ``sizes``) is split into singleton
    sweeps, one shard per value.  Valid only when the experiment's loop
    body is RNG-independent across values — each iteration builds its
    hardware and RNG streams fresh from the experiment seed.
``users``
    One shard per simulated participant.  The spec names a per-user
    entry point and an aggregate function; per-user seeds come from
    ``seeds_entry`` (legacy master-stream draws) or, when absent, from
    ``SeedSequence`` spawning via
    :func:`repro.runner.sharding.spawn_shard_seeds`.
``userblocks``
    Fixed-size blocks of participants (``users_per_shard`` each), for
    population-scale studies: a million users is ~250 shards, not a
    million.  The block entry receives ``(seed, start, count)`` and
    returns a streaming aggregate; per-user state derives from
    ``(seed, user_index)`` alone, so the shard layout — and therefore
    ``--jobs`` — cannot affect the merged bytes.
``devicebatch``
    ``userblocks``-shaped blocks of *device* indices for fleet
    experiments: each block steps one structure-of-arrays
    :class:`repro.core.batch.DeviceBatch` under a single kernel batch
    task, and per-device RNG streams derive from ``(seed,
    device_index)`` spawn keys — so ``--jobs 1 == --jobs N``
    byte-identically, block layout included.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.experiments.harness import ExperimentResult

__all__ = [
    "ExperimentSpec",
    "REGISTRY",
    "build_runner",
    "resolve_entry",
    "scaled_user_study_spec",
    "arena_spec",
]


def resolve_entry(entry: str) -> Callable:
    """Import ``"package.module:function"`` and return the function."""
    module_name, _, attr = entry.partition(":")
    if not attr:
        raise ValueError(f"entry {entry!r} is not of the form 'module:function'")
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment id's entry point, parameters and sharding plan."""

    experiment_id: str
    entry: str
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Index into the entry's return value when it returns a tuple
    #: (e.g. ``run_fig4`` returns ``(result, calibration)``).
    result_index: int | None = None
    sharder: str = "whole"
    #: For ``param`` sharding: the swept keyword and its full value tuple.
    shard_param: str | None = None
    shard_values: Tuple[Any, ...] | None = None
    #: For ``users`` sharding.
    n_users_param: str = "n_users"
    user_entry: str | None = None
    aggregate_entry: str | None = None
    #: Params (by name) forwarded to the aggregate function.
    aggregate_params: Tuple[str, ...] = ()
    #: Optional ``(seed, n) -> list[int]`` deriving per-user seeds; when
    #: ``None`` the runner uses SeedSequence spawning.
    seeds_entry: str | None = None
    #: For ``userblocks`` sharding: participants per block.
    users_per_shard: int = 4096
    #: Relative per-shard cost weight for the scheduler's LPT ordering
    #: (block sharders additionally scale by block size).  Pure
    #: scheduling advice: it never enters cache keys or results.
    cost_hint: float = 1.0

    def kwargs(self) -> dict:
        """The entry-point keyword arguments as a fresh dict."""
        return dict(self.params)

    def run_whole(self, seed: int) -> ExperimentResult:
        """Run the full experiment in-process (the legacy serial path)."""
        outcome = resolve_entry(self.entry)(seed=seed, **self.kwargs())
        if self.result_index is not None:
            outcome = outcome[self.result_index]
        return outcome

    def cache_token(self) -> str:
        """Canonical description of everything that determines the rows."""
        return repr(
            (
                self.experiment_id,
                self.entry,
                tuple(sorted(self.params)),
                self.result_index,
                self.sharder,
                self.shard_param,
                self.shard_values,
                self.user_entry,
                self.seeds_entry,
            )
        )


def _spec(*args, **kwargs) -> Tuple[str, ExperimentSpec]:
    spec = ExperimentSpec(*args, **kwargs)
    return spec.experiment_id, spec


#: Registry: experiment id -> declarative spec.  Parameter values mirror
#: the zero-config runners the CLI has always exposed.
REGISTRY: Dict[str, ExperimentSpec] = dict(
    (
        _spec("FIG4", "repro.experiments.fig4:run_fig4", result_index=0),
        _spec("FIG5", "repro.experiments.fig5:run_fig5"),
        _spec(
            "SENS-ENV",
            "repro.experiments.sensor_env:run_sensor_env",
            params=(("readings_per_point", 8),),
        ),
        _spec("SENS-FOLD", "repro.experiments.foldback:run_foldback"),
        _spec(
            "MAP-ISL",
            "repro.experiments.island_mapping:run_island_mapping",
            sharder="param",
            shard_param="sizes",
            shard_values=(5, 10, 20, 40),
        ),
        _spec(
            "STUDY1",
            "repro.experiments.user_study:run_user_study",
            params=(("n_users", 8), ("n_blocks", 3), ("trials_per_block", 6)),
            sharder="users",
            user_entry="repro.experiments.user_study:run_single_user",
            aggregate_entry="repro.experiments.user_study:aggregate_user_study",
            aggregate_params=("n_blocks",),
            seeds_entry="repro.experiments.user_study:user_study_seeds",
        ),
        _spec(
            "EXT-SPEED",
            "repro.experiments.speed_comparison:run_speed_comparison",
            result_index=0,
        ),
        _spec(
            "EXT-SPEED-PROFILE",
            "repro.experiments.speed_comparison:run_distance_profile",
        ),
        _spec(
            "EXT-RANGE",
            "repro.experiments.range_sweep:run_range_sweep",
            params=(("n_trials", 6), ("n_users", 2)),
        ),
        _spec(
            "EXT-LONG",
            "repro.experiments.long_menus:run_long_menus",
            params=(
                ("menu_lengths", (10, 20, 40)),
                ("n_trials", 5),
                ("n_users", 2),
            ),
        ),
        _spec(
            "EXT-DIR",
            "repro.experiments.direction:run_direction",
            params=(("n_users", 8), ("n_trials", 8)),
        ),
        _spec("EXT-FUSION", "repro.experiments.fusion:run_fusion"),
        _spec(
            "EXT-PDA",
            "repro.experiments.pda:run_pda",
            params=(("n_trials", 6), ("n_users", 2)),
        ),
        _spec(
            "ABL-MAP",
            "repro.experiments.ablation_mapping:run_ablation_mapping",
            params=(("n_trials", 5), ("n_users", 2)),
        ),
        _spec(
            "ABL-GLOVE",
            "repro.experiments.gloves_bench:run_gloves_bench",
            params=(("n_trials", 6),),
        ),
        _spec(
            "ABL-FW",
            "repro.experiments.firmware_ablation:run_firmware_ablation",
        ),
        _spec(
            "ABL-GLOVE-STOCK",
            "repro.experiments.gloves_bench:run_stocktaking_by_glove",
            params=(("n_items", 3),),
        ),
        _spec(
            "ABL-LAYOUT",
            "repro.experiments.layouts:run_layouts",
            params=(("n_users", 5), ("n_trials", 4)),
        ),
        _spec(
            "ABL-CAL",
            "repro.experiments.calibration_ablation:run_calibration_ablation",
            params=(("n_specimens", 3), ("n_trials", 5)),
        ),
        _spec(
            "EXT-POWER",
            "repro.experiments.power:run_power",
            params=(("window_s", 45.0),),
        ),
        _spec(
            "ROB-FAULT",
            "repro.experiments.fault_sweep:run_fault_sweep",
            sharder="param",
            shard_param="intensities",
            shard_values=(0.0, 0.15, 0.35, 0.6, 0.85),
        ),
        _spec(
            "EXT-BREADTH",
            "repro.experiments.breadth:run_breadth",
            params=(("n_tasks", 4), ("n_users", 2)),
        ),
        _spec(
            "FLEET",
            "repro.experiments.fleet:run_fleet",
            params=(
                ("n_devices", 512),
                ("duration_s", 2.0),
                ("personas", "full"),
                ("fault_every", 8),
            ),
            sharder="devicebatch",
            n_users_param="n_devices",
            user_entry="repro.experiments.fleet:run_device_block",
            aggregate_entry="repro.experiments.fleet:finalize_fleet",
            aggregate_params=(
                "n_devices",
                "duration_s",
                "personas",
                "fault_every",
            ),
            users_per_shard=128,
        ),
        _spec(
            "ARENA",
            "repro.experiments.arena:run_arena",
            params=(
                ("n_users", 16),
                ("personas", "full"),
                ("battery", "scrolltest"),
                ("fault_every", 4),
            ),
            sharder="userblocks",
            user_entry="repro.experiments.arena:run_arena_block",
            aggregate_entry="repro.experiments.arena:finalize_arena",
            aggregate_params=(
                "n_users",
                "personas",
                "battery",
                "fault_every",
            ),
            users_per_shard=4,
        ),
    )
)


def scaled_user_study_spec(
    n_users: int,
    personas: str = "full",
    battery: str = "scrolltest",
    users_per_shard: int = 4096,
) -> ExperimentSpec:
    """A dynamic STUDY1 spec for ``repro run STUDY1 --users N``.

    Not in :data:`REGISTRY` (the population size is a CLI decision);
    pass it to :func:`repro.runner.pool.run_experiments` via
    ``overrides``.  The spec is plain frozen data, so workers receive
    it by pickle exactly like registry specs.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    if users_per_shard < 1:
        raise ValueError("users_per_shard must be >= 1")
    return ExperimentSpec(
        experiment_id="STUDY1",
        entry="repro.experiments.user_study:run_scaled_user_study",
        params=(
            ("n_users", n_users),
            ("personas", personas),
            ("battery", battery),
        ),
        sharder="userblocks",
        user_entry="repro.experiments.user_study:run_user_block",
        aggregate_entry="repro.experiments.user_study:finalize_scaled_study",
        aggregate_params=("n_users", "personas", "battery"),
        users_per_shard=users_per_shard,
    )


def arena_spec(
    n_users: int,
    personas: str = "full",
    battery: str = "scrolltest",
    users_per_shard: int = 4,
    fault_every: int = 4,
) -> ExperimentSpec:
    """A dynamic ARENA spec for ``repro run ARENA --users N``.

    Like :func:`scaled_user_study_spec`, this lives outside
    :data:`REGISTRY` (the population size, persona spec and battery are
    CLI decisions) and is passed to the runner via ``overrides``.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    if users_per_shard < 1:
        raise ValueError("users_per_shard must be >= 1")
    return ExperimentSpec(
        experiment_id="ARENA",
        entry="repro.experiments.arena:run_arena",
        params=(
            ("n_users", n_users),
            ("personas", personas),
            ("battery", battery),
            ("fault_every", fault_every),
        ),
        sharder="userblocks",
        user_entry="repro.experiments.arena:run_arena_block",
        aggregate_entry="repro.experiments.arena:finalize_arena",
        aggregate_params=("n_users", "personas", "battery", "fault_every"),
        users_per_shard=users_per_shard,
    )


def build_runner(spec: ExperimentSpec) -> Callable[[int], ExperimentResult]:
    """A ``seed -> ExperimentResult`` closure for one spec.

    Backs the CLI's ``EXPERIMENT_RUNNERS`` compatibility mapping; entry
    points resolve lazily so importing the registry stays cheap.
    """

    def runner(seed: int) -> ExperimentResult:
        return spec.run_whole(seed)

    runner.__name__ = f"run_{spec.experiment_id.lower().replace('-', '_')}"
    return runner

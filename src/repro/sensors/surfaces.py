"""Reflective surfaces and ambient-light conditions seen by the IR sensor.

Section 4.2 of the paper stresses two properties of the Sharp GP2D120 that
our model must reproduce:

* the colour (reflectivity) of the object in front of the sensor "does
  nearly not matter" — the triangulation principle measures the *position*
  of the reflected spot, not its intensity, so ordinary clothing of any
  colour yields the same curve;
* "potentially problematic could be reflective surfaces with clear
  boundaries between the parts of the surface" — specular patches can
  deflect the emitted beam and corrupt individual measurements.

A :class:`Surface` therefore contributes a *small* gain perturbation plus,
for pathological surfaces, a probability of producing a corrupted reading.
:class:`AmbientLight` models sunlight/indoor conditions; the GP2D120
modulates its emitter so ambient light only adds a little noise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Surface", "AmbientLight", "CLOTHING", "AMBIENT_CONDITIONS"]


@dataclass(frozen=True)
class Surface:
    """An object/material in front of the distance sensor.

    Attributes
    ----------
    name:
        Human-readable label ("black fleece", "mirror patchwork", ...).
    reflectivity:
        Diffuse reflectivity in [0, 1].  Affects signal strength, which for
        a triangulating sensor translates into only a tiny gain change and a
        slightly earlier far-range cutoff for very dark materials.
    specularity:
        Fraction of specular (mirror-like) reflection in [0, 1].  High
        specularity with sharp boundaries deflects the beam.
    boundary_density:
        How many reflectivity discontinuities per cm the beam spot crosses;
        combined with specularity this drives the corrupted-reading rate.
    """

    name: str
    reflectivity: float = 0.7
    specularity: float = 0.0
    boundary_density: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflectivity <= 1.0:
            raise ValueError(f"reflectivity must be in [0,1]: {self.reflectivity}")
        if not 0.0 <= self.specularity <= 1.0:
            raise ValueError(f"specularity must be in [0,1]: {self.specularity}")
        if self.boundary_density < 0:
            raise ValueError(
                f"boundary_density must be >= 0: {self.boundary_density}"
            )

    @property
    def gain_factor(self) -> float:
        """Multiplicative voltage gain relative to the reference surface.

        The GP2D120 datasheet shows under ~5 % output difference between
        white paper (90 % reflectivity) and gray paper (18 %); we linearize
        that insensitivity around the 70 %-reflectivity reference.
        """
        return 1.0 + 0.06 * (self.reflectivity - 0.7)

    @property
    def corruption_probability(self) -> float:
        """Per-sample probability of a beam-deflection corrupted reading."""
        raw = self.specularity * min(self.boundary_density, 2.0) * 0.35
        return min(raw, 0.9)

    @property
    def max_range_cm(self) -> float:
        """Farthest distance still measurable on this surface, in cm.

        The datasheet shows even 18 %-reflectance gray paper holds the full
        range; only near-black materials (below 8 %) lose the far end.
        """
        if self.reflectivity >= 0.08:
            return 30.0
        return 30.0 - 10.0 * (0.08 - self.reflectivity) / 0.08


@dataclass(frozen=True)
class AmbientLight:
    """Ambient illumination around the sensor.

    Attributes
    ----------
    name:
        Label ("indoor", "sunlight", ...).
    illuminance_lux:
        Approximate scene illuminance.
    """

    name: str
    illuminance_lux: float = 300.0

    def __post_init__(self) -> None:
        if self.illuminance_lux < 0:
            raise ValueError(
                f"illuminance must be >= 0: {self.illuminance_lux}"
            )

    @property
    def noise_factor(self) -> float:
        """Multiplier on the sensor's base noise floor.

        The modulated emitter suppresses ambient light almost entirely;
        even direct sunlight only roughly doubles the noise.
        """
        return 1.0 + self.illuminance_lux / 100_000.0


#: Clothing surfaces used in the paper's verification "with different
#: clothing as surfaces in front of the sensor".
CLOTHING: dict[str, Surface] = {
    "white_shirt": Surface("white cotton shirt", reflectivity=0.90),
    "gray_fleece": Surface("gray fleece", reflectivity=0.45),
    "black_jacket": Surface("black jacket", reflectivity=0.12),
    "blue_jeans": Surface("blue denim", reflectivity=0.35),
    "red_sweater": Surface("red wool sweater", reflectivity=0.55),
    "lab_coat": Surface("white lab coat", reflectivity=0.85),
    "parka": Surface("insulated parka shell", reflectivity=0.60, specularity=0.15),
    "hi_vis_vest": Surface(
        "high-visibility vest with retroreflective stripes",
        reflectivity=0.80,
        specularity=0.70,
        boundary_density=1.2,
    ),
    "mirror_patchwork": Surface(
        "patchwork of mirror tiles",
        reflectivity=0.95,
        specularity=0.95,
        boundary_density=2.0,
    ),
}

#: Light conditions used for the "verified in different light conditions"
#: sweep of Section 4.2.
AMBIENT_CONDITIONS: dict[str, AmbientLight] = {
    "dark": AmbientLight("dark room", illuminance_lux=5.0),
    "indoor": AmbientLight("indoor office", illuminance_lux=300.0),
    "bright_indoor": AmbientLight("bright lab", illuminance_lux=1500.0),
    "overcast": AmbientLight("outdoor overcast", illuminance_lux=10_000.0),
    "sunlight": AmbientLight("direct sunlight", illuminance_lux=80_000.0),
}

#: The reference surface implied by the datasheet curve.
REFERENCE_SURFACE = Surface("reference (70% diffuse)", reflectivity=0.7)
REFERENCE_LIGHT = AmbientLight("reference indoor", illuminance_lux=300.0)

"""Reproducibility guarantees: same seed → identical results, everywhere.

The README promises "a fixed seed reproduces every number in
EXPERIMENTS.md bit for bit"; these tests hold the library to it at three
levels — device event streams, closed-loop trials, and whole experiment
tables — and exercise every CLI-registered experiment runner end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXPERIMENT_RUNNERS
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments import run_fig4, run_island_mapping
from repro.interaction.user import SimulatedUser


def _device_event_fingerprint(seed: int) -> list:
    device = DistScroll(build_menu([f"I{i}" for i in range(8)]), seed=seed)
    for distance in (25.0, 9.0, 17.0, 6.0):
        device.hold_at(distance)
        device.run_for(0.4)
    device.click("select")
    return [(round(t, 9), e.kind, getattr(e, "index", None))
            for t, e in device.events()]


def _trial_fingerprint(seed: int) -> tuple:
    device = DistScroll(build_menu([f"I{i}" for i in range(8)]), seed=seed)
    user = SimulatedUser(device=device, rng=np.random.default_rng(seed))
    user.practice_trials = 20
    device.run_for(0.5)
    result = user.select_entry(5)
    return (round(result.duration_s, 9), result.submovements,
            result.wrong_activations, result.success)


class TestDeterminism:
    def test_device_event_stream_is_reproducible(self):
        assert _device_event_fingerprint(7) == _device_event_fingerprint(7)

    def test_different_seeds_differ(self):
        assert _device_event_fingerprint(7) != _device_event_fingerprint(8)

    def test_closed_loop_trial_is_reproducible(self):
        assert _trial_fingerprint(3) == _trial_fingerprint(3)

    def test_experiment_table_is_reproducible(self):
        a, _ = run_fig4(seed=5, readings_per_point=4)
        b, _ = run_fig4(seed=5, readings_per_point=4)
        assert a.rows == b.rows

    def test_island_experiment_reproducible(self):
        a = run_island_mapping(seed=2, hold_time_s=1.0)
        b = run_island_mapping(seed=2, hold_time_s=1.0)
        assert a.rows == b.rows


#: Runners cheap enough to execute inside the unit-test suite.
_FAST_RUNNERS = (
    "FIG4",
    "FIG5",
    "SENS-FOLD",
    "MAP-ISL",
    "EXT-FUSION",
)


class TestRunnerRegistry:
    @pytest.mark.parametrize("experiment_id", _FAST_RUNNERS)
    def test_fast_runner_produces_consistent_table(self, experiment_id):
        result = EXPERIMENT_RUNNERS[experiment_id](3)
        assert result.rows, f"{experiment_id} produced no rows"
        arities = {len(row) for row in result.rows}
        assert arities == {len(result.columns)}
        # The table must render without error.
        assert experiment_id.split("-")[0] in result.table()

    def test_registry_covers_design_doc_ids(self):
        """Every DESIGN.md experiment family has a CLI entry."""
        families = {eid.split("/")[0].split("-PROFILE")[0]
                    for eid in EXPERIMENT_RUNNERS}
        for required in ("FIG4", "FIG5", "SENS-ENV", "SENS-FOLD", "MAP-ISL",
                         "STUDY1", "EXT-SPEED", "EXT-RANGE", "EXT-LONG",
                         "EXT-DIR", "EXT-FUSION", "EXT-PDA", "EXT-POWER",
                         "EXT-BREADTH", "ABL-MAP", "ABL-GLOVE", "ABL-FW",
                         "ABL-LAYOUT", "ABL-CAL"):
            assert required in families or required in EXPERIMENT_RUNNERS, (
                f"missing runner for {required}"
            )

    def test_csv_export_for_every_fast_runner(self, tmp_path):
        for experiment_id in _FAST_RUNNERS:
            result = EXPERIMENT_RUNNERS[experiment_id](1)
            path = tmp_path / f"{experiment_id.replace('/', '_')}.csv"
            result.to_csv(path)
            lines = path.read_text().strip().splitlines()
            assert len(lines) == len(result.rows) + 1

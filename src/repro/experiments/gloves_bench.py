"""ABL-GLOVE — §5.2: gloved interaction across techniques.

The first application domain is "using mobile devices when wearing
gloves of any kind for security or protection reasons ... arctic and
alpine environments ... as well as hazardous environments as can often
be found in bio- or chemical laboratories.  In general, gloves reduce
... the tactile sensation of the hand and fingers and make touch and
stylus interfaces harder to use."

The experiment crosses glove types with scrolling techniques on a fixed
selection workload and, separately, runs the stocktaking application
end-to-end per glove.  Expected shape: bare-handed, touch/buttons are
competitive; as the glove thickens their time and error cost explodes
while DistScroll (gross arm movement + one large-ish button) degrades
only mildly — the paper's whole premise.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import ALL_TECHNIQUES
from repro.experiments.harness import ExperimentResult
from repro.interaction.gloves import GLOVES

__all__ = ["run_gloves_bench", "run_stocktaking_by_glove"]


def run_gloves_bench(
    seed: int = 0,
    gloves: tuple[str, ...] = ("none", "latex", "winter", "arctic"),
    techniques: tuple[str, ...] = ("distscroll", "buttons", "touch", "tilt"),
    n_entries: int = 12,
    n_trials: int = 8,
) -> ExperimentResult:
    """Glove x technique selection-time/error matrix."""
    result = ExperimentResult(
        experiment_id="ABL-GLOVE",
        title="Selection under gloves, by technique",
        columns=(
            "glove",
            "technique",
            "mean_s",
            "errors_per_trial",
            "slowdown_vs_bare",
        ),
    )
    master = np.random.default_rng(seed)
    bare_means: dict[str, float] = {}

    for glove_key in gloves:
        glove = GLOVES[glove_key]
        for tech_name in techniques:
            rng = np.random.default_rng(int(master.integers(2**31)))
            technique = ALL_TECHNIQUES[tech_name](rng=rng, glove=glove)
            durations, errors = [], 0
            rng_targets = np.random.default_rng(seed + 17)
            position = 0
            for _ in range(n_trials):
                target = int(rng_targets.integers(0, n_entries))
                if target == position:
                    target = (target + n_entries // 2) % n_entries
                trial = technique.select(position, target, n_entries)
                durations.append(trial.duration_s)
                errors += trial.errors
                position = target
            mean = float(np.mean(durations))
            if glove_key == "none":
                bare_means[tech_name] = mean
            slowdown = mean / bare_means.get(tech_name, mean)
            result.add_row(
                glove_key, tech_name, mean, errors / n_trials, slowdown
            )
    result.note(
        "expected: touch/buttons slowdowns grow steeply with glove "
        "thickness; distscroll (gross arm movement) stays near 1x — the "
        "paper's design premise"
    )
    return result


def run_stocktaking_by_glove(
    seed: int = 0,
    gloves: tuple[str, ...] = ("none", "latex", "chemical", "winter"),
    n_items: int = 4,
) -> ExperimentResult:
    """End-to-end stocktaking throughput per glove type."""
    from repro.apps.stocktaking import StocktakingSession

    result = ExperimentResult(
        experiment_id="ABL-GLOVE/stocktaking",
        title="Stocktaking application throughput by glove",
        columns=(
            "glove",
            "items_per_minute",
            "mean_item_s",
            "wrong_activations",
        ),
    )
    for i, glove_key in enumerate(gloves):
        session = StocktakingSession(
            seed=seed + i, glove=GLOVES[glove_key], n_items=n_items
        )
        report = session.run()
        result.add_row(
            glove_key,
            report["items_per_minute"],
            report["mean_item_time_s"],
            report["wrong_activations"],
        )
    result.note(
        "one-handed logging keeps working through every glove class; only "
        "the button fumbles slow the thickest mittens"
    )
    return result

"""Arm/hand plant: how the holding hand actually moves the device.

The DistScroll is positioned by moving the whole device along the line
between hand and body (Figure 1).  Human point-to-point arm movements are
well described by **minimum-jerk trajectories** (Flash & Hogan 1985):
smooth bell-shaped velocity profiles between rest points.  On top of the
voluntary trajectory rides **physiological tremor** — a small 6–12 Hz
oscillation whose amplitude grows with arm extension and with fatigue, and
which gloves/clothing dampen or (for heavy mittens) amplify.

The :class:`Hand` advances on the shared simulator and writes the current
true distance into the board pose each update, closing the physical loop:
firmware reads what the hand does.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.sim.kernel import PeriodicTask, Simulator

__all__ = ["minimum_jerk", "Hand"]


def minimum_jerk(tau: float) -> float:
    """The minimum-jerk position profile on normalized time [0, 1].

    ``s(τ) = 10τ³ − 15τ⁴ + 6τ⁵`` — zero velocity and acceleration at both
    ends, peak velocity at the midpoint.
    """
    tau = min(max(tau, 0.0), 1.0)
    return tau**3 * (10.0 - 15.0 * tau + 6.0 * tau * tau)


class Hand:
    """The hand holding the device, simulated at a fixed update rate.

    Parameters
    ----------
    sim:
        Shared simulator.
    write_pose:
        Callback receiving the current true distance (cm); normally
        ``lambda d: board.set_pose(distance_cm=d)``.
    start_cm:
        Initial rest distance.
    tremor_rms_cm:
        RMS amplitude of physiological tremor at the hand (≈0.05–0.15 cm
        for a healthy adult holding a light object).
    tremor_hz:
        Center frequency of the tremor band.
    update_hz:
        Pose update rate (well above the firmware and tremor rates).
    rng:
        Noise generator; ``None`` disables tremor and endpoint noise.
    """

    def __init__(
        self,
        sim: Simulator,
        write_pose: Callable[[float], None],
        start_cm: float = 20.0,
        tremor_rms_cm: float = 0.08,
        tremor_hz: float = 9.0,
        update_hz: float = 120.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._sim = sim
        self._write_pose = write_pose
        self._rng = rng
        self.tremor_rms_cm = float(tremor_rms_cm)
        self.tremor_hz = float(tremor_hz)
        self._update_period = 1.0 / float(update_hz)

        self._rest_cm = float(start_cm)
        self._move_from = float(start_cm)
        self._move_to = float(start_cm)
        self._move_start = 0.0
        self._move_duration = 0.0

        self._tremor_state = 0.0
        self._tremor_phase = 0.0
        self.total_path_cm = 0.0
        #: Accumulated biomechanical effort (arbitrary fatigue units):
        #: holding the arm extended costs per-second effort growing with
        #: extension; moving adds effort per cm of travel.  A proxy for
        #: the fatigue question the paper raises about tilt interfaces
        #: and for the §7 range question.
        self.fatigue_units = 0.0
        self._relaxed_cm = 14.0
        self._last_position = float(start_cm)

        self._task = PeriodicTask(
            sim, self._update_period, self._update, phase=0.0
        )
        self._write_pose(self._rest_cm)

    # ------------------------------------------------------------------
    # voluntary movement
    # ------------------------------------------------------------------
    def move_to(self, target_cm: float, duration_s: float) -> None:
        """Begin a minimum-jerk reach to ``target_cm`` over ``duration_s``.

        A new command preempts any movement in flight, starting from the
        current (possibly mid-flight) position — which is how humans chain
        corrective submovements.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        self._move_from = self.position(include_tremor=False)
        self._move_to = float(target_cm)
        self._move_start = self._sim.now
        self._move_duration = float(duration_s)
        self._rest_cm = float(target_cm)

    @property
    def is_moving(self) -> bool:
        """Whether a voluntary reach is still in flight."""
        return self._sim.now < self._move_start + self._move_duration

    @property
    def target_cm(self) -> float:
        """The current voluntary movement endpoint."""
        return self._move_to

    def position(self, include_tremor: bool = True) -> float:
        """True hand distance right now."""
        if self._move_duration <= 0:
            voluntary = self._rest_cm
        else:
            tau = (self._sim.now - self._move_start) / self._move_duration
            s = minimum_jerk(tau)
            voluntary = self._move_from + (self._move_to - self._move_from) * s
        if include_tremor:
            return voluntary + self._tremor_state
        return voluntary

    def stop(self) -> None:
        """Halt the hand updates (end of a session)."""
        self._task.stop()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _update(self) -> None:
        self._advance_tremor()
        position = self.position()
        travel = abs(position - self._last_position)
        self.total_path_cm += travel
        extension = max(position - self._relaxed_cm, 0.0) / self._relaxed_cm
        holding_cost = (0.25 + extension) * self._update_period
        self.fatigue_units += holding_cost + 0.06 * travel
        self._last_position = position
        self._write_pose(max(position, 0.5))

    def _advance_tremor(self) -> None:
        if self._rng is None or self.tremor_rms_cm <= 0.0:
            self._tremor_state = 0.0
            return
        # A noisy oscillator: sinusoid with phase-jittered frequency plus
        # a small broadband component — matches the 6–12 Hz tremor band.
        dt = self._update_period
        self._tremor_phase += (
            2.0 * math.pi * self.tremor_hz * dt * (1.0 + self._rng.normal(0.0, 0.1))
        )
        periodic = math.sin(self._tremor_phase)
        broadband = self._rng.normal(0.0, 0.6)
        self._tremor_state = self.tremor_rms_cm * (
            0.8 * periodic + 0.45 * broadband
        )

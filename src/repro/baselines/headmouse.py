"""Optical head-tilt scrolling (HEAD-MOUSE) through the technique interface.

HeydariGorji et al.'s *HEAD-MOUSE* (PAPERS.md) measures head tilt
optically and drives a cursor from it — a hands-free, first-order
control.  As a scrolling technique it behaves like
:class:`~repro.baselines.tilt.TiltScroller` with two twists the source
paper's fatigue critique makes concrete:

* **Neck fatigue drifts with the session.**  Holding a head tilt is far
  more tiring than a wrist tilt, so the comfortable cruise rate decays
  and the stopping error widens as :attr:`trials_run` grows — the arena
  measures this as within-session slowdown.
* **The tracker can drop out** (``tracker-dropout`` fault surface): the
  optical measurement losing the face mid-approach forces a re-center
  and a restarted approach.  Inside a window the technique degrades
  gracefully, never raising.

Selection is dwell-to-click, so the hands — and whatever gloves are on
them — never touch the device: the one technique in the roster that is
trivially glove-proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty

__all__ = ["HeadMouseScroller"]


@dataclass
class HeadMouseScroller(ScrollingTechnique):
    """First-order head-tilt scrolling with dwell selection.

    Parameters
    ----------
    max_rate_entries_s:
        Cruise scroll velocity at a fresh, comfortable head tilt.
    ramp_time_s:
        Time to tilt the head from neutral to cruise (and back).
    stop_sigma_entries_per_rate:
        Stopping error std per entries/s of approach velocity.
    dwell_click_s:
        Dwell time required to activate the highlighted entry.
    fatigue_trials:
        Trials until neck fatigue saturates.
    fatigue_rate_penalty:
        Fraction of the cruise rate lost at full fatigue.
    fatigue_sigma_penalty:
        Fractional stopping-error increase at full fatigue.
    dropout_p:
        Per-pass chance of a tracker dropout inside a fault window.
    dropout_recovery_s:
        Re-center time after a dropout.
    """

    name: str = "headmouse"
    one_handed: bool = True  # hands-free, in fact
    glove_compatible: bool = True
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="headmouse",
        title="HEAD-MOUSE optical head-tilt control",
        citation=(
            "HeydariGorji, Safavi, Lee, Chou — HEAD-MOUSE: A simple "
            "cursor controller based on optical measurement of head "
            "tilt (PAPERS.md, arXiv 2006.13503)"
        ),
        input_model=(
            "Optical measurement of head tilt (camera tracking the "
            "face); no hand contact at all, selection by dwell."
        ),
        transfer_function=(
            "Rate control: head-tilt angle sets scroll velocity, with "
            "neck fatigue decaying the comfortable rate and widening "
            "the stopping error as the session wears on."
        ),
        control_order="rate",
        fault_surfaces=("tracker-dropout",),
    )
    max_rate_entries_s: float = 6.0
    ramp_time_s: float = 0.35
    stop_sigma_entries_per_rate: float = 0.18
    dwell_click_s: float = 0.50
    fatigue_trials: float = 40.0
    fatigue_rate_penalty: float = 0.35
    fatigue_sigma_penalty: float = 0.60
    dropout_p: float = 0.35
    dropout_recovery_s: float = 0.80

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Tilt the head toward the target, brake, correct, dwell."""
        trial_index = self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        trial.index_of_difficulty = index_of_difficulty(
            max(abs(target_index - start_index), 1e-6) + 1e-9, 1.0
        )
        fatigue = min(1.0, trial_index / self.fatigue_trials)
        cruise = self.max_rate_entries_s * (
            1.0 - fatigue * self.fatigue_rate_penalty
        )
        sigma_scale = 1.0 + fatigue * self.fatigue_sigma_penalty
        dropouts = self.fault_active("tracker-dropout", trial_index)

        duration = self._lognormal(self.t.reaction_s)
        position = float(start_index)
        passes = 0
        while round(position) != target_index:
            passes += 1
            distance = abs(target_index - position)
            rate = min(cruise, max(distance * 1.5, 1.0))
            travel_time = 2 * self.ramp_time_s + distance / rate
            duration += self._lognormal(travel_time, 0.10)
            trial.operations += 1
            if dropouts and self.rng.random() < self.dropout_p:
                # Tracker lost the face mid-approach: re-center and
                # restart the pass from wherever the list stopped.
                duration += self._lognormal(self.dropout_recovery_s, 0.2)
                trial.operations += 1
            sigma = self.stop_sigma_entries_per_rate * rate * sigma_scale
            landing = target_index + self.rng.normal(0.0, sigma)
            position = max(0.0, min(landing, float(n_entries - 1)))
            if round(position) != target_index:
                trial.errors += 1
                duration += self._lognormal(self.t.reaction_s)
            if passes > 20:
                position = float(target_index)  # creep in entry-wise
                duration += self._lognormal(self.t.reaction_s) * distance
        # Dwell-to-click: verify, then hold the highlight still.
        duration += self._lognormal(self.t.verify_dwell_s, 0.2)
        duration += self._lognormal(self.dwell_click_s, 0.08)
        trial.operations += 1
        trial.duration_s = duration
        return trial

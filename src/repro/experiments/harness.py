"""Common experiment-result plumbing.

Every experiment module produces an :class:`ExperimentResult`: an id
(matching the DESIGN.md index), a set of named columns and data rows, and
free-form notes.  Benchmarks print them with :meth:`ExperimentResult.table`
— the "same rows/series the paper reports" — and tests assert on the raw
``rows``.

Results are *mergeable*: the parallel runner (:mod:`repro.runner`) splits
an experiment into independent shards, each producing a partial
``ExperimentResult``, and :meth:`ExperimentResult.merge` reassembles them
in shard order.  :meth:`ExperimentResult.to_json` /
:meth:`ExperimentResult.from_json` give the runner's on-disk cache a
stable round-trip that preserves CSV bytes exactly.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """A tabular experiment outcome.

    Attributes
    ----------
    experiment_id:
        DESIGN.md identifier, e.g. ``"FIG4"``.
    title:
        One-line description of what the table shows.
    columns:
        Column names.
    rows:
        Data rows (same arity as ``columns``).
    notes:
        Free-form findings appended under the table.
    obs:
        Optional observability payload (metrics snapshot + spans, see
        :mod:`repro.obs`) attached when the run was observed.  Never
        part of the CSV bytes; round-trips through :meth:`to_json`.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    obs: dict[str, Any] | None = None

    def add_row(self, *values: Any) -> None:
        """Append one data row (checked against the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        """Append a finding note."""
        self.notes.append(text)

    def column(self, name: str) -> list:
        """Extract one column by name."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.experiment_id}") from None
        return [row[index] for row in self.rows]

    def table(self) -> str:
        """Render a fixed-width text table (what the benches print)."""
        headers = [str(c) for c in self.columns]
        str_rows = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def csv_bytes(self) -> bytes:
        """The exact bytes :meth:`to_csv` writes (header + rows).

        The parallel runner's determinism tests compare these bytes
        between ``--jobs 1`` and ``--jobs N`` runs.
        """
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue().encode("utf-8")

    def to_csv(self, path: str | Path) -> None:
        """Persist the rows as CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.csv_bytes())

    # ------------------------------------------------------------------
    # sharding support (repro.runner)
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["ExperimentResult"]) -> "ExperimentResult":
        """Reassemble shard partials into one result.

        Rows are concatenated in the given (shard) order.  Notes that
        every shard agrees on are kept once — shard-local notes (for
        example a summary computed over a single shard's rows) would be
        misleading on the merged table and are dropped.
        """
        if not parts:
            raise ValueError("cannot merge zero experiment results")
        first = parts[0]
        merged = cls(
            experiment_id=first.experiment_id,
            title=first.title,
            columns=tuple(first.columns),
        )
        for part in parts:
            if part.experiment_id != first.experiment_id:
                raise ValueError(
                    f"cannot merge {part.experiment_id!r} into "
                    f"{first.experiment_id!r}"
                )
            if tuple(part.columns) != tuple(first.columns):
                raise ValueError(
                    f"{part.experiment_id}: shard column layouts differ"
                )
            merged.rows.extend(part.rows)
        for note in first.notes:
            if all(note in part.notes for part in parts):
                merged.notes.append(note)
        return merged

    def normalized(self) -> "ExperimentResult":
        """A copy with every cell coerced to a plain Python scalar.

        NumPy scalars render identically under ``str()`` but do not
        round-trip through JSON; normalizing both the fresh and the
        cached path keeps CSV bytes identical regardless of origin.
        """
        copy = ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            columns=tuple(self.columns),
            notes=list(self.notes),
        )
        copy.rows = [tuple(_pyify(v) for v in row) for row in self.rows]
        copy.obs = self.obs
        return copy

    def to_json(self) -> str:
        """Serialize for the runner's on-disk result cache."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[_pyify(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }
        if self.obs is not None:
            payload["obs"] = self.obs
        return json.dumps(payload, ensure_ascii=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        result = cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            columns=tuple(payload["columns"]),
            notes=list(payload["notes"]),
        )
        result.rows = [tuple(row) for row in payload["rows"]]
        result.obs = payload.get("obs")
        return result


def _pyify(value: Any) -> Any:
    """Coerce NumPy scalars to the equivalent built-in type."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

"""EXT-RANGE — §7 Q2: "Is the scrolling range of 4 to 30 cm appropriate?"

The sweep varies the configured usable range and measures what the range
trades off:

* a **wide** range gives each entry a wide island (easy to hit, low
  error) but forces large arm excursions (slow, fatiguing, and the far
  end approaches the sensor's reliability limit);
* a **narrow** range is quick to traverse but squeezes the islands until
  sensor noise and tremor produce selection errors.

Reported per candidate range: mean selection time, wrong activations,
corrective submovements, and the mean arm excursion per trial — the
quantitative answer the authors planned to collect.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_range_sweep"]

#: Candidate usable ranges (near_cm, far_cm).
DEFAULT_RANGES: tuple[tuple[float, float], ...] = (
    (5.0, 12.0),
    (5.0, 18.0),
    (5.0, 23.0),
    (5.0, 28.0),
    (10.0, 28.0),
    (15.0, 28.0),
)


def run_range_sweep(
    seed: int = 0,
    ranges: tuple[tuple[float, float], ...] = DEFAULT_RANGES,
    n_entries: int = 10,
    n_trials: int = 10,
    n_users: int = 3,
) -> ExperimentResult:
    """Measure speed/error/effort across usable scroll ranges."""
    result = ExperimentResult(
        experiment_id="EXT-RANGE",
        title=f"Usable-range sweep ({n_entries}-entry menu)",
        columns=(
            "range_cm",
            "span_cm",
            "mean_trial_s",
            "wrong_per_trial",
            "submovements",
            "mean_excursion_cm",
            "fatigue_per_trial",
        ),
    )
    master = np.random.default_rng(seed)
    labels = [f"Item {i}" for i in range(n_entries)]

    for near, far in ranges:
        config = DeviceConfig(range_cm=(near, far))
        times, wrongs, subs, excursions, fatigues = [], [], [], [], []
        for _ in range(n_users):
            user_seed = int(master.integers(2**31))
            rng = np.random.default_rng(user_seed)
            device = DistScroll(build_menu(labels), config=config, seed=user_seed)
            user = SimulatedUser(device=device, rng=rng)
            user.practice_trials = 30  # trained users isolate the range effect
            device.run_for(0.5)
            targets = random_targets(n_entries, n_trials, rng, min_separation=2)
            for target in targets:
                path_before = user.hand.total_path_cm
                fatigue_before = user.hand.fatigue_units
                trial = user.select_entry(target)
                times.append(trial.duration_s)
                wrongs.append(trial.wrong_activations)
                subs.append(trial.submovements)
                excursions.append(user.hand.total_path_cm - path_before)
                fatigues.append(user.hand.fatigue_units - fatigue_before)
                while device.depth > 0:
                    device.click("back")
        result.add_row(
            f"{near:.0f}-{far:.0f}",
            far - near,
            float(np.mean(times)),
            float(np.mean(wrongs)),
            float(np.mean(subs)),
            float(np.mean(excursions)),
            float(np.mean(fatigues)),
        )
    result.note(
        "expected: errors rise as the span shrinks (islands compress into "
        "sensor noise); excursion (fatigue proxy) grows with span — the "
        "paper's 4-30 cm prediction sits near the sweet spot"
    )
    return result

"""EXT-FUSION — the spare sensor slot, used (§4 extension).

The board carries two distance-sensor slots but "only one is used in our
experiments so far".  This experiment activates the second one, mounted
recessed by 3 cm, and measures what it buys:

* **range-estimate accuracy** — fused distance error over the whole
  0–28 cm axis, including the region below the primary's 4 cm peak where
  a single sensor is hopeless;
* **fold-back robustness** — the dive-and-park protocol of SENS-FOLD at
  several park depths, single-sensor latch vs dual-sensor fusion.

Expected shape: fusion tracks the true distance within a few mm down to
roughly ``4 cm − baseline`` (where *both* sensors fold), and preserves
the user's selection at every tested park depth, while the single-sensor
latch only survives shallow contact.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.hand import Hand
from repro.sensors.fusion import DualRangeFinder
from repro.sensors.gp2d120 import GP2D120

__all__ = ["run_fusion"]


def run_fusion(
    seed: int = 0,
    baseline_cm: float = 3.0,
    park_depths: tuple[float, ...] = (3.2, 2.4, 1.6),
) -> ExperimentResult:
    """Accuracy sweep plus dive-and-park comparison."""
    result = ExperimentResult(
        experiment_id="EXT-FUSION",
        title=f"Dual-sensor fusion (recess {baseline_cm:.0f} cm)",
        columns=(
            "true_cm",
            "fused_cm",
            "abs_error_cm",
            "in_foldback",
        ),
    )

    rng = np.random.default_rng(seed)
    finder = DualRangeFinder(
        GP2D120.specimen(rng),
        GP2D120.specimen(rng),
        baseline_cm=baseline_cm,
    )
    floor = finder.usable_foldback_floor_cm()
    clock = 0.0
    errors_in_range = []
    for true in np.arange(1.5, 28.0, 1.5):
        clock += 0.5
        readings = []
        for _ in range(8):
            clock += 0.045
            readings.append(finder.fuse(clock, float(true)))
        valid = [r for r in readings if r.valid]
        if not valid:
            result.add_row(float(true), float("nan"), float("nan"), "-")
            continue
        fused = float(np.mean([r.distance_cm for r in valid]))
        error = abs(fused - float(true))
        # reprolint: allow REP007 (sums booleans — an exact integer majority count)
        in_fold = sum(r.in_foldback for r in valid) > len(valid) / 2
        result.add_row(float(true), fused, error, "yes" if in_fold else "no")
        if true > floor + 0.5:
            errors_in_range.append(error)
    result.note(
        f"mean |error| above the fusion floor ({floor:.1f} cm): "
        f"{float(np.mean(errors_in_range)) * 10:.1f} mm — the second sensor "
        "recovers true distance even below the primary's 4 cm peak"
    )

    # Dive-and-park comparison across depths.
    outcomes = []
    for depth in park_depths:
        single = _dive_and_park(seed, depth, dual=False)
        dual = _dive_and_park(seed, depth, dual=True)
        outcomes.append((depth, single, dual))
    summary = "; ".join(
        f"park {depth:.1f} cm: single={'kept' if s else 'LOST'} "
        f"dual={'kept' if d else 'LOST'}"
        for depth, s, d in outcomes
    )
    result.note("selection preserved through fold-back dives — " + summary)
    return result


def _dive_and_park(seed: int, depth_cm: float, dual: bool) -> bool:
    config = DeviceConfig(
        fast_scroll_enabled=False, chunk_size=0, dual_sensor=dual
    )
    device = DistScroll(
        build_menu([f"Item {i}" for i in range(30)]), config=config, seed=seed
    )
    hand = Hand(
        device.sim,
        lambda d: device.board.set_pose(distance_cm=d),
        start_cm=15.0,
        rng=device.sim.spawn_rng(),
    )
    hand.move_to(5.2, 0.8)
    device.run_for(1.2)
    selected_at_crossing = device.highlighted_index
    hand.move_to(depth_cm, 0.35)
    device.run_for(2.0)
    return device.highlighted_index == selected_at_crossing

"""Property-based tests for the island mapping (ISSUE satellite 1).

Three invariants of §4.2's construction, checked across randomly drawn
menu sizes, island fills and scroll ranges:

* the selected slot is monotone in distance (closer → lower slot),
* codes in a dead zone (gap) never select anything — the firmware keeps
  the previous selection,
* every entry is reachable: its center code looks up to its own slot.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.islands import Placement, build_island_map
from repro.hardware.adc import ADC
from repro.sensors.gp2d120 import GP2D120

_SENSOR = GP2D120(rng=None)
_ADC = ADC(rng=None)


@st.composite
def map_configs(draw):
    """A (n_entries, island_fill, range_cm) triple that may build a map."""
    n_entries = draw(st.integers(min_value=1, max_value=24))
    island_fill = draw(
        st.floats(min_value=0.2, max_value=1.0, allow_nan=False)
    )
    near = draw(st.floats(min_value=4.5, max_value=10.0, allow_nan=False))
    span = draw(st.floats(min_value=6.0, max_value=23.0, allow_nan=False))
    far = min(near + span, 29.0)
    assume(far - near >= 6.0)
    return n_entries, island_fill, (near, far)


def build_or_skip(config, placement=Placement.EQUAL_DISTANCE):
    """Build the map, discarding configs the constructor rejects.

    ``build_island_map`` raising ValueError for infeasible configurations
    (too many entries for the code span) is legitimate, documented
    behavior — the property tests only constrain the maps that *do*
    build.
    """
    n_entries, island_fill, range_cm = config
    try:
        return build_island_map(
            _SENSOR,
            _ADC,
            n_entries,
            range_cm=range_cm,
            island_fill=island_fill,
            placement=placement,
        )
    except ValueError:
        assume(False)


@given(config=map_configs())
@settings(max_examples=80, deadline=None)
def test_property_slot_monotone_in_distance(config):
    """Sweeping the hand outward never moves the selection backward."""
    island_map = build_or_skip(config)
    _, _, (near, far) = config
    last_slot = None
    steps = 400
    for i in range(steps + 1):
        d = near + (far - near) * i / steps
        code = _ADC.code_for_voltage(_SENSOR.ideal_voltage(d))
        slot = island_map.lookup(code)
        if slot is None:
            continue  # dead zone: selection unchanged
        if last_slot is not None:
            assert slot >= last_slot, (
                f"selection moved backward at d={d:.2f} cm: "
                f"{last_slot} -> {slot}"
            )
        last_slot = slot


@given(config=map_configs())
@settings(max_examples=80, deadline=None)
def test_property_gap_codes_select_nothing(config):
    """Every code strictly between adjacent islands looks up to None."""
    island_map = build_or_skip(config)
    by_code = sorted(island_map.islands, key=lambda isl: isl.code_low)
    for lower, upper in zip(by_code, by_code[1:]):
        for code in range(lower.code_high + 1, upper.code_low):
            assert island_map.lookup(code) is None, (
                f"gap code {code} between slots {lower.slot} and "
                f"{upper.slot} selected {island_map.lookup(code)}"
            )
    # Codes outside the mapped span select nothing either.
    assert island_map.lookup(by_code[0].code_low - 1) is None
    assert island_map.lookup(by_code[-1].code_high + 1) is None


@given(config=map_configs())
@settings(max_examples=80, deadline=None)
def test_property_every_entry_reachable(config):
    """Each slot's own center code (and island edges) select that slot."""
    island_map = build_or_skip(config)
    n_entries = config[0]
    assert island_map.n_slots == n_entries
    for slot in range(n_entries):
        island = island_map.island_for_slot(slot)
        assert island.code_low <= island.center_code <= island.code_high
        assert island_map.lookup(island.center_code) == slot
        assert island_map.lookup(island.code_low) == slot
        assert island_map.lookup(island.code_high) == slot


@given(config=map_configs())
@settings(max_examples=40, deadline=None)
def test_property_full_coverage_placement_has_no_gaps(config):
    """The FULL_COVERAGE ablation really abuts its islands (no dead zone
    inside the mapped span) while still honoring the other invariants."""
    island_map = build_or_skip(config, placement=Placement.FULL_COVERAGE)
    by_code = sorted(island_map.islands, key=lambda isl: isl.code_low)
    for lower, upper in zip(by_code, by_code[1:]):
        assert upper.code_low - lower.code_high <= 1

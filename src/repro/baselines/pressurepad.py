"""Pressure-sensitive touchpad scrolling (Haubold) — force-to-rate control.

Haubold's lighting-control work (PAPERS.md) drives continuous values
from *pressure levels* on force-sensitive resistor pads: press harder,
change faster.  As a scrolling technique that is isometric first-order
control — the finger never moves, force sets the scroll rate — with the
FSR voltage digitized by the same 10-bit ADC front end as the
DistScroll sensor, then bucketed into a handful of discrete rate levels
(Haubold's pads distinguish only a few force bands reliably).

Force is hard to modulate precisely, and thick gloves make it harder:
the model adds force noise scaled by the glove's ``touch_error_factor``,
so the selected rate level can jitter a band up or down.  The fault
surface is ``pad-stuck``: a stuck FSR reading keeps the list scrolling
after release, overshooting the target until the user notices and
recovers.  Inside a window the technique degrades gracefully — never
raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.hardware.adc import ADC, ADCParams
from repro.interaction.fitts import index_of_difficulty

__all__ = ["PressurePadScroller"]


@dataclass
class PressurePadScroller(ScrollingTechnique):
    """Isometric force-to-rate scrolling on a pressure pad.

    Parameters
    ----------
    rate_levels:
        Discrete force bands the pad resolves; band *k* of *n* scrolls
        at ``k/n`` of :attr:`max_rate_entries_s`.
    max_rate_entries_s:
        Scroll velocity at full force.
    press_settle_s:
        Time to find and settle on a force band.
    stop_sigma_entries_per_rate:
        Stopping error std per entries/s of approach velocity.
    force_noise_frac:
        Force-control noise as a fraction of one band's voltage width
        (multiplied by the glove's ``touch_error_factor``).
    stuck_p:
        Per-pass chance a ``pad-stuck`` window turns a release into a
        runaway scroll.
    stuck_overshoot_entries:
        Mean entries overrun before a stuck pad is caught.
    """

    name: str = "pressurepad"
    one_handed: bool = True  # thumb on a pad, device in the same hand
    glove_compatible: bool = False  # force modulation needs tactile feel
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="pressurepad",
        title="Haubold pressure-sensitive touchpad",
        citation=(
            "Haubold — Lighting Control using Pressure-Sensitive "
            "Touchpads (PAPERS.md, arXiv cs/0601021)"
        ),
        input_model=(
            "Force-sensitive resistor pad; the FSR voltage is "
            "digitized by the 10-bit ADC front end and bucketed into a "
            "few discrete force bands."
        ),
        transfer_function=(
            "Isometric rate control: finger force sets scroll "
            "velocity band; force noise (worse under gloves) jitters "
            "the selected band, and releasing leaves a rate-"
            "proportional stopping error."
        ),
        control_order="rate",
        fault_surfaces=("pad-stuck",),
    )
    rate_levels: int = 6
    max_rate_entries_s: float = 8.0
    press_settle_s: float = 0.22
    stop_sigma_entries_per_rate: float = 0.15
    force_noise_frac: float = 0.30
    stuck_p: float = 0.40
    stuck_overshoot_entries: float = 3.0
    adc_params: ADCParams = field(default_factory=ADCParams)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._adc = ADC(params=self.adc_params, rng=self.rng)
        self._force_v = 0.0
        self._adc.attach(0, lambda _t: self._force_v)

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Press to a force band, ride the rate, release, correct."""
        trial_index = self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        trial.index_of_difficulty = index_of_difficulty(
            max(abs(target_index - start_index), 1e-6) + 1e-9, 1.0
        )
        stuck_window = self.fault_active("pad-stuck", trial_index)
        v_ref = self._adc.params.v_ref
        band_v = v_ref / self.rate_levels
        noise_v = band_v * self.force_noise_frac * self.glove.touch_error_factor

        duration = self._lognormal(self.t.reaction_s)
        position = float(start_index)
        passes = 0
        while round(position) != target_index:
            passes += 1
            distance = abs(target_index - position)
            wanted = min(
                self.max_rate_entries_s, max(distance * 1.4, 1.0)
            )
            # Aim for the force band of the wanted rate; the pad reads
            # back whatever band the noisy force lands in.
            level_aim = max(
                1, round(wanted / self.max_rate_entries_s * self.rate_levels)
            )
            self._force_v = level_aim * band_v + self.rng.normal(0.0, noise_v)
            code = self._adc.sample(0.0, 0)
            level = int(code / self._adc.params.max_code * self.rate_levels)
            level = max(1, min(level, self.rate_levels))
            rate = level / self.rate_levels * self.max_rate_entries_s
            duration += self._lognormal(
                self.press_settle_s * self.glove.dexterity_time_factor, 0.15
            )
            duration += self._lognormal(distance / rate, 0.10)
            trial.operations += 1
            sigma = self.stop_sigma_entries_per_rate * rate
            landing = target_index + self.rng.normal(0.0, sigma)
            if stuck_window and self.rng.random() < self.stuck_p:
                # Stuck FSR: the list keeps scrolling after release.
                overrun = self._lognormal(self.stuck_overshoot_entries, 0.4)
                landing += overrun if target_index >= position else -overrun
                trial.errors += 1
                duration += self._lognormal(self.dwell_recovery_s(), 0.2)
            position = max(0.0, min(landing, float(n_entries - 1)))
            if round(position) != target_index:
                trial.errors += 1
                duration += self._lognormal(self.t.reaction_s)
            if passes > 20:
                position = float(target_index)  # nudge in band-1 creeps
                duration += self._lognormal(self.t.keypress_s) * distance
        duration += self._confirm_selection(trial)
        trial.duration_s = duration
        return trial

    def dwell_recovery_s(self) -> float:
        """Mean time to notice and stop a runaway (stuck-pad) scroll."""
        return self.t.reaction_s + 0.45

"""Glove models — the paper's headline application constraint.

DistScroll "is especially designed for situations in which the user wears
gloves that renders direct input too difficult" (Abstract): arctic/alpine
clothing as in Rantanen's snowmobile suit, or protective gloves in bio-
and chemical laboratories (Section 5.2).

A :class:`Glove` scales the simulated user's motor parameters.  The key
asymmetry the paper exploits: gloves devastate *touch/stylus precision*
and make *small buttons* unreliable, but barely affect *gross arm
movement* — which is all DistScroll needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Glove", "GLOVES", "DEFAULT_GLOVE_WEIGHTS", "resolve_glove"]


@dataclass(frozen=True)
class Glove:
    """Motor-performance modifiers of one glove type.

    Attributes
    ----------
    name:
        Label used in experiment tables.
    thickness_mm:
        Shell thickness — drives the other defaults in the presets.
    tremor_factor:
        Multiplier on hand tremor RMS (stiff gloves damp tremor slightly;
        bulky mittens add instability).
    movement_time_factor:
        Multiplier on gross arm movement times (≈1 even for thick gloves).
    button_miss_probability:
        Chance that a press of a *normal-size* button fails (slides off,
        not enough force, wrong button edge).  Scaled down for large
        buttons by the button's area.
    touch_error_factor:
        Multiplier on touch/stylus pointing error — the reason touch
        interfaces fail with gloves.
    dexterity_time_factor:
        Multiplier on fine-motor action times (button acquisition,
        stylus taps, wheel pinching).
    """

    name: str
    thickness_mm: float
    tremor_factor: float = 1.0
    movement_time_factor: float = 1.0
    button_miss_probability: float = 0.0
    touch_error_factor: float = 1.0
    dexterity_time_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.thickness_mm < 0:
            raise ValueError("thickness must be >= 0")
        if not 0.0 <= self.button_miss_probability <= 1.0:
            raise ValueError("button_miss_probability must be in [0,1]")
        for factor in (
            self.tremor_factor,
            self.movement_time_factor,
            self.touch_error_factor,
            self.dexterity_time_factor,
        ):
            if factor <= 0:
                raise ValueError("factors must be positive")

    def effective_miss_probability(self, button_area_mm2: float) -> float:
        """Miss probability adjusted for button size.

        The presets are calibrated for a 40 mm² button; a large 250 mm²
        pad (the single-large-button layout) is much more forgiving.
        """
        reference_area = 40.0
        scale = min(reference_area / max(button_area_mm2, 1.0), 1.0)
        return min(self.button_miss_probability * scale, 1.0)


#: Glove presets spanning the paper's application areas.
GLOVES: dict[str, Glove] = {
    "none": Glove("bare hands", thickness_mm=0.0),
    "latex": Glove(
        "thin latex (bio lab)",
        thickness_mm=0.2,
        tremor_factor=1.0,
        button_miss_probability=0.01,
        touch_error_factor=1.15,
        dexterity_time_factor=1.05,
    ),
    "chemical": Glove(
        "chemical protection",
        thickness_mm=1.5,
        tremor_factor=0.95,
        button_miss_probability=0.06,
        touch_error_factor=1.8,
        dexterity_time_factor=1.25,
    ),
    "winter": Glove(
        "winter gloves",
        thickness_mm=3.0,
        tremor_factor=0.9,
        movement_time_factor=1.05,
        button_miss_probability=0.12,
        touch_error_factor=2.6,
        dexterity_time_factor=1.45,
    ),
    "arctic": Glove(
        "arctic mittens",
        thickness_mm=8.0,
        tremor_factor=1.25,
        movement_time_factor=1.12,
        button_miss_probability=0.30,
        touch_error_factor=5.0,
        dexterity_time_factor=2.1,
    ),
}

#: Realistic population marginals over the presets, used by the persona
#: engine's ``full`` specification (renormalized when restricted).
DEFAULT_GLOVE_WEIGHTS: dict[str, float] = {
    "none": 0.55,
    "latex": 0.15,
    "chemical": 0.10,
    "winter": 0.12,
    "arctic": 0.08,
}


def resolve_glove(name: str) -> Glove:
    """Look up a preset by key with a helpful error on typos."""
    try:
        return GLOVES[name]
    except KeyError:
        raise ValueError(
            f"unknown glove {name!r}; available: {', '.join(GLOVES)}"
        ) from None

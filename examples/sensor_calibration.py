#!/usr/bin/env python
"""Regenerate Figures 4 and 5 as ASCII plots from the sensor model.

Sweeps a simulated GP2D120 specimen over its 4–30 cm range through the
Smart-Its ADC, fits the idealized curve of Figure 4, and renders both
the linear-axis and the log-axis (Figure 5) views in the terminal.

Run:  python examples/sensor_calibration.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments import run_fig4


def ascii_plot(xs, ys, fit_ys, width=60, height=16, logx=False, logy=False):
    """Tiny scatter+line plotter: '*' measured, '.' fitted curve."""
    tx = [math.log10(x) if logx else x for x in xs]
    ty = [math.log10(max(y, 1e-9)) if logy else y for y in ys]
    tf = [math.log10(max(y, 1e-9)) if logy else y for y in fit_ys]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty + tf), max(ty + tf)
    grid = [[" "] * width for _ in range(height)]

    def place(x, y, char):
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y_hi - y) / (y_hi - y_lo) * (height - 1))
        if grid[row][col] == " " or char == "*":
            grid[row][col] = char

    for x, y in zip(tx, tf):
        place(x, y, ".")
    for x, y in zip(tx, ty):
        place(x, y, "*")
    lines = ["    +" + "-" * width + "+"]
    for i, row in enumerate(grid):
        y_val = y_hi - i / (height - 1) * (y_hi - y_lo)
        lines.append(f"{y_val:4.1f}|" + "".join(row) + "|")
    lines.append("    +" + "-" * width + "+")
    lines.append(f"     {x_lo:<8.2f}{'':^{width - 16}}{x_hi:>8.2f}")
    return "\n".join(lines)


def main() -> None:
    result, calibration = run_fig4(seed=0, readings_per_point=16)
    xs = list(calibration.distances)
    ys = list(calibration.voltages)
    fit = calibration.hyperbola
    fit_ys = [float(fit.voltage(x)) for x in xs]

    print("Figure 4 — measured voltage (*) and idealized fit (.)")
    print("x: distance [cm], y: analog voltage at the Smart-Its port [V]\n")
    print(ascii_plot(xs, ys, fit_ys))
    print(f"\n  fit: V = {fit.a:.2f}/(d + {fit.b:.2f}) + {fit.c:.3f}"
          f"   R^2 = {fit.r2:.5f}")

    power = calibration.power_law
    power_ys = [float(power.voltage(x)) for x in xs]
    print("\nFigure 5 — the same data on logarithmic axes")
    print("x: log10 distance, y: log10 voltage\n")
    print(ascii_plot(xs, ys, power_ys, logx=True, logy=True))
    print(f"\n  power law: V = {power.k:.2f} * d^{power.p:.3f}"
          f"   log-space R^2 = {power.r2_log:.5f}")
    print("\n'The measured values nearly perfectly fit the curve.' (§4.2)")


if __name__ == "__main__":
    main()

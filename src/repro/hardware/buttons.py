"""Push buttons with contact bounce and firmware-side debouncing.

The prototype has three push buttons: "two of them situated in the middle
area of the device on the left side and one button situated near the top
on the right side", laid out for right-handed use with the thumb on the
top-right select button (Sections 4.5 and 5.1).  The final design explores
two slidable buttons or one large button (Section 6) — the
:class:`ButtonLayout` presets cover those variants.

Mechanical switches bounce: a single physical press produces a burst of
open/close transitions over a few milliseconds.  The :class:`Button`
model generates the bounce; :class:`DebouncedButton` implements the
firmware-side filter (stable-for-N-ms acceptance) and emits clean
press/release events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator

__all__ = [
    "ButtonPosition",
    "ButtonSpec",
    "ButtonLayout",
    "Button",
    "DebouncedButton",
    "RIGHT_HANDED_LAYOUT",
    "TWO_BUTTON_SLIDABLE_LAYOUT",
    "SINGLE_LARGE_BUTTON_LAYOUT",
]


class ButtonPosition(Enum):
    """Physical placement of a button on the case."""

    TOP_RIGHT = "top-right"
    MIDDLE_LEFT_UPPER = "middle-left-upper"
    MIDDLE_LEFT_LOWER = "middle-left-lower"
    SIDE_SLIDABLE = "side-slidable"
    FRONT_LARGE = "front-large"


@dataclass(frozen=True)
class ButtonSpec:
    """One button of a layout.

    Attributes
    ----------
    name:
        Logical role ("select", "back", "aux").
    position:
        Physical placement.
    thumb_operable:
        Whether the holding hand's thumb reaches it (the paper singles out
        the top-right button as "most conveniently operated with the thumb").
    area_mm2:
        Contact area — larger buttons stay operable with thick gloves.
    """

    name: str
    position: ButtonPosition
    thumb_operable: bool
    area_mm2: float = 40.0


@dataclass(frozen=True)
class ButtonLayout:
    """A full button arrangement for one device variant."""

    name: str
    buttons: tuple[ButtonSpec, ...]
    handedness: str = "right"

    def spec(self, name: str) -> ButtonSpec:
        """Look up a button by logical role."""
        for button in self.buttons:
            if button.name == name:
                return button
        raise KeyError(f"layout {self.name!r} has no button {name!r}")

    @property
    def ambidextrous(self) -> bool:
        """Whether left- and right-handed users are served equally."""
        return self.handedness == "both"


#: The initial prototype layout (Section 4.5): three buttons, right-handed.
RIGHT_HANDED_LAYOUT = ButtonLayout(
    name="prototype-3-button",
    buttons=(
        ButtonSpec("select", ButtonPosition.TOP_RIGHT, thumb_operable=True),
        ButtonSpec("back", ButtonPosition.MIDDLE_LEFT_UPPER, thumb_operable=False),
        ButtonSpec("aux", ButtonPosition.MIDDLE_LEFT_LOWER, thumb_operable=False),
    ),
    handedness="right",
)

#: The favored two-button design with slidable buttons (Section 6).
TWO_BUTTON_SLIDABLE_LAYOUT = ButtonLayout(
    name="two-button-slidable",
    buttons=(
        ButtonSpec("select", ButtonPosition.SIDE_SLIDABLE, thumb_operable=True),
        ButtonSpec("back", ButtonPosition.SIDE_SLIDABLE, thumb_operable=True),
    ),
    handedness="both",
)

#: The one-large-button alternative (Section 6).
SINGLE_LARGE_BUTTON_LAYOUT = ButtonLayout(
    name="single-large-button",
    buttons=(
        ButtonSpec(
            "select", ButtonPosition.FRONT_LARGE, thumb_operable=True, area_mm2=250.0
        ),
    ),
    handedness="both",
)


class Button:
    """A raw mechanical switch wired to a GPIO pin.

    ``press``/``release`` model the *finger*; the electrical contact state
    (with bounce) is what :attr:`closed` reports and what the debouncer
    samples.

    Parameters
    ----------
    sim:
        Simulator for scheduling bounce transitions.
    spec:
        The physical button being modeled.
    bounce_time_s:
        Duration of the bounce burst after each press/release.
    rng:
        Generator for bounce patterns; ``None`` gives a bounce-free ideal
        switch.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: ButtonSpec,
        bounce_time_s: float = 0.004,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._sim = sim
        self.spec = spec
        self.bounce_time_s = float(bounce_time_s)
        self._rng = rng
        self._closed = False
        self._settled_state = False

    @property
    def closed(self) -> bool:
        """Instantaneous electrical contact state (bouncy)."""
        return self._closed

    def press(self) -> None:
        """The finger pushes the button down."""
        self._settled_state = True
        self._start_bounce(final=True)

    def release(self) -> None:
        """The finger lets go."""
        self._settled_state = False
        self._start_bounce(final=False)

    def _start_bounce(self, final: bool) -> None:
        if self._rng is None or self.bounce_time_s <= 0:
            self._closed = final
            return
        n_transitions = int(self._rng.integers(2, 7))
        state = not final
        for i in range(n_transitions):
            at = self.bounce_time_s * float(self._rng.random())
            state = not state
            self._sim.schedule(at, self._make_setter(state))
        self._sim.schedule(self.bounce_time_s, self._make_setter(final))

    def _make_setter(self, state: bool) -> Callable[[], None]:
        def setter() -> None:
            # A later finger action may have superseded this bounce burst.
            self._closed = state if state != self._settled_state else self._settled_state
            self._closed = state
        return setter


@dataclass
class DebouncedButton:
    """Firmware-side debouncer polling a :class:`Button`.

    The firmware samples the GPIO each tick and accepts a state change only
    after it has been stable for ``stable_time_s``.  Clean edges invoke the
    registered callbacks.
    """

    button: Button
    stable_time_s: float = 0.012
    on_press: Optional[Callable[[], None]] = None
    on_release: Optional[Callable[[], None]] = None
    _stable_state: bool = field(default=False, init=False)
    _candidate: bool = field(default=False, init=False)
    _candidate_since: Optional[float] = field(default=None, init=False)
    press_count: int = field(default=0, init=False)

    @property
    def pressed(self) -> bool:
        """Debounced logical state."""
        return self._stable_state

    def poll(self, time_s: float) -> None:
        """Sample the raw contact; call from the firmware tick."""
        raw = self.button.closed
        if raw != self._candidate:
            self._candidate = raw
            self._candidate_since = time_s
            return
        if self._candidate == self._stable_state:
            return
        if self._candidate_since is None:
            self._candidate_since = time_s
        if time_s - self._candidate_since >= self.stable_time_s:
            self._stable_state = self._candidate
            if self._stable_state:
                self.press_count += 1
                if self.on_press is not None:
                    self.on_press()
            elif self.on_release is not None:
                self.on_release()

"""Tests for the streaming filters used by the firmware."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.filters import (
    ExponentialMovingAverage,
    HysteresisQuantizer,
    MedianFilter,
    MovingAverage,
    RateLimiter,
)


class TestExponentialMovingAverage:
    def test_first_sample_passes_through(self):
        ema = ExponentialMovingAverage(alpha=0.3)
        assert ema.update(5.0) == 5.0

    def test_converges_to_constant_input(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        for _ in range(50):
            value = ema.update(3.0)
        assert value == pytest.approx(3.0)

    def test_alpha_one_is_passthrough(self):
        ema = ExponentialMovingAverage(alpha=1.0)
        ema.update(1.0)
        assert ema.update(9.0) == 9.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)

    def test_reset_forgets(self):
        ema = ExponentialMovingAverage(alpha=0.1)
        ema.update(100.0)
        ema.reset()
        assert ema.value is None
        assert ema.update(1.0) == 1.0

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        ema = ExponentialMovingAverage(alpha=0.1)
        outputs = [ema.update(1.0 + rng.normal(0, 0.5)) for _ in range(500)]
        assert np.std(outputs[100:]) < 0.25


class TestMovingAverage:
    def test_partial_window_mean(self):
        ma = MovingAverage(window=4)
        assert ma.update(2.0) == 2.0
        assert ma.update(4.0) == 3.0

    def test_full_window_slides(self):
        ma = MovingAverage(window=2)
        ma.update(1.0)
        ma.update(3.0)
        assert ma.update(5.0) == 4.0  # mean of (3, 5)

    def test_full_flag(self):
        ma = MovingAverage(window=3)
        ma.update(1.0)
        assert not ma.full
        ma.update(1.0)
        ma.update(1.0)
        assert ma.full

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage(window=0)


class TestMedianFilter:
    def test_kills_isolated_spike(self):
        med = MedianFilter(window=3)
        med.update(10.0)
        med.update(10.0)
        assert med.update(500.0) == 10.0  # spike suppressed

    def test_median_of_even_window(self):
        med = MedianFilter(window=4)
        outputs = [med.update(v) for v in (1.0, 2.0, 3.0, 4.0)]
        assert outputs[-1] == 2.5

    def test_window_one_is_passthrough(self):
        med = MedianFilter(window=1)
        assert med.update(7.0) == 7.0

    def test_reset(self):
        med = MedianFilter(window=3)
        med.update(100.0)
        med.reset()
        assert med.update(1.0) == 1.0

    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        window=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_sorted_insert_matches_resort(self, samples, window):
        """The incremental sorted window equals a full re-sort each step."""
        from collections import deque

        med = MedianFilter(window=window)
        reference = deque(maxlen=window)
        for sample in samples:
            got = med.update(sample)
            reference.append(float(sample))
            ordered = sorted(reference)
            n = len(ordered)
            if n % 2 == 1:
                expected = ordered[n // 2]
            else:
                expected = 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
            assert got == expected

    def test_reset_clears_sorted_mirror(self):
        med = MedianFilter(window=3)
        for v in (5.0, 6.0, 7.0):
            med.update(v)
        med.reset()
        assert med.update(1.0) == 1.0
        assert med.update(2.0) == 1.5


class TestHysteresisQuantizer:
    def test_initial_level_rounds(self):
        q = HysteresisQuantizer(step=1.0, margin=0.2)
        assert q.update(2.4) == 2

    def test_small_wiggle_does_not_change_level(self):
        q = HysteresisQuantizer(step=1.0, margin=0.2)
        q.update(2.0)
        assert q.update(2.55) == 2  # within margin past boundary
        assert q.update(2.69) == 2

    def test_decisive_move_changes_level(self):
        q = HysteresisQuantizer(step=1.0, margin=0.2)
        q.update(2.0)
        assert q.update(2.9) == 3

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            HysteresisQuantizer(step=1.0, margin=0.6)

    @given(
        values=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_no_chatter_on_tiny_oscillation(self, values):
        """After settling, ±margin/2 oscillation never changes the level."""
        q = HysteresisQuantizer(step=1.0, margin=0.3)
        for v in values:
            q.update(v)
        level = q.level
        center = level * 1.0
        for delta in (0.6, -0.6, 0.6, -0.6):
            assert q.update(center + delta * 0.3 / 2) == level


class TestRateLimiter:
    def test_first_sample_passes(self):
        rl = RateLimiter(max_rate=1.0)
        assert rl.update(0.0, 10.0) == 10.0

    def test_limits_slew(self):
        rl = RateLimiter(max_rate=2.0)
        rl.update(0.0, 0.0)
        assert rl.update(1.0, 10.0) == 2.0
        assert rl.update(2.0, 10.0) == 4.0

    def test_reaches_target_within_rate(self):
        rl = RateLimiter(max_rate=100.0)
        rl.update(0.0, 0.0)
        assert rl.update(1.0, 5.0) == 5.0

    def test_negative_direction(self):
        rl = RateLimiter(max_rate=1.0)
        rl.update(0.0, 0.0)
        assert rl.update(1.0, -10.0) == -1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(max_rate=0.0)


_signal = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=0,
    max_size=80,
)


class TestUpdateBatchEquivalence:
    """update_batch (PR 4) must be bit-equal to sample-at-a-time update,
    including the state the filter carries to the *next* call."""

    @given(_signal, st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_ema(self, samples, alpha):
        scalar = ExponentialMovingAverage(alpha)
        batched = ExponentialMovingAverage(alpha)
        out = batched.update_batch(samples)
        assert out.tolist() == [scalar.update(x) for x in samples]
        assert batched.value == scalar.value

    @given(_signal, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_moving_average(self, samples, window):
        scalar = MovingAverage(window)
        batched = MovingAverage(window)
        out = batched.update_batch(samples)
        assert out.tolist() == [scalar.update(x) for x in samples]
        # Same internal running sum => next samples also agree.
        assert batched.update(1.25) == scalar.update(1.25)

    @given(_signal, st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_median(self, samples, window):
        scalar = MedianFilter(window)
        batched = MedianFilter(window)
        out = batched.update_batch(samples)
        assert out.tolist() == [scalar.update(x) for x in samples]
        assert batched.update(0.5) == scalar.update(0.5)

    @given(_signal)
    @settings(max_examples=60, deadline=None)
    def test_hysteresis_quantizer(self, samples):
        scalar = HysteresisQuantizer(step=2.0, margin=0.5)
        batched = HysteresisQuantizer(step=2.0, margin=0.5)
        out = batched.update_batch(samples)
        assert out.dtype == np.int64
        assert out.tolist() == [scalar.update(x) for x in samples]
        assert batched.level == scalar.level

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_limiter(self, pairs):
        pairs.sort(key=lambda p: p[0])  # time moves forward
        times = [t for t, _ in pairs]
        targets = [x for _, x in pairs]
        scalar = RateLimiter(max_rate=3.0)
        batched = RateLimiter(max_rate=3.0)
        out = batched.update_batch(times, targets)
        assert out.tolist() == [
            scalar.update(t, x) for t, x in pairs
        ]
        assert batched._value == scalar._value
        assert batched._time == scalar._time

    def test_rate_limiter_length_mismatch(self):
        with pytest.raises(ValueError, match="pair up"):
            RateLimiter(max_rate=1.0).update_batch([0.0, 1.0], [1.0])

    def test_batch_then_scalar_resumes_seamlessly(self):
        """A batch call leaves the same state a scalar prefix would."""
        scalar = ExponentialMovingAverage(0.3)
        batched = ExponentialMovingAverage(0.3)
        prefix = [1.0, 4.0, -2.0, 0.5]
        for x in prefix:
            scalar.update(x)
        batched.update_batch(prefix)
        for x in [9.0, -1.0]:
            assert batched.update(x) == scalar.update(x)

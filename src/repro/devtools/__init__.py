"""``reprolint`` — AST-based invariant linting for the simulation stack.

The simulator's headline guarantees (``--jobs 1 == --jobs N``
byte-identical CSVs, every fault injection paired with a recovery) rest
on code conventions: all randomness flows from a passed-in
``numpy.random.Generator``, trace channels are spelled from one
registry, nothing inside the sim reads wall-clock time.  This package
enforces those conventions mechanically.

Layout
------
``findings``   :class:`Finding` / :class:`Severity` — what a rule emits.
``base``       :class:`Rule` — an ``ast.NodeVisitor`` with an ancestor
               stack, per-path exemptions and a ``report()`` helper.
``engine``     :class:`LintEngine` — parses a tree once, runs every
               registered rule per file, returns sorted findings.
``baseline``   committed grandfather file: load/match/write.
``report``     text and JSON rendering of a lint run.
``rules``      the shipped rule set (REP001–REP005).

Entry point: ``repro lint`` in :mod:`repro.cli`, or programmatically::

    from repro.devtools import LintEngine
    findings = LintEngine().lint_tree(Path("src/repro"))
"""

from repro.devtools.baseline import Baseline
from repro.devtools.base import LintContext, Rule
from repro.devtools.engine import LintEngine, default_rules
from repro.devtools.findings import Finding, Severity
from repro.devtools.report import format_json, format_text

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "LintEngine",
    "Rule",
    "Severity",
    "default_rules",
    "format_json",
    "format_text",
]

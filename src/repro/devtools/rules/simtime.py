"""REP004 — sim-time discipline.

Two classes of time bugs the kernel cannot catch at runtime:

* **Float equality on simulated time.**  Sim times are floats built by
  accumulating deltas; ``now == end_s`` is true or false depending on
  rounding history and silently flips when an unrelated event lands in
  between.  Ordered comparisons (``<=``, ``<``) or an epsilon window are
  the correct forms — the firmware's confirm window does exactly that
  (``now - since < needed - 1e-9``).
* **Negative literal scheduling delays.**  ``sim.schedule(-0.1, cb)``
  raises at runtime, but only on the path that executes it; a linter
  catches the dead branch too.

The rule is deliberately name-driven: only identifiers that
conventionally denote simulated time (``now``, ``time_s``, ``t0``,
``start_s``, ``end_s``, ...) participate, so ordinary integer equality
(``chunk == 0``) is untouched.
"""

from __future__ import annotations

import ast

from repro.devtools.base import Rule

__all__ = ["SimTimeDisciplineRule"]

#: Bare identifiers that denote a simulated time in seconds.
_TIME_NAMES = frozenset(
    {
        "now",
        "t",
        "t0",
        "t1",
        "time_s",
        "start_s",
        "end_s",
        "when_s",
        "deadline_s",
        "sim_time",
        "candidate_since",
    }
)

#: Attribute names that denote a simulated time on any receiver
#: (``sim.now``, ``window.end_s``, ``self._candidate_since``).
_TIME_ATTRS = frozenset(
    {"now", "time_s", "start_s", "end_s", "sim_time", "_candidate_since"}
)

#: Methods that take a *relative delay* as first argument.
_DELAY_METHODS = frozenset({"schedule"})
#: Methods that take an *absolute time* as first argument.
_ABSOLUTE_METHODS = frozenset({"schedule_at"})


def _names_time(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _TIME_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_ATTRS
    return False


def _negative_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
        and node.operand.value > 0
    )


class SimTimeDisciplineRule(Rule):
    """Flag float-equality on sim times and negative scheduling delays."""

    rule_id = "REP004"
    title = "no == / != on sim times; no negative scheduling delays"
    rationale = (
        "Sim times are floats accumulated through different code paths:"
        " exact equality comparisons work until a refactor reorders one"
        " addition, then fail only on some inputs.  Negative scheduling"
        " delays silently reorder the event queue.  Both are classic"
        " sources of 'deterministic but wrong' traces."
    )
    example = "if event.time == deadline:  # float equality on sim time"
    escape_hatch = (
        "Compare with explicit tolerances or ordering (`<=`), and"
        " validate delays at the call site; deliberate exact comparisons"
        " (e.g. against a sentinel) are baselined with a justification."
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            time_side = None
            if _names_time(left):
                time_side, other = left, right
            elif _names_time(right):
                time_side, other = right, left
            if time_side is None:
                continue
            # Comparisons against None / strings are identity-ish checks,
            # not float equality.
            if isinstance(other, ast.Constant) and (
                other.value is None or isinstance(other.value, str)
            ):
                continue
            self.report(
                node,
                "float equality on a simulated time"
                f" (`{ast.unparse(time_side)}`): rounding history makes"
                " == / != unstable — compare with <= / >= or an epsilon"
                " window",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and node.args:
            first = node.args[0]
            if func.attr in _DELAY_METHODS and _negative_literal(first):
                self.report(
                    first,
                    f"negative delay literal in `{func.attr}(...)`: the"
                    " simulated clock only moves forward — scheduling in"
                    " the past raises SimulationError at runtime",
                )
            elif func.attr in _ABSOLUTE_METHODS and _negative_literal(first):
                self.report(
                    first,
                    f"negative absolute time in `{func.attr}(...)`: the"
                    " simulated clock starts at >= 0 and never rewinds",
                )
        self.generic_visit(node)

"""9-volt block battery model powering the prototype.

"The device is powered by a 9 Volt block battery" (Section 4).  The model
tracks charge draw from the board's consumers and reproduces the alkaline
discharge curve: terminal voltage sags with depth of discharge and under
load, and the board browns out when the regulator input falls below its
dropout threshold.

This matters to the reproduction in two ways: the case is openable
specifically "to allow ... battery changes", and long user-study sessions
must not silently run the simulated battery flat.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["BatteryParams", "Battery"]


@dataclass(frozen=True)
class BatteryParams:
    """Electrical parameters of a 9 V alkaline block.

    Attributes
    ----------
    capacity_mah:
        Nominal capacity (≈550 mAh for alkaline 9 V).
    nominal_voltage:
        Fresh open-circuit voltage.
    cutoff_voltage:
        Below this the 5 V regulator drops out and the board browns out.
    internal_resistance_ohm:
        Causes load-dependent sag.
    """

    capacity_mah: float = 550.0
    nominal_voltage: float = 9.4
    cutoff_voltage: float = 6.0
    internal_resistance_ohm: float = 1.7


class Battery:
    """State-of-charge tracking battery.

    Consumers call :meth:`draw` with their current and a duration;
    :meth:`terminal_voltage` reports the sagged voltage under the present
    load.  The open-circuit curve is a piecewise-linear fit of the alkaline
    discharge profile.
    """

    _SOC_POINTS = np.array([0.0, 0.05, 0.2, 0.5, 0.8, 1.0])
    _OCV_POINTS = np.array([5.4, 6.3, 7.4, 8.1, 8.9, 9.4])

    def __init__(self, params: BatteryParams | None = None) -> None:
        self.params = params or BatteryParams()
        self._charge_mah = self.params.capacity_mah
        self._load_ma = 0.0
        self.total_drawn_mah = 0.0
        #: Optional fault hook ``() -> volts`` of *extra* terminal sag (a
        #: failing cell or corroded connector); see :mod:`repro.faults`.
        self.fault_hook: Optional[Callable[[], float]] = None

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of capacity in [0, 1]."""
        return max(self._charge_mah, 0.0) / self.params.capacity_mah

    @property
    def load_ma(self) -> float:
        """Most recent load current in mA."""
        return self._load_ma

    #: Scalar pure-Python mirror of the curve for the hot path below.
    _SOC_TUPLE = tuple(float(x) for x in _SOC_POINTS)
    _OCV_TUPLE = tuple(float(y) for y in _OCV_POINTS)

    def open_circuit_voltage(self) -> float:
        """No-load terminal voltage at the current state of charge.

        Bit-identical to ``np.interp(soc, _SOC_POINTS, _OCV_POINTS)``
        (same segment selection and ``slope * (x - x0) + y0`` op order)
        without the scalar-ufunc dispatch overhead — this runs once per
        firmware tick via the brownout check and again per observed tick
        for the battery gauge.
        """
        soc = self.state_of_charge
        xp, yp = self._SOC_TUPLE, self._OCV_TUPLE
        if soc <= xp[0]:
            return yp[0]
        if soc >= xp[-1]:
            return yp[-1]
        j = bisect.bisect_right(xp, soc) - 1
        x0, x1 = xp[j], xp[j + 1]
        y0, y1 = yp[j], yp[j + 1]
        return (y1 - y0) / (x1 - x0) * (soc - x0) + y0

    def terminal_voltage(self) -> float:
        """Voltage at the terminals under the present load."""
        sag = self._load_ma / 1000.0 * self.params.internal_resistance_ohm
        if self.fault_hook is not None:
            sag += max(self.fault_hook(), 0.0)
        return max(self.open_circuit_voltage() - sag, 0.0)

    @property
    def browned_out(self) -> bool:
        """Whether the regulator has dropped out."""
        return self.terminal_voltage() < self.params.cutoff_voltage

    def draw(self, current_ma: float, duration_s: float) -> None:
        """Consume charge: ``current_ma`` for ``duration_s`` seconds."""
        if current_ma < 0 or duration_s < 0:
            raise ValueError("current and duration must be non-negative")
        self._load_ma = float(current_ma)
        used = current_ma * duration_s / 3600.0
        self._charge_mah -= used
        self.total_drawn_mah += used

    def replace(self) -> None:
        """Swap in a fresh battery (the case opens for exactly this)."""
        self._charge_mah = self.params.capacity_mah
        self._load_ma = 0.0

"""Tests for the RF link and the full board assembly."""

from __future__ import annotations

import pytest

from repro.hardware.board import (
    ADC_CHANNEL_ACCEL_X,
    ADC_CHANNEL_DISTANCE,
    ADC_CHANNEL_DISTANCE_SPARE,
    build_distscroll_board,
)
from repro.hardware.rf import RFEndpoint, RFLink
from repro.sim.kernel import Simulator


class TestRFLink:
    def _link(self, sim, loss=0.0):
        a = RFEndpoint("device")
        b = RFEndpoint("host")
        rng = sim.spawn_rng() if loss > 0 else None
        link = RFLink(sim, a, b, loss_rate=loss, rng=rng)
        return a, b, link

    def test_delivery(self, sim):
        a, b, _ = self._link(sim)
        a.send(b"hello")
        sim.run()
        assert len(b.received) == 1
        assert b.received[0].payload == b"hello"
        assert b.received[0].source == "device"

    def test_latency_positive(self, sim):
        a, b, _ = self._link(sim)
        a.send(b"x")
        times = []
        b.on_receive(lambda p: times.append(sim.now))
        sim.run()
        assert times and times[0] > 0.0

    def test_bidirectional(self, sim):
        a, b, _ = self._link(sim)
        a.send(b"ping")
        b.send(b"pong")
        sim.run()
        assert a.received[0].payload == b"pong"
        assert b.received[0].payload == b"ping"

    def test_in_order_delivery(self, sim):
        a, b, _ = self._link(sim)
        for i in range(10):
            a.send(bytes([i]))
        sim.run()
        payloads = [p.payload[0] for p in b.received]
        assert payloads == sorted(payloads)

    def test_loss_rate(self, sim):
        a, b, link = self._link(sim, loss=0.5)
        for _ in range(400):
            a.send(b"x")
        sim.run()
        assert 100 < len(b.received) < 300
        assert link.delivery_ratio == pytest.approx(
            len(b.received) / 400, abs=0.01
        )

    def test_unattached_endpoint_send_fails(self):
        lone = RFEndpoint("lone")
        assert not lone.send(b"x")

    def test_callback_invoked(self, sim):
        a, b, _ = self._link(sim)
        got = []
        b.on_receive(lambda p: got.append(p.payload))
        a.send(b"evt")
        sim.run()
        assert got == [b"evt"]


class TestBoardAssembly:
    def test_inventory_matches_figure_3(self, sim):
        """Two displays, distance sensor (plus spare slot), accelerometer,
        three buttons, pot, battery, RF — the full §4.1 inventory."""
        board = build_distscroll_board(sim)
        assert board.display_top.name == "top"
        assert board.display_bottom.name == "bottom"
        assert board.spare_distance_sensor is not None
        assert set(board.buttons) == {"select", "back", "aux"}
        assert board.battery.state_of_charge == 1.0
        assert ADC_CHANNEL_DISTANCE in board.adc.channels
        assert ADC_CHANNEL_DISTANCE_SPARE in board.adc.channels
        assert ADC_CHANNEL_ACCEL_X in board.adc.channels

    def test_distance_channel_tracks_pose(self, sim):
        board = build_distscroll_board(sim, noisy=False)
        board.set_pose(distance_cm=6.0)
        near = board.adc.sample_volts(0.1, ADC_CHANNEL_DISTANCE)
        board.set_pose(distance_cm=25.0)
        far = board.adc.sample_volts(0.2, ADC_CHANNEL_DISTANCE)
        assert near > far

    def test_accel_channel_tracks_tilt(self, sim):
        board = build_distscroll_board(sim, noisy=False)
        board.set_pose(roll_rad=0.0)
        level = board.adc.sample_volts(0.1, ADC_CHANNEL_ACCEL_X)
        board.set_pose(roll_rad=0.5)
        tilted = board.adc.sample_volts(0.2, ADC_CHANNEL_ACCEL_X)
        assert tilted > level

    def test_contrast_propagates(self, sim):
        board = build_distscroll_board(sim, noisy=False)
        board.potentiometer.set_position(0.8)
        board.apply_contrast()
        assert board.display_top.contrast == pytest.approx(0.8)
        assert board.display_bottom.contrast == pytest.approx(0.8)

    def test_noise_free_board_is_deterministic(self):
        readings = []
        for _ in range(2):
            sim = Simulator(seed=11)
            board = build_distscroll_board(sim, noisy=False)
            board.set_pose(distance_cm=13.0)
            readings.append(board.adc.sample(0.1, ADC_CHANNEL_DISTANCE))
        assert readings[0] == readings[1]

    def test_same_seed_same_noisy_board(self):
        readings = []
        for _ in range(2):
            sim = Simulator(seed=11)
            board = build_distscroll_board(sim, noisy=True)
            board.set_pose(distance_cm=13.0)
            readings.append(board.adc.sample(0.1, ADC_CHANNEL_DISTANCE))
        assert readings[0] == readings[1]

    def test_button_press_release_cycle(self, sim):
        board = build_distscroll_board(sim, noisy=False)
        board.press_button("select")
        assert board.raw_buttons["select"].closed
        board.release_button("select")
        assert not board.raw_buttons["select"].closed

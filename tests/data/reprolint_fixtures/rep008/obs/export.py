"""REP008 fixture: hash-ordered set iteration (exactly one finding)."""


def channel_rows() -> list[str]:
    rows = []
    for name in {"events", "faults", "spans"}:
        rows.append(name)
    return rows

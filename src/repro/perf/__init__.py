"""Headless performance benchmarks and the perf-regression gate.

``python -m repro bench`` runs the suite in :mod:`repro.perf.bench`,
writes ``BENCH_perf.json`` and — with ``--check`` — fails on throughput
regressions against a committed baseline.
"""

from repro.perf.bench import (
    BENCHMARKS,
    BenchRecord,
    check_report,
    format_report,
    run_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "BenchRecord",
    "check_report",
    "format_report",
    "run_benchmarks",
]

"""Host-PC side: RF event logging, study control, session persistence."""

from repro.host.analysis import SessionAnalysis, TrialSlice, analyze_session
from repro.host.logger import EventLogger, LoggedEvent
from repro.host.replay import SessionRecorder, SessionReplay
from repro.host.study import StudyController, TaskScore

__all__ = [
    "SessionAnalysis",
    "TrialSlice",
    "analyze_session",
    "EventLogger",
    "LoggedEvent",
    "SessionRecorder",
    "SessionReplay",
    "StudyController",
    "TaskScore",
]

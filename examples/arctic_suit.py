#!/usr/bin/env python
"""Arctic snowmobile-suit control — the scenario behind the YoYo (§2).

Rantanen's smart snowmobile suit needed one-handed, thick-glove control
of heating zones, a GPS beacon and a radio.  The paper positions
DistScroll as the YoYo's successor: same pull-distance idea, but no
mechanical parts ("fluids penetrating the case"), no garment attachment,
no spring to fight.  This example runs the same suit-control tasks with
arctic mittens through both and prints the comparison.

Run:  python examples/arctic_suit.py
"""

from __future__ import annotations

from repro.apps.arctic import ArcticSession, SUIT_MENU_SPEC


def main() -> None:
    print("Snowmobile-suit control with arctic mittens")
    print("===========================================\n")
    print("Suit functions:")
    for top, sub in SUIT_MENU_SPEC.items():
        names = list(sub) if isinstance(sub, dict) else sub
        print(f"  {top:<12} -> {', '.join(names[:4])}")

    session = ArcticSession(seed=13, n_tasks=5)
    print("\nTasks (random suit-control selections):")
    for path in session.tasks:
        print(f"  - {' > '.join(path)}")

    print(f"\n{'technique':<12} {'s/task':>8} {'errors':>7} "
          f"{'mech.parts':>11} {'on garment':>11}")
    print("-" * 55)
    for report in session.compare():
        print(
            f"{report['technique']:<12} {report['mean_task_s']:>8.2f} "
            f"{report['wrong_activations']:>7d} "
            f"{str(report['mechanical_parts']):>11} "
            f"{str(report['garment_attached']):>11}"
        )

    print(
        "\nBoth survive the mittens (the point of position control); the"
        "\nDistScroll gets there with no springs, wheels or garment wiring"
        "\n— the paper's §2 argument, quantified."
    )


if __name__ == "__main__":
    main()

"""The parallel experiment driver behind ``python -m repro run-all``.

Fans every requested experiment's shards across a
``concurrent.futures.ProcessPoolExecutor``, reassembles partials in
shard order, consults the :class:`~repro.runner.cache.ResultCache`
before computing anything, and records per-experiment wall-clock and
events-per-second into ``BENCH_runner.json``.

Determinism: work units are fixed by ``(experiment id, seed, shard
index)`` alone, and merging sorts by shard index, so the merged rows —
and therefore the CSV bytes — are identical for any ``jobs`` value and
any completion order.  ``jobs=1`` runs the very same shard/merge path
inline, without a pool.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.runner.cache import ResultCache
from repro.runner.registry import REGISTRY, ExperimentSpec
from repro.runner.sharding import (
    ShardResult,
    execute_shard,
    make_shards,
    merge_shard_results,
)

__all__ = ["run_experiments"]


def _shard_task(
    spec: ExperimentSpec, seed: int, shard_index: int, observe: bool = False
) -> ShardResult:
    """Worker entry: re-derive the shard locally and execute it.

    Only ``(spec, seed, index, observe)`` crosses the process boundary —
    the spec is plain frozen data, so dynamic specs (e.g. a ``--users``
    population study not present in the registry) ship exactly like
    registry ones.  The worker reconstructs the shard from the spec,
    which guarantees it runs exactly what the inline path would.
    """
    shard = make_shards(spec, seed)[shard_index]
    return execute_shard(spec, seed, shard, observe=observe)


def run_experiments(
    experiment_ids: Sequence[str],
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    csv_dir: Optional[Path | str] = None,
    bench_path: Optional[Path | str] = None,
    echo: Optional[Callable[[str], None]] = None,
    observe: bool = False,
    overrides: Optional[dict[str, ExperimentSpec]] = None,
) -> tuple[dict[str, ExperimentResult], dict]:
    """Run experiments, possibly in parallel and/or from cache.

    Parameters
    ----------
    experiment_ids:
        Registry ids, run in the given order.
    seed:
        Experiment seed (same meaning as ``repro run --seed``).
    jobs:
        Worker processes; ``1`` executes inline with no pool.
    cache:
        Result cache, or ``None`` to bypass caching entirely.
    csv_dir:
        When set, each merged result is written to ``<csv_dir>/<ID>.csv``.
    bench_path:
        When set, the timing report is written there as JSON.
    echo:
        Progress-line sink (e.g. ``print``); ``None`` for silence.
    observe:
        Run every shard under a :class:`repro.obs.Recorder` and attach
        the merged observability payload to each result's ``obs``
        attribute.  Caching is bypassed (cached results carry no
        payload), and the payload is deterministic across ``jobs``.
    overrides:
        Specs that replace (or extend) the registry per experiment id —
        how the CLI injects a dynamic ``--users N`` population spec.
        Cache keys include the spec parameters, so overridden and
        registry runs never collide.

    Returns
    -------
    ``(results, bench)`` — merged results keyed by id, and the timing
    report that ``bench_path`` receives.
    """
    say = echo or (lambda _line: None)
    if observe:
        cache = None  # cached results carry no observability payload
    specs = {**REGISTRY, **(overrides or {})}
    unknown = [i for i in experiment_ids if i not in specs]
    if unknown:
        raise KeyError(f"unknown experiment ids: {', '.join(unknown)}")

    started = time.perf_counter()
    results: dict[str, ExperimentResult] = {}
    per_experiment: dict[str, dict] = {}
    pending: list[tuple[str, int]] = []  # (experiment_id, shard_index)
    shard_counts: dict[str, int] = {}

    for experiment_id in experiment_ids:
        spec = specs[experiment_id]
        if cache is not None:
            hit = cache.get(spec, seed)
            if hit is not None:
                result, meta = hit
                results[experiment_id] = result
                per_experiment[experiment_id] = {
                    "wall_s": 0.0,
                    "compute_wall_s": float(meta.get("wall_s", 0.0)),
                    "events": int(meta.get("events", 0)),
                    "events_per_s": float(meta.get("events_per_s", 0.0)),
                    "shards": int(meta.get("shards", 1)),
                    "cached": True,
                }
                say(f"{experiment_id:18s} cached ({len(result.rows)} rows)")
                continue
        n_shards = len(make_shards(spec, seed))
        shard_counts[experiment_id] = n_shards
        pending.extend((experiment_id, index) for index in range(n_shards))

    shard_results: dict[tuple[str, int], ShardResult] = {}
    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _shard_task, specs[experiment_id], seed, index, observe
                ): (
                    experiment_id,
                    index,
                )
                for experiment_id, index in pending
            }
            for future, task in futures.items():
                shard_results[task] = future.result()
    else:
        for experiment_id, index in pending:
            shard_results[(experiment_id, index)] = _shard_task(
                specs[experiment_id], seed, index, observe
            )

    for experiment_id in experiment_ids:
        if experiment_id in results:
            continue  # cache hit
        spec = specs[experiment_id]
        parts = [
            shard_results[(experiment_id, index)]
            for index in range(shard_counts[experiment_id])
        ]
        merged = merge_shard_results(spec, parts)
        results[experiment_id] = merged
        wall_s = sum(part.wall_s for part in parts)
        events = sum(part.events for part in parts)
        meta = {
            "wall_s": wall_s,
            "events": events,
            "events_per_s": events / wall_s if wall_s > 0 else 0.0,
            "shards": len(parts),
        }
        per_experiment[experiment_id] = {
            "wall_s": wall_s,
            "compute_wall_s": wall_s,
            "cached": False,
            **{k: meta[k] for k in ("events", "events_per_s", "shards")},
        }
        if cache is not None:
            cache.put(spec, seed, merged, meta)
        say(
            f"{experiment_id:18s} {wall_s:6.2f}s  "
            f"{len(parts)} shard(s)  {events} events"
        )

    total_wall_s = time.perf_counter() - started
    computed_wall_s = sum(
        entry["wall_s"] for entry in per_experiment.values()
        if not entry["cached"]
    )
    serial_equivalent_s = sum(
        entry["compute_wall_s"] for entry in per_experiment.values()
    )
    bench = {
        "generated_by": "python -m repro run-all",
        "jobs": jobs,
        "seed": seed,
        "experiment_count": len(experiment_ids),
        "cached_count": sum(
            1 for entry in per_experiment.values() if entry["cached"]
        ),
        "total_wall_s": total_wall_s,
        "computed_wall_s": computed_wall_s,
        "serial_equivalent_s": serial_equivalent_s,
        "speedup_vs_serial": (
            serial_equivalent_s / total_wall_s if total_wall_s > 0 else 0.0
        ),
        "experiments": {
            experiment_id: per_experiment[experiment_id]
            for experiment_id in experiment_ids
        },
    }

    if csv_dir is not None:
        csv_dir = Path(csv_dir)
        for experiment_id in experiment_ids:
            results[experiment_id].to_csv(csv_dir / f"{experiment_id}.csv")
    if bench_path is not None:
        bench_path = Path(bench_path)
        bench_path.parent.mkdir(parents=True, exist_ok=True)
        bench_path.write_text(json.dumps(bench, indent=2) + "\n")
    return results, bench

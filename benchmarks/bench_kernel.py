"""PERF — micro-benchmarks of the simulation substrate itself.

Not a paper figure: these keep the reproduction honest about simulator
throughput (events/second, firmware ticks/second, full closed-loop
trials/second) so regressions in the substrate are caught.
"""

from __future__ import annotations

import numpy as np

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.interaction.user import SimulatedUser
from repro.sim.kernel import PeriodicTask, Simulator


def test_bench_event_throughput(benchmark):
    """Raw kernel: schedule-and-run a large batch of events."""

    def run():
        sim = Simulator(seed=0)
        for i in range(10_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def test_bench_periodic_tasks(benchmark):
    """Many interleaved periodic tasks (the hardware polling pattern)."""

    def run():
        sim = Simulator(seed=0)
        counter = [0]

        def tick():
            counter[0] += 1

        for i in range(20):
            PeriodicTask(sim, 0.01 + i * 0.001, tick)
        sim.run_until(10.0)
        return counter[0]

    count = benchmark(run)
    assert count > 5000


def test_bench_device_simulated_second(benchmark):
    """One simulated second of the full device (firmware + displays)."""
    labels = [f"Item {i}" for i in range(10)]

    def run():
        device = DistScroll(build_menu(labels), seed=1)
        device.hold_at(15.0)
        device.run_for(1.0)
        return device.board.mcu.ticks

    ticks = benchmark(run)
    assert ticks >= 49


def test_bench_closed_loop_trial(benchmark):
    """A complete user selection trial through the whole stack."""
    labels = [f"Item {i}" for i in range(10)]

    def run():
        device = DistScroll(build_menu(labels), seed=1)
        user = SimulatedUser(device=device, rng=np.random.default_rng(1))
        user.practice_trials = 50
        device.run_for(0.5)
        return user.select_entry(7).success

    assert benchmark(run)

"""Seeded persona engine for population-scale user studies.

The paper's study (§6) observed "several people, students, colleagues
and people without direct technical background".  Scaling that protocol
to millions of simulated participants is only meaningful if those
participants *differ*: an arctic worker in mittens, a senior with a
hand tremor, a left-hander fighting the right-handed button layout.  A
:class:`Persona` captures one such participant cell — age band, motor
ability, handedness, worn glove, vision — plus a continuous per-persona
learning-rate scale, and knows how to parameterize the
:class:`~repro.interaction.user.MotorProfile` /
:class:`~repro.interaction.gloves.Glove` seams of the simulated user.

Determinism contract: :func:`persona_for_user` derives participant
``i``'s persona from ``SeedSequence(population_seed, spawn_key=(…, i))``
alone — O(1) per user, no global pass, and independent of how the
population is sharded across worker processes.  The same holds for
:func:`user_rng`, the participant's private trial-noise stream.  The
golden 16-persona pin in ``tests/data/personas_16.json`` freezes the
derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.interaction.gloves import DEFAULT_GLOVE_WEIGHTS, Glove, resolve_glove
from repro.interaction.user import MotorProfile

# Stream-domain tags keeping the persona draw and the trial noise of
# one participant on decorrelated SeedSequence branches; declared in the
# project-wide spawn-key registry (values pinned by golden persona JSON).
from repro.sim.streams import PERSONA_STREAM, TRIAL_STREAM

__all__ = [
    "Persona",
    "PersonaSpec",
    "parse_spec",
    "persona_for_user",
    "user_rng",
    "sample_personas",
    "PERSONA_DIMENSIONS",
]

#: ``dimension -> (value -> (weight, MotorProfile field multipliers))``.
#: Declaration order is the draw order, so adding a value at the end of
#: a dimension never perturbs existing draws of other dimensions.
PERSONA_DIMENSIONS: dict[str, dict[str, tuple[float, dict[str, float]]]] = {
    "age_band": {
        "young": (0.25, {"reaction_time_s": 0.92, "fitts_b": 0.95}),
        "adult": (0.55, {}),
        "senior": (
            0.20,
            {
                "reaction_time_s": 1.25,
                "fitts_a": 1.10,
                "fitts_b": 1.30,
                "verify_dwell_s": 1.30,
                "endpoint_sigma_frac": 1.20,
                "learning_rate": 0.85,
            },
        ),
    },
    "motor": {
        "steady": (0.80, {}),
        "tremor": (0.12, {"endpoint_sigma_frac": 1.35}),
        "low-dexterity": (
            0.08,
            {"button_press_s": 1.50, "endpoint_sigma_frac": 1.15},
        ),
    },
    "handedness": {
        "right": (0.89, {}),
        "left": (0.11, {}),
    },
    "vision": {
        "normal": (0.85, {}),
        "low": (
            0.15,
            {"perception_latency_s": 1.60, "verify_dwell_s": 1.40},
        ),
    },
}

#: Extra hand-tremor RMS multiplier per motor ability (applied on top
#: of the glove's ``tremor_factor`` by :class:`SimulatedUser`).
_TREMOR_SCALE = {"steady": 1.0, "tremor": 2.5, "low-dexterity": 1.2}


@dataclass(frozen=True)
class Persona:
    """One participant cell of the simulated population."""

    age_band: str
    motor: str
    handedness: str
    vision: str
    glove: str
    learning_scale: float

    def cell(self) -> str:
        """Discrete cell label used by per-persona-cell counters.

        Excludes the continuous ``learning_scale`` so the number of
        cells is bounded regardless of population size.
        """
        return "/".join(
            (self.age_band, self.motor, self.handedness, self.vision,
             self.glove)
        )

    @property
    def tremor_scale(self) -> float:
        """Hand-tremor RMS multiplier of this persona's motor ability."""
        return _TREMOR_SCALE[self.motor]

    def glove_model(self) -> Glove:
        """The worn :class:`Glove` preset."""
        return resolve_glove(self.glove)

    def motor_profile(self, rng: np.random.Generator) -> MotorProfile:
        """Draw an individual motor profile and apply the persona scales.

        Samples the population :meth:`MotorProfile.sample` distribution
        with the participant's own stream, then multiplies each field
        by the product of this persona's dimension modifiers (clipping
        the bounded fields back into their valid ranges).
        """
        base = MotorProfile.sample(rng)
        factors: dict[str, float] = {}
        for dimension, value in (
            ("age_band", self.age_band),
            ("motor", self.motor),
            ("handedness", self.handedness),
            ("vision", self.vision),
        ):
            _weight, modifiers = PERSONA_DIMENSIONS[dimension][value]
            for field_name, factor in modifiers.items():
                factors[field_name] = factors.get(field_name, 1.0) * factor
        factors["learning_rate"] = (
            factors.get("learning_rate", 1.0) * self.learning_scale
        )
        updates = {
            name: getattr(base, name) * factor
            for name, factor in factors.items()
        }
        if "learning_rate" in updates:
            updates["learning_rate"] = float(
                np.clip(updates["learning_rate"], 0.10, 0.70)
            )
        if "impulsivity" in updates:
            updates["impulsivity"] = float(
                np.clip(updates["impulsivity"], 0.0, 0.15)
            )
        return replace(base, **updates)

    def to_json(self) -> dict[str, Any]:
        """JSON-safe representation (golden-pin friendly)."""
        return {
            "age_band": self.age_band,
            "motor": self.motor,
            "handedness": self.handedness,
            "vision": self.vision,
            "glove": self.glove,
            "learning_scale": self.learning_scale,
            "cell": self.cell(),
        }


@dataclass(frozen=True)
class PersonaSpec:
    """A parsed ``--personas`` population specification.

    Holds, per dimension, the allowed values in declaration order with
    their renormalized weights.  Hashable and canonically printable, so
    it participates in the runner's content-addressed cache keys.
    """

    name: str
    age_band: tuple[tuple[str, float], ...]
    motor: tuple[tuple[str, float], ...]
    handedness: tuple[tuple[str, float], ...]
    vision: tuple[tuple[str, float], ...]
    gloves: tuple[tuple[str, float], ...]

    def canonical(self) -> str:
        """Stable one-line rendering (cache-token material)."""
        parts = []
        for dimension in ("age_band", "motor", "handedness", "vision",
                          "gloves"):
            choices = getattr(self, dimension)
            rendered = ",".join(f"{v}:{w:.6f}" for v, w in choices)
            parts.append(f"{dimension}={rendered}")
        return ";".join(parts)


def _normalized(
    choices: Sequence[tuple[str, float]]
) -> tuple[tuple[str, float], ...]:
    total = sum(weight for _value, weight in choices)
    if total <= 0:
        raise ValueError("persona dimension weights must sum > 0")
    return tuple((value, weight / total) for value, weight in choices)


def _dimension_choices(
    dimension: str, restrict: Optional[Sequence[str]]
) -> tuple[tuple[str, float], ...]:
    if dimension == "gloves":
        table: Mapping[str, float] = DEFAULT_GLOVE_WEIGHTS
        known = list(table)
    else:
        known = list(PERSONA_DIMENSIONS[dimension])
        table = {
            value: weight
            for value, (weight, _mods) in PERSONA_DIMENSIONS[dimension].items()
        }
    if restrict is None:
        selected = known
    else:
        unknown = [value for value in restrict if value not in known]
        if unknown:
            raise ValueError(
                f"unknown {dimension} value(s) {', '.join(unknown)}; "
                f"available: {', '.join(known)}"
            )
        # Keep declaration order, not user order: the draw must not
        # depend on how the spec string happened to list the values.
        selected = [value for value in known if value in set(restrict)]
    return _normalized([(value, table[value]) for value in selected])


def parse_spec(text: str = "full") -> PersonaSpec:
    """Parse a ``--personas`` specification string.

    Accepted forms:

    ``full``
        Every dimension at its realistic population weights (default).
    ``bare``
        The paper's population of convenience: bare hands, steady
        motor ability, normal vision (age/handedness still vary).
    ``dim=v1,v2;dim=v1``
        Restrict dimensions to subsets, e.g.
        ``gloves=winter,arctic;age_band=senior;motor=tremor``.
        Unmentioned dimensions keep their full value set; weights are
        renormalized over the kept values.
    """
    text = (text or "full").strip()
    restricts: dict[str, list[str]] = {}
    if text == "full":
        name = "full"
    elif text == "bare":
        name = "bare"
        restricts = {
            "gloves": ["none"],
            "motor": ["steady"],
            "vision": ["normal"],
        }
    else:
        name = text
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            key, separator, values = clause.partition("=")
            key = key.strip()
            if key == "age":
                key = "age_band"
            if key == "glove":
                key = "gloves"
            if not separator or key not in (
                "age_band", "motor", "handedness", "vision", "gloves"
            ):
                raise ValueError(
                    f"bad persona clause {clause!r}; expected "
                    "dim=value[,value] with dim in age_band/motor/"
                    "handedness/vision/gloves (or the presets "
                    "'full'/'bare')"
                )
            restricts[key] = [
                value.strip() for value in values.split(",") if value.strip()
            ]
    return PersonaSpec(
        name=name,
        age_band=_dimension_choices("age_band", restricts.get("age_band")),
        motor=_dimension_choices("motor", restricts.get("motor")),
        handedness=_dimension_choices(
            "handedness", restricts.get("handedness")
        ),
        vision=_dimension_choices("vision", restricts.get("vision")),
        gloves=_dimension_choices("gloves", restricts.get("gloves")),
    )


def _weighted_draw(
    rng: np.random.Generator, choices: tuple[tuple[str, float], ...]
) -> str:
    point = float(rng.random())
    cumulative = 0.0
    for value, weight in choices:
        cumulative += weight
        if point < cumulative:
            return value
    return choices[-1][0]


def persona_for_user(
    population_seed: int, user_index: int, spec: PersonaSpec
) -> Persona:
    """Participant ``user_index``'s persona, O(1) and shard-independent.

    The persona stream is spawned from ``(population_seed,
    (PERSONA_STREAM, user_index))`` so any worker can derive any
    participant without coordination, and the population is byte-
    identical for every ``--jobs`` value.
    """
    sequence = np.random.SeedSequence(
        entropy=population_seed, spawn_key=(PERSONA_STREAM, user_index)
    )
    rng = np.random.Generator(np.random.PCG64(sequence))
    age_band = _weighted_draw(rng, spec.age_band)
    motor = _weighted_draw(rng, spec.motor)
    handedness = _weighted_draw(rng, spec.handedness)
    vision = _weighted_draw(rng, spec.vision)
    glove = _weighted_draw(rng, spec.gloves)
    learning_scale = float(np.clip(rng.lognormal(0.0, 0.25), 0.6, 1.6))
    return Persona(
        age_band=age_band,
        motor=motor,
        handedness=handedness,
        vision=vision,
        glove=glove,
        learning_scale=learning_scale,
    )


def user_rng(population_seed: int, user_index: int) -> np.random.Generator:
    """Participant ``user_index``'s private trial-noise stream."""
    sequence = np.random.SeedSequence(
        entropy=population_seed, spawn_key=(TRIAL_STREAM, user_index)
    )
    return np.random.Generator(np.random.PCG64(sequence))


def sample_personas(
    population_seed: int, n: int, spec: Optional[PersonaSpec] = None
) -> list[Persona]:
    """The first ``n`` personas of a population (tests, reports)."""
    spec = spec or parse_spec("full")
    return [
        persona_for_user(population_seed, index, spec) for index in range(n)
    ]
